//! # rf-suite
//!
//! The root package of the Ranking Facts workspace.  It carries the
//! workspace-wide integration tests under `tests/` and the runnable
//! walk-throughs under `examples/`; the library itself only re-exports the
//! main entry point so `cargo doc` lands somewhere useful.
//!
//! See the individual crates under `crates/` for the actual system:
//! `rf-core` assembles the nutritional label, `rf-server` serves it over
//! HTTP, `rf-cli` is the command line, and `rf-bench` regenerates the
//! paper's figures.

#![forbid(unsafe_code)]

pub use rf_core::{AnalysisPipeline, LabelConfig, NutritionalLabel};
