//! Test configuration, RNG, and case outcome types.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (e.g. `prop_assume!` failed) and should be
    /// regenerated without counting as a failure.
    Reject(String),
    /// The property does not hold for the generated inputs.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG used to generate test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// An RNG seeded from the test's module path, so every run generates the
    /// same sequence of cases (no persistence file needed).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
