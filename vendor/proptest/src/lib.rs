//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property-based tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), range and regex-literal strategies,
//! `prop::collection::vec`, tuple strategies, `prop_map` / `prop_filter`,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.**  A failing case reports the exact generated inputs
//!   (via `Debug`) instead of a minimized counterexample.
//! * **Deterministic seeding.**  Each test function derives its RNG seed from
//!   its own path, so runs are reproducible without a persistence file.
//! * **Regex strategies** support character classes with `{m,n}` / `{m}` /
//!   `?` / `*` / `+` quantifiers and literal characters — the shapes used by
//!   the test suite — not full regex syntax.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of proptest's `prop` prelude module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __passed: u32 = 0;
                let mut __attempts: u64 = 0;
                while __passed < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= u64::from(__config.cases) * 200 + 1000,
                        "proptest {}: too many rejected inputs",
                        stringify!($name)
                    );
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        ) {
                            ::std::result::Result::Ok(value) => value,
                            ::std::result::Result::Err(_) => continue,
                        };
                    )*
                    let __inputs = format!("{:?}", ($(&$arg,)*));
                    let __outcome: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__message),
                        ) => {
                            panic!(
                                "proptest case failed: {}\n   test: {}\n   case: {}\n inputs: {}",
                                __message,
                                stringify!($name),
                                __passed,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not failed) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
