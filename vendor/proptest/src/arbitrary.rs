//! `any::<T>()` support for a few primitive types.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bounded but wide: enough for numeric property tests without
        // generating NaN/Infinity.
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

/// A strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}
