//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

/// Permitted lengths for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Ok(out)
    }
}

/// A strategy for vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
