//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generated value was rejected (filter exhaustion); the runner retries the
/// whole case.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Something that can generate values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    ///
    /// # Errors
    /// [`Rejection`] when the strategy could not produce an acceptable value
    /// (e.g. a filter rejected too many candidates).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<R, F>(self, whence: R, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        Ok((self.f)(self.inner.generate(rng)?))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct FilterStrategy<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..100 {
            let candidate = self.inner.generate(rng)?;
            if (self.f)(&candidate) {
                return Ok(candidate);
            }
        }
        Err(Rejection(format!(
            "filter rejected 100 values: {}",
            self.whence
        )))
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> Result<$ty, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> Result<$ty, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i64, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

// ---------------------------------------------------------------------------
// Regex-literal strategies for `&str` patterns.
// ---------------------------------------------------------------------------

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Result<Vec<Piece>, String> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => {
                            let escaped = chars
                                .next()
                                .ok_or_else(|| "dangling escape in class".to_string())?;
                            members.push(escaped);
                            prev = Some(escaped);
                        }
                        Some('-') => {
                            // A range when between two members, literal otherwise.
                            match (prev, chars.peek().copied()) {
                                (Some(start), Some(end)) if end != ']' => {
                                    chars.next();
                                    for code in (start as u32 + 1)..=(end as u32) {
                                        if let Some(ch) = char::from_u32(code) {
                                            members.push(ch);
                                        }
                                    }
                                    prev = None;
                                }
                                _ => {
                                    members.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        Some(member) => {
                            members.push(member);
                            prev = Some(member);
                        }
                        None => return Err("unterminated character class".to_string()),
                    }
                }
                if members.is_empty() {
                    return Err("empty character class".to_string());
                }
                Atom::Class(members)
            }
            '\\' => Atom::Literal(chars.next().ok_or_else(|| "dangling escape".to_string())?),
            '{' | '}' | '?' | '*' | '+' => {
                return Err(format!("unexpected `{c}` in pattern `{pattern}`"))
            }
            literal => Atom::Literal(literal),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for bound in chars.by_ref() {
                    if bound == '}' {
                        break;
                    }
                    spec.push(bound);
                }
                let parts: Vec<&str> = spec.split(',').collect();
                match parts.as_slice() {
                    [exact] => {
                        let n = exact
                            .trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad repetition `{{{spec}}}`"))?;
                        (n, n)
                    }
                    [low, high] => {
                        let low = low
                            .trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad repetition `{{{spec}}}`"))?;
                        let high = high
                            .trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad repetition `{{{spec}}}`"))?;
                        (low, high)
                    }
                    _ => return Err(format!("bad repetition `{{{spec}}}`")),
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    Ok(pieces)
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        let pieces = parse_pattern(self)
            .unwrap_or_else(|err| panic!("unsupported regex strategy `{self}`: {err}"));
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => {
                        let index = rng.gen_range(0usize..members.len());
                        out.push(members[index]);
                    }
                }
            }
        }
        Ok(out)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn narrow_integer_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("narrow_integer_ranges_stay_in_bounds");
        for _ in 0..256 {
            let byte = (3u8..200).generate(&mut rng).unwrap();
            assert!((3..200).contains(&byte));
            let word = (10u16..=1000).generate(&mut rng).unwrap();
            assert!((10..=1000).contains(&word));
        }
    }

    #[test]
    fn narrow_integer_ranges_cover_their_endpoints() {
        // A 4-value range must produce every member within a few hundred
        // draws, or the narrow-type sampling is biased.
        let mut rng = TestRng::for_test("narrow_integer_ranges_cover_their_endpoints");
        let mut seen = [false; 4];
        for _ in 0..512 {
            let v = (0u8..4).generate(&mut rng).unwrap();
            seen[v as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn narrow_types_compose_with_map_filter_and_tuples() {
        let mut rng = TestRng::for_test("narrow_types_compose_with_map_filter_and_tuples");
        let even = (0u16..100).prop_filter("even", |v| v % 2 == 0);
        let labeled = (0u8..10).prop_map(|v| v as usize + 1);
        for _ in 0..64 {
            let (word, shifted) = (even.clone(), labeled.clone()).generate(&mut rng).unwrap();
            assert_eq!(word % 2, 0);
            assert!((1..=10).contains(&shifted));
        }
    }
}
