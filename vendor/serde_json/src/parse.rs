//! A recursive-descent JSON parser producing a `serde::Content` tree.

use serde::Content;

/// Parses a complete JSON document.
///
/// # Errors
/// Returns a message describing the first syntax error (with byte offset).
pub fn parse_content(input: &str) -> Result<Content, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Content, String> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn parse_array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(format!("invalid low surrogate at byte {}", self.pos));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| {
                                format!("invalid \\u escape at byte {}", self.pos)
                            })?,
                        );
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.pos)),
                },
                Some(byte) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(format!("invalid UTF-8 at byte {start}"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err("unterminated string in JSON input".to_string()),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(format!("invalid hex digit at byte {}", self.pos)),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

fn utf8_len(byte: u8) -> usize {
    match byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}
