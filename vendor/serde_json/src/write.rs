//! JSON rendering of a `serde::Content` tree.

use serde::Content;

/// Renders `content` as JSON, compact or pretty (two-space indent, matching
/// `serde_json::to_string_pretty`).
#[must_use]
pub fn to_json(content: &Content, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, content, pretty, 0);
    out
}

fn write_value(out: &mut String, content: &Content, pretty: bool, indent: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent + 1);
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                push_indent(out, indent);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent + 1);
                }
                write_string(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, value, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                push_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; like `serde_json`, render them as `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format_f64(v));
    } else {
        out.push_str("null");
    }
}

/// Rust's `Display` for `f64` produces the shortest representation that
/// round-trips, which keeps serialize → parse → serialize a fixpoint.
fn format_f64(v: f64) -> String {
    let mut s = format!("{v}");
    // Very large magnitudes format with an exponent only via `{:e}`; `{}`
    // always yields plain decimal notation, which is valid JSON.  Ensure a
    // distinguishable float when the value is integral is NOT required:
    // "1" parses back as an integer-backed number and re-renders as "1".
    if s == "-0" {
        s = "-0.0".to_string();
    }
    s
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
