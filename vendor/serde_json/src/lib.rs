//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON against the vendored `serde` content model.  The
//! API mirrors the subset of `serde_json` this workspace uses: [`Value`],
//! [`to_string`] / [`to_string_pretty`], [`from_str`], the [`json!`] macro,
//! and an [`Error`] type.  Objects preserve insertion order (like
//! `serde_json` with its `preserve_order` feature), which keeps struct field
//! order stable in rendered labels.

use serde::{Content, DeError, Deserialize, Serialize};

mod parse;
mod write;

pub use parse::parse_content;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error::new(err.to_string())
    }
}

/// A JSON number (integer- or float-backed, like `serde_json::Number`).
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, PartialEq)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::I(v) => Some(v as f64),
            N::U(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }

    /// The number as `i64`, when it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The number as `u64`, when it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number { n: N::I(v) }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number { n: N::U(v) }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number { n: N::F(v) }
    }
}

/// An insertion-ordered map of string keys to JSON values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// `true` when the map contains `key`.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member access: `value.get("key")`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as an `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` when the value is a number.
    #[must_use]
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` when the value is a string.
    #[must_use]
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` when the value is a boolean.
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// `true` when the value is an array.
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` when the value is an object.
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    fn from_content(content: &Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::from(*v)),
            Content::U64(v) => Value::Number(Number::from(*v)),
            Content::F64(v) => {
                if v.is_finite() {
                    Value::Number(Number::from(*v))
                } else {
                    Value::Null
                }
            }
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(Map {
                entries: entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            }),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => match n.n {
                N::I(v) => Content::I64(v),
                N::U(v) => Content::U64(v),
                N::F(v) => Content::F64(v),
            },
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(map) => Content::Map(
                map.entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Value::from_content(content))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64().map(|v| v as usize) == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", write::to_json(&Value::to_content(self), false))
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    Value::from_content(&value.to_content())
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors `serde_json`.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::to_json(&value.to_content(), false))
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors `serde_json`.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::to_json(&value.to_content(), true))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// Syntax errors and shape mismatches.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let content = parse::parse_content(input).map_err(Error::new)?;
    Ok(T::from_content(&content)?)
}

/// Builds a [`Value`] with JSON-like syntax.
///
/// Supports the shapes this workspace uses: `null`, arrays of expressions,
/// objects with literal keys and expression values (nest with further
/// `json!` calls), and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut __map = $crate::Map::new();
        $( __map.insert($key.to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let text = r#"{"a": 1, "b": [true, null, "x"], "c": -2.5}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"], 1i64);
        assert_eq!(value["b"].as_array().unwrap().len(), 3);
        assert_eq!(value["b"][2], "x");
        assert!(value["b"][1].is_null());
        assert_eq!(value["c"], -2.5f64);
        let rendered = to_string(&value).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(value, again);
    }

    #[test]
    fn pretty_printing_is_stable() {
        let value = json!({"name": "x", "items": [1usize, 2usize]});
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n"));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string_pretty(&reparsed).unwrap(), pretty);
    }

    #[test]
    fn escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t unicode \u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let value = json!({"z": 1usize, "a": 2usize, "m": 3usize});
        assert_eq!(to_string(&value).unwrap(), r#"{"z":1,"a":2,"m":3}"#);
    }
}
