//! Offline stand-in for the `rand_chacha` crate: a ChaCha8 generator.
//!
//! Implements the ChaCha stream cipher core (RFC 8439 quarter-round, eight
//! rounds) as a counter-mode random number generator.  Deterministic for a
//! given seed, `Clone`-able, and fast — the properties the Monte Carlo
//! estimators and the synthetic dataset generators rely on.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), counter (2 words), and nonce (2 words).
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

/// One ChaCha quarter-round over four named words.  Operating on locals
/// (rather than indexing into a `[u32; 16]`) keeps the whole working state
/// in registers through the round loop — the generator sits under the
/// Monte-Carlo noise sampler, which draws two words per Gaussian, so block
/// throughput is a hot-path cost.
macro_rules! qr {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let (x0, x1, x2, x3) = (
            0x6170_7865u32,
            0x3320_646eu32,
            0x7962_2d32u32,
            0x6b20_6574u32,
        );
        let [k0, k1, k2, k3, k4, k5, k6, k7] = self.key;
        let c0 = self.counter as u32;
        let c1 = (self.counter >> 32) as u32;

        let (mut w0, mut w1, mut w2, mut w3) = (x0, x1, x2, x3);
        let (mut w4, mut w5, mut w6, mut w7) = (k0, k1, k2, k3);
        let (mut w8, mut w9, mut w10, mut w11) = (k4, k5, k6, k7);
        let (mut w12, mut w13, mut w14, mut w15) = (c0, c1, 0u32, 0u32);
        for _ in 0..ROUNDS / 2 {
            // Column round.
            qr!(w0, w4, w8, w12);
            qr!(w1, w5, w9, w13);
            qr!(w2, w6, w10, w14);
            qr!(w3, w7, w11, w15);
            // Diagonal round.
            qr!(w0, w5, w10, w15);
            qr!(w1, w6, w11, w12);
            qr!(w2, w7, w8, w13);
            qr!(w3, w4, w9, w14);
        }
        self.buffer = [
            w0.wrapping_add(x0),
            w1.wrapping_add(x1),
            w2.wrapping_add(x2),
            w3.wrapping_add(x3),
            w4.wrapping_add(k0),
            w5.wrapping_add(k1),
            w6.wrapping_add(k2),
            w7.wrapping_add(k3),
            w8.wrapping_add(k4),
            w9.wrapping_add(k5),
            w10.wrapping_add(k6),
            w11.wrapping_add(k7),
            w12.wrapping_add(c0),
            w13.wrapping_add(c1),
            w14,
            w15,
        ];
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Same word sequence as two `next_u32` calls; taking both from the
        // buffer in one go just skips a bounds check on the common path.
        if self.index + 2 <= 16 {
            let low = u64::from(self.buffer[self.index]);
            let high = u64::from(self.buffer[self.index + 1]);
            self.index += 2;
            (high << 32) | low
        } else {
            let low = u64::from(self.next_u32());
            let high = u64::from(self.next_u32());
            (high << 32) | low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn xor_derived_seeds_yield_decorrelated_streams() {
        // The Monte-Carlo stability estimator derives trial `i`'s stream as
        // `seed_from_u64(seed ^ i)`; adjacent trial indices differ in few
        // bits, so this pins the contract the derivation rests on: the
        // SplitMix64 expansion inside `seed_from_u64` decorrelates even
        // single-bit-apart inputs.
        let base = 42u64;
        for trial in 1u64..16 {
            let mut derived = ChaCha8Rng::seed_from_u64(base ^ trial);
            let mut baseline = ChaCha8Rng::seed_from_u64(base);
            let same = (0..64)
                .filter(|_| derived.next_u64() == baseline.next_u64())
                .count();
            assert!(same < 4, "trial {trial} stream tracks the base stream");
        }
        // And the derivation is stable: same seed ⊕ trial, same stream.
        let mut a = ChaCha8Rng::seed_from_u64(base ^ 3);
        let mut b = ChaCha8Rng::seed_from_u64(base ^ 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
