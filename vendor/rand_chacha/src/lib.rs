//! Offline stand-in for the `rand_chacha` crate: a ChaCha8 generator.
//!
//! Implements the ChaCha stream cipher core (RFC 8439 quarter-round, eight
//! rounds) as a counter-mode random number generator.  Deterministic for a
//! given seed, `Clone`-able, and fast — the properties the Monte Carlo
//! estimators and the synthetic dataset generators rely on.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), counter (2 words), and nonce (2 words).
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn xor_derived_seeds_yield_decorrelated_streams() {
        // The Monte-Carlo stability estimator derives trial `i`'s stream as
        // `seed_from_u64(seed ^ i)`; adjacent trial indices differ in few
        // bits, so this pins the contract the derivation rests on: the
        // SplitMix64 expansion inside `seed_from_u64` decorrelates even
        // single-bit-apart inputs.
        let base = 42u64;
        for trial in 1u64..16 {
            let mut derived = ChaCha8Rng::seed_from_u64(base ^ trial);
            let mut baseline = ChaCha8Rng::seed_from_u64(base);
            let same = (0..64)
                .filter(|_| derived.next_u64() == baseline.next_u64())
                .count();
            assert!(same < 4, "trial {trial} stream tracks the base stream");
        }
        // And the derivation is stable: same seed ⊕ trial, same stream.
        let mut a = ChaCha8Rng::seed_from_u64(base ^ 3);
        let mut b = ChaCha8Rng::seed_from_u64(base ^ 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
