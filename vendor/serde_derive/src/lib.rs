//! Derive macros for the vendored `serde` stand-in.
//!
//! crates.io is unreachable in this build environment, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the [`proc_macro`] token
//! stream and the generated impl is assembled as source text.  The parser
//! covers exactly the shapes this workspace uses:
//!
//! * structs with named fields (optionally `#[serde(default)]` per field);
//! * enums with unit, newtype, tuple, and struct variants, serialized with
//!   serde's externally-tagged representation (`"Variant"` for unit variants,
//!   `{"Variant": value}` otherwise).
//!
//! Generics are not supported — no serialized type in the workspace needs
//! them — and unsupported shapes produce a `compile_error!` naming the gap.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error token stream"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes, returning `true` if any was `#[serde(default)]`.
fn skip_attributes(iter: &mut TokenIter) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        if let Some(TokenTree::Group(group)) = iter.next() {
            let mut inner = group.stream().into_iter();
            if let Some(TokenTree::Ident(head)) = inner.next() {
                if head.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for token in args.stream() {
                            if let TokenTree::Ident(ident) = token {
                                if ident.to_string() == "default" {
                                    has_default = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    has_default
}

fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(ident)) = iter.peek() {
        if ident.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive (vendored) does not support generic type `{name}`"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Struct(parse_named_fields(group.stream())?),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: ItemKind::Struct(Vec::new()),
            }),
            _ => Err(format!(
                "serde_derive (vendored) does not support tuple struct `{name}`"
            )),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(group.stream())?),
            }),
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("expected a field name, found {other}")),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type, tracking `<`/`>` depth so commas inside generics
        // (e.g. `Vec<(String, f64)>`) do not end the field early.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("expected a variant name, found {other}")),
            None => break,
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(group.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream())?;
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts comma-separated items at angle-bracket depth zero (trailing commas
/// do not add a field).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut in_field = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

// ---------------------------------------------------------------------------
// Code generation (assembled as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut pushes = String::new();
            for field in fields {
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})));\n",
                    f = field.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(__fields)"
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Content::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {} }} => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Content::Map(vec![{}]))]),\n",
                            binders.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_field_lookup(ty: &str, field: &Field, source: &str) -> String {
    let f = &field.name;
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{ty}\", \"{f}\"))"
        )
    };
    format!(
        "{f}: match {source}.iter().find(|__e| __e.0 == \"{f}\") {{\n\
         ::std::option::Option::Some(__e) => ::serde::Deserialize::from_content(&__e.1)?,\n\
         ::std::option::Option::None => {missing},\n}},\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let lookups: String = fields
                .iter()
                .map(|f| gen_field_lookup(name, f, "__entries"))
                .collect();
            format!(
                "match __content {{\n\
                 ::serde::Content::Map(__entries) => ::std::result::Result::Ok({name} {{\n{lookups}}}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::invalid_shape(\"{name}\", \"map\", __other)),\n\
                 }}"
            )
        }
        ItemKind::Enum(variants) => {
            let unit_variants: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let data_variants: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();

            let mut arms = String::new();
            if !unit_variants.is_empty() {
                let mut unit_arms = String::new();
                for v in &unit_variants {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}},\n"
                ));
            }
            if !data_variants.is_empty() {
                let mut tag_arms = String::new();
                for variant in &data_variants {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => unreachable!("unit variants handled above"),
                        VariantKind::Tuple(1) => tag_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_content(__v)?)),\n"
                        )),
                        VariantKind::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__items[{i}])?")
                                })
                                .collect();
                            tag_arms.push_str(&format!(
                                "\"{v}\" => match __v {{\n\
                                 ::serde::Content::Seq(__items) if __items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{v}({})),\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::invalid_shape(\
                                 \"{name}::{v}\", \"{arity}-element sequence\", __other)),\n}},\n",
                                elems.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let lookups: String = fields
                                .iter()
                                .map(|f| gen_field_lookup(name, f, "__fields"))
                                .collect();
                            tag_arms.push_str(&format!(
                                "\"{v}\" => match __v {{\n\
                                 ::serde::Content::Map(__fields) => ::std::result::Result::Ok({name}::{v} {{\n{lookups}}}),\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::invalid_shape(\
                                 \"{name}::{v}\", \"map\", __other)),\n}},\n"
                            ));
                        }
                    }
                }
                arms.push_str(&format!(
                    "::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __v) = (&__entries[0].0, &__entries[0].1);\n\
                     match __k.as_str() {{\n{tag_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}}\n}},\n"
                ));
            }
            format!(
                "match __content {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::invalid_shape(\
                 \"{name}\", \"externally tagged variant\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_content(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
