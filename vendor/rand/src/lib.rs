//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`] (including the SplitMix64-based
//! `seed_from_u64` expansion rand uses), the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom::shuffle`].

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same expansion
    /// rand 0.8 uses), then constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit draw in [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * unit
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $ty);
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = (rng.next_u64() % self.len() as u64) as usize;
                self.get(index)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..10);
            assert!((5..10).contains(&i));
            let inc = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(11);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
