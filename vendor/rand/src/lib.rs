//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`] (including the SplitMix64-based
//! `seed_from_u64` expansion rand uses), the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom::shuffle`].

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same expansion
    /// rand 0.8 uses), then constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit draw in [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * unit
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $ty);
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8, i64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Probability distributions sampled through any [`RngCore`].
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// Types that can draw values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The exponential distribution `Exp(λ)`, sampled by inverse
    /// transform: `−ln(1 − U) / λ`.  This is the inter-arrival law of a
    /// Poisson process with rate λ — the open-loop load generator draws
    /// its request schedule from it.
    #[derive(Debug, Clone, Copy)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// A new exponential distribution with rate `lambda` (events per
        /// unit time; the mean is `1 / lambda`).
        ///
        /// # Panics
        /// If `lambda` is not a positive finite number.
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda > 0.0 && lambda.is_finite(),
                "Exp rate must be positive and finite: {lambda}"
            );
            Exp { lambda }
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // U ∈ [0, 1) so 1 − U ∈ (0, 1]: `ln` never sees zero.
            -(1.0 - unit_f64(rng)).ln() / self.lambda
        }
    }

    /// The Poisson distribution with mean λ, sampled with Knuth's
    /// product-of-uniforms method (exact, O(λ) uniform draws per sample —
    /// fine for the small per-tick means a load generator uses).
    #[derive(Debug, Clone, Copy)]
    pub struct Poisson {
        exp_neg_lambda: f64,
    }

    impl Poisson {
        /// A new Poisson distribution with mean `lambda`.
        ///
        /// # Panics
        /// If `lambda` is not a positive finite number.
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda > 0.0 && lambda.is_finite(),
                "Poisson mean must be positive and finite: {lambda}"
            );
            Poisson {
                exp_neg_lambda: (-lambda).exp(),
            }
        }
    }

    impl Distribution<u64> for Poisson {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let mut count = 0u64;
            let mut product = 1.0f64;
            loop {
                product *= unit_f64(rng);
                if product <= self.exp_neg_lambda {
                    return count;
                }
                count += 1;
            }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = (rng.next_u64() % self.len() as u64) as usize;
                self.get(index)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..10);
            assert!((5..10).contains(&i));
            let inc = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn exp_is_deterministic_and_hits_its_mean() {
        use distributions::{Distribution, Exp};
        let exp = Exp::new(2.0);
        let draws = |seed: u64| -> Vec<f64> {
            let mut rng = Counter(seed);
            (0..20_000).map(|_| exp.sample(&mut rng)).collect()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed must reproduce the same samples");
        assert!(a.iter().all(|x| *x >= 0.0), "Exp samples are non-negative");
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let expected = 1.0 / 2.0;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "Exp(2) sample mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn poisson_is_deterministic_and_hits_its_mean() {
        use distributions::{Distribution, Poisson};
        let poisson = Poisson::new(4.0);
        let draws = |seed: u64| -> Vec<u64> {
            let mut rng = Counter(seed);
            (0..20_000).map(|_| poisson.sample(&mut rng)).collect()
        };
        let a = draws(7);
        assert_eq!(a, draws(7), "same seed must reproduce the same samples");
        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!(
            (mean - 4.0).abs() < 0.05 * 4.0,
            "Poisson(4) sample mean {mean} too far from 4"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_non_positive_rate() {
        let _ = distributions::Exp::new(0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(11);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
