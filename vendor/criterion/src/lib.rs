//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock harness: a short warm-up, then `sample_size` timed iterations,
//! reporting min/median/mean per iteration.  No statistics engine, plots, or
//! baseline storage; good enough to compare orders of magnitude offline.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for parity with criterion's API.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation for a benchmark group (recorded, reported per run).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording the configured
    /// number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~50ms or 3 iterations, whichever comes first.
        let warmup_start = Instant::now();
        let mut warmup_iterations = 0u32;
        while warmup_iterations < 3 && warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iterations += 1;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Annotates the group with a throughput per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark (skipped when a command-line filter excludes its
    /// full `group/id` path).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.criterion.matches(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher.results);
        self
    }

    /// Runs one benchmark parameterized by `input` (same filter rule as
    /// [`Self::bench_function`]).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        if !self.criterion.matches(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.results);
        self
    }

    /// Finishes the group (drops it; reports were already printed).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, results: &[Duration]) {
        if results.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        let mut sorted: Vec<Duration> = results.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(1);
        let throughput = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    format!("  ({:.1} MiB/s)", bytes as f64 / secs / (1024.0 * 1024.0))
                } else {
                    String::new()
                }
            }
            Some(Throughput::Elements(elements)) => {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    format!("  ({:.0} elem/s)", elements as f64 / secs)
                } else {
                    String::new()
                }
            }
            None => String::new(),
        };
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples){}",
            self.name,
            id.id,
            sorted[0],
            median,
            mean,
            sorted.len(),
            throughput
        );
        // Keep the borrow on `criterion` meaningful: count benches run.
        let _ = &self.criterion;
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    /// Mirrors criterion's CLI contract: the first non-flag argument is a
    /// substring filter, so `cargo bench -- emit_report` runs only the
    /// benchmarks whose `group/id` path contains `emit_report`.  Flags
    /// (anything starting with `-`) are ignored.
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion {
            default_sample_size: 0,
            filter,
        }
    }
}

impl Criterion {
    /// A driver with an explicit filter (`None` runs everything); used by
    /// the unit tests so they don't depend on the process's own arguments.
    #[must_use]
    pub fn with_filter(filter: Option<String>) -> Self {
        Criterion {
            default_sample_size: 0,
            filter,
        }
    }

    /// `true` when `id` (a full `group/benchmark` path) survives the filter.
    /// With no filter every benchmark matches; with one, matching is plain
    /// substring containment, as in criterion proper.
    #[must_use]
    pub fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(filter) => id.contains(filter.as_str()),
            None => true,
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from("bench"), f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_filter_matches_everything() {
        let criterion = Criterion::with_filter(None);
        assert!(criterion.matches("monte_carlo/trials/1000"));
        assert!(criterion.matches(""));
    }

    #[test]
    fn filter_is_substring_containment_over_the_full_path() {
        let criterion = Criterion::with_filter(Some("emit_report".to_string()));
        assert!(criterion.matches("emit_report/bench"));
        assert!(criterion.matches("monte_carlo_emit_report/bench"));
        assert!(!criterion.matches("monte_carlo/trials/1000"));
        // A group-name filter keeps every bench inside the group.
        let criterion = Criterion::with_filter(Some("tile_rows_sweep".to_string()));
        assert!(criterion.matches("tile_rows_sweep/legacy/100000"));
        assert!(criterion.matches("tile_rows_sweep/tiled/100000"));
        assert!(!criterion.matches("label_hot_path/warm"));
    }

    #[test]
    fn filtered_out_benches_never_run() {
        let mut criterion = Criterion::with_filter(Some("only_this".to_string()));
        let mut ran = Vec::new();
        {
            let mut group = criterion.benchmark_group("group");
            group.sample_size(1);
            group.bench_function("only_this_one", |b| b.iter(|| ran.push("kept")));
            group.bench_function("another", |b| b.iter(|| ran.push("skipped")));
            group.finish();
        }
        assert!(ran.contains(&"kept"));
        assert!(!ran.contains(&"skipped"));
    }

    #[test]
    fn unfiltered_group_runs_all_benches() {
        let mut criterion = Criterion::with_filter(None);
        let mut count = 0usize;
        {
            let mut group = criterion.benchmark_group("group");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("sized", 8), &8usize, |b, &n| {
                b.iter(|| count += n)
            });
        }
        // 2 samples (plus warm-up iterations) each adding 8.
        assert!(count >= 16);
    }
}
