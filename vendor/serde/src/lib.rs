//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name.  Instead of serde's visitor-based zero-copy data model, this
//! stand-in lowers every value to a self-describing [`Content`] tree; the
//! companion `serde_json` stand-in renders and parses that tree.  The derive
//! macros (`#[derive(serde::Serialize, serde::Deserialize)]`) are provided by
//! the sibling `serde_derive` proc-macro crate and generate impls of the two
//! traits below, including externally-tagged enum representation and support
//! for the `#[serde(default)]` field attribute — the only attribute this
//! workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the data model shared by `Serialize` and
/// `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / a missing value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An insertion-ordered map with string keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable name of the content kind, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced while rebuilding a value from a [`Content`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form deserialization error.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A required field was absent from the serialized map.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` for `{ty}`"))
    }

    /// An enum tag did not match any known variant.
    #[must_use]
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` for `{ty}`"))
    }

    /// The content tree had the wrong shape for the target type.
    #[must_use]
    pub fn invalid_shape(ty: &str, expected: &str, got: &Content) -> Self {
        Self::custom(format!(
            "invalid content for `{ty}`: expected {expected}, got {}",
            got.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self` to the self-describing data model.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the self-describing data model.
    ///
    /// # Errors
    /// Returns a [`DeError`] when the tree does not match the target type.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        match i64::try_from(*self) {
            Ok(v) => Content::I64(v),
            Err(_) => Content::U64(*self),
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        (*self as u64).to_content()
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        // HashMap iteration order is unspecified; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

fn content_as_i64(content: &Content, ty: &str) -> Result<i64, DeError> {
    match content {
        Content::I64(v) => Ok(*v),
        Content::U64(v) => {
            i64::try_from(*v).map_err(|_| DeError::custom(format!("{ty}: {v} out of range")))
        }
        Content::F64(v) if v.fract() == 0.0 && v.is_finite() => Ok(*v as i64),
        other => Err(DeError::invalid_shape(ty, "integer", other)),
    }
}

macro_rules! impl_de_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value = content_as_i64(content, stringify!($ty))?;
                <$ty>::try_from(value)
                    .map_err(|_| DeError::custom(format!("{} out of range: {value}", stringify!($ty))))
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl Deserialize for u64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::U64(v) => Ok(*v),
            other => {
                let value = content_as_i64(other, "u64")?;
                u64::try_from(value)
                    .map_err(|_| DeError::custom(format!("u64 out of range: {value}")))
            }
        }
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let value = u64::from_content(content)?;
        usize::try_from(value).map_err(|_| DeError::custom(format!("usize out of range: {value}")))
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (JSON has no NaN/Infinity);
            // accept the round-trip rather than failing.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::invalid_shape("f64", "number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(f64::from_content(content)? as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(DeError::invalid_shape("bool", "boolean", other)),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_shape("String", "string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::invalid_shape(
                "char",
                "single-character string",
                other,
            )),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(std::sync::Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::invalid_shape("Vec", "sequence", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::invalid_shape("tuple", "2-element sequence", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(DeError::invalid_shape("tuple", "3-element sequence", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::invalid_shape("BTreeMap", "map", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::invalid_shape("HashMap", "map", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// std::time::Duration — `{"secs": u64, "nanos": u32}`, the same map shape
// real serde uses.
// ---------------------------------------------------------------------------

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), self.as_secs().to_content()),
            ("nanos".to_string(), self.subsec_nanos().to_content()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let Content::Map(entries) = content else {
            return Err(DeError::invalid_shape("Duration", "map", content));
        };
        let field = |name: &str| {
            entries
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| DeError::missing_field("Duration", name))
        };
        let secs = u64::from_content(field("secs")?)?;
        let nanos = u32::from_content(field("nanos")?)?;
        if nanos >= 1_000_000_000 {
            return Err(DeError::custom(format!(
                "Duration nanos out of range: {nanos}"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_content(&42i32.to_content()).unwrap(), 42);
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![Some(1.0f64), None, Some(3.5)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<f64>>::from_content(&c).unwrap(), v);

        let pairs = vec![("a".to_string(), 1usize), ("b".to_string(), 2usize)];
        let c = pairs.to_content();
        assert_eq!(Vec::<(String, usize)>::from_content(&c).unwrap(), pairs);
    }

    #[test]
    fn duration_round_trips_as_secs_nanos_map() {
        let duration = std::time::Duration::new(3, 250_000_000);
        let content = duration.to_content();
        assert_eq!(
            content,
            Content::Map(vec![
                ("secs".to_string(), Content::I64(3)),
                ("nanos".to_string(), Content::I64(250_000_000)),
            ])
        );
        assert_eq!(
            std::time::Duration::from_content(&content).unwrap(),
            duration
        );
        // Overflowing nanos are rejected rather than silently normalized.
        let bad = Content::Map(vec![
            ("secs".to_string(), Content::I64(0)),
            ("nanos".to_string(), Content::I64(1_000_000_000)),
        ]);
        assert!(std::time::Duration::from_content(&bad).is_err());
        // A missing field is a hard error.
        let partial = Content::Map(vec![("secs".to_string(), Content::I64(1))]);
        assert!(std::time::Duration::from_content(&partial).is_err());
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(bool::from_content(&Content::Str("no".into())).is_err());
        assert!(Vec::<f64>::from_content(&Content::Bool(true)).is_err());
        assert!(String::from_content(&Content::Null).is_err());
    }
}
