//! Pipeline parity: the parallel `AnalysisPipeline` must produce output
//! byte-identical (after JSON rendering) to the single-threaded reference
//! path, on all three demonstration scenarios of the paper (§3).
//!
//! This is the contract that makes the concurrent schedule safe to ship: the
//! fan-out may only change *when* widgets are computed, never *what* they
//! contain.

use rf_core::{AnalysisPipeline, LabelConfig, NutritionalLabel};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig};
use rf_ranking::ScoringFunction;
use rf_table::Table;
use std::sync::Arc;

fn cs_scenario() -> (Table, LabelConfig) {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_dataset_name("CS departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    (table, config)
}

fn compas_scenario() -> (Table, LabelConfig) {
    let table = CompasConfig::with_rows(1_500).generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_dataset_name("COMPAS recidivism (synthetic)")
        .with_sensitive_attribute("race", ["African-American"])
        .with_sensitive_attribute("sex", ["Female"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");
    (table, config)
}

fn german_credit_scenario() -> (Table, LabelConfig) {
    let table = GermanCreditConfig::default().generate().unwrap();
    let scoring = ScoringFunction::from_pairs([
        ("credit_score", 0.7),
        ("employment_years", 0.2),
        ("credit_amount", -0.1),
    ])
    .unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_dataset_name("German credit (synthetic)")
        .with_sensitive_attribute("sex", ["female"])
        .with_sensitive_attribute("age_group", ["young"])
        .with_diversity_attribute("housing")
        .with_diversity_attribute("checking_status");
    (table, config)
}

/// Renders both schedules and asserts byte identity of the JSON documents
/// (and structural equality of the labels themselves).
fn assert_parity(scenario_name: &str, table: Table, config: LabelConfig) {
    let table = Arc::new(table);
    let config = Arc::new(config);

    let parallel = AnalysisPipeline::new()
        .generate(Arc::clone(&table), Arc::clone(&config))
        .unwrap_or_else(|err| panic!("{scenario_name}: parallel pipeline failed: {err}"));
    let sequential = AnalysisPipeline::sequential()
        .generate(Arc::clone(&table), Arc::clone(&config))
        .unwrap_or_else(|err| panic!("{scenario_name}: sequential pipeline failed: {err}"));

    assert_eq!(
        parallel, sequential,
        "{scenario_name}: labels differ between schedules"
    );

    let parallel_json = parallel.to_json().unwrap();
    let sequential_json = sequential.to_json().unwrap();
    assert_eq!(
        parallel_json, sequential_json,
        "{scenario_name}: JSON renders differ between schedules"
    );

    // The ref-based convenience entry point routes through the same pipeline.
    let via_generate = NutritionalLabel::generate(&table, &config).unwrap();
    assert_eq!(
        via_generate.to_json().unwrap(),
        parallel_json,
        "{scenario_name}: NutritionalLabel::generate diverges from the pipeline"
    );
}

#[test]
fn cs_departments_parallel_matches_sequential() {
    let (table, config) = cs_scenario();
    assert_parity("cs-departments", table, config);
}

#[test]
fn compas_parallel_matches_sequential() {
    let (table, config) = compas_scenario();
    assert_parity("compas", table, config);
}

#[test]
fn german_credit_parallel_matches_sequential() {
    let (table, config) = german_credit_scenario();
    assert_parity("german-credit", table, config);
}

#[test]
fn parity_holds_across_repeated_parallel_runs() {
    // Concurrency must not introduce run-to-run nondeterminism either.
    let (table, config) = cs_scenario();
    let table = Arc::new(table);
    let config = Arc::new(config);
    let pipeline = AnalysisPipeline::new();
    let first = pipeline
        .generate(Arc::clone(&table), Arc::clone(&config))
        .unwrap()
        .to_json()
        .unwrap();
    for _ in 0..5 {
        let again = pipeline
            .generate(Arc::clone(&table), Arc::clone(&config))
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(first, again);
    }
}
