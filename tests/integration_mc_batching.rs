//! Batched columnar Monte-Carlo stability: parity and deadline budget.
//!
//! PR 5 rebuilt the §2.2 estimator's hot path twice over:
//!
//! 1. **Columnar kernel** — trials run on `rf_ranking::TrialKernel` (flat
//!    `f64` buffers, reusable scratch, zero per-trial tables) instead of
//!    materializing a perturbed `Table` per draw.  The historical path
//!    survives as [`MonteCarloStability::evaluate_materialized`], and this
//!    suite proves the kernel **byte-identical** to it.
//! 2. **Adaptive batching** — the label hot path schedules
//!    `ceil(trials / (workers × f))` trials per scheduler task
//!    ([`MonteCarloStability::evaluate_batched`]) instead of one task per
//!    trial.  Because trial `i` always draws from its own `seed ⊕ i` stream,
//!    the batched summary is byte-identical to the sequential reference at
//!    **every** batch size and worker count — the property the proptest
//!    below hammers on.
//!
//! On top of the batches sits the wall-clock **deadline budget**: batches
//! launch in waves, a passed deadline stops further waves, and the summary
//! reports the deterministic prefix of trials that completed with
//! `truncated` set.  A zero budget must still produce a valid label — never
//! a hang, never a panic.

use proptest::prelude::*;
use rf_core::{AnalysisPipeline, LabelConfig};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig};
use rf_ranking::ScoringFunction;
use rf_runtime::Scheduler;
use rf_stability::MonteCarloStability;
use rf_table::{Column, Table};
use std::sync::Arc;
use std::time::Duration;

fn demo_scenarios() -> Vec<(&'static str, Arc<Table>, ScoringFunction)> {
    vec![
        (
            "cs-departments",
            Arc::new(CsDepartmentsConfig::default().generate().unwrap()),
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .unwrap(),
        ),
        (
            "compas",
            Arc::new(CompasConfig::with_rows(600).generate().unwrap()),
            ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap(),
        ),
        (
            "german-credit",
            Arc::new(GermanCreditConfig::default().generate().unwrap()),
            ScoringFunction::from_pairs([
                ("credit_score", 0.7),
                ("employment_years", 0.2),
                ("credit_amount", -0.1),
            ])
            .unwrap(),
        ),
    ]
}

#[test]
fn columnar_and_batched_match_the_materialized_reference_on_all_scenarios() {
    for (name, table, scoring) in demo_scenarios() {
        let ranking = scoring.rank_table(&table).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(24)
            .unwrap()
            .with_noise(0.05, 0.05)
            .unwrap()
            .with_k(10)
            .with_seed(42);
        let materialized = estimator
            .evaluate_materialized(&table, &scoring, &ranking)
            .unwrap();
        let columnar = estimator.evaluate(&table, &scoring, &ranking).unwrap();
        assert_eq!(
            materialized, columnar,
            "{name}: columnar kernel diverges from the materialized reference"
        );
        let materialized_json = serde_json::to_string(&materialized).unwrap();
        for workers in [1usize, 2, 4] {
            let scheduler = Scheduler::new(workers);
            for factor in [1usize, 3, 8] {
                let batched = estimator
                    .evaluate_batched_with(&scheduler, &table, &scoring, &ranking, None, factor)
                    .unwrap();
                assert_eq!(
                    materialized, batched,
                    "{name}: batched summary diverges ({workers} workers, factor {factor})"
                );
                assert_eq!(
                    materialized_json,
                    serde_json::to_string(&batched).unwrap(),
                    "{name}: serialized summaries diverge ({workers} workers, factor {factor})"
                );
            }
        }
    }
}

#[test]
fn batching_amortizes_tasks_and_stays_byte_identical() {
    // 97-row CS table, 64 trials on 2 workers: the default factor (4)
    // schedules 8 batch tasks where the per-trial schedule ran 64.
    let table = Arc::new(CsDepartmentsConfig::default().generate().unwrap());
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let ranking = scoring.rank_table(&table).unwrap();
    let estimator = MonteCarloStability::new().with_trials(64).unwrap();
    let scheduler = Scheduler::new(2);
    let before = scheduler.executed_jobs();
    let batched = estimator
        .evaluate_batched(&scheduler, &table, &scoring, &ranking, None)
        .unwrap();
    assert_eq!(
        scheduler.executed_jobs() - before,
        8,
        "64 trials / (2 workers × 4) = 8 trials per task → 8 tasks"
    );
    let sequential = estimator.evaluate(&table, &scoring, &ranking).unwrap();
    assert_eq!(sequential, batched);
}

#[test]
fn zero_deadline_truncates_deterministically_and_never_hangs() {
    let table = Arc::new(CsDepartmentsConfig::default().generate().unwrap());
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let ranking = scoring.rank_table(&table).unwrap();
    let estimator = MonteCarloStability::new()
        .with_trials(128)
        .unwrap()
        .with_seed(9);
    let scheduler = Scheduler::new(2);
    let truncated = estimator
        .evaluate_batched(&scheduler, &table, &scoring, &ranking, Some(Duration::ZERO))
        .unwrap();
    // batch = 128 / (2 × 4) = 16; the always-launched first wave is
    // 2 × 16 = 32 trials — then the already-expired budget stops the run.
    assert!(truncated.truncated);
    assert_eq!(truncated.trials, 32);
    assert_eq!(truncated.trials_requested, 128);
    // Deterministic: the truncated run IS the 32-trial run, outcome for
    // outcome (only the requested count and the flag differ).
    let prefix = MonteCarloStability::new()
        .with_trials(32)
        .unwrap()
        .with_seed(9)
        .evaluate(&table, &scoring, &ranking)
        .unwrap();
    assert!(!prefix.truncated);
    assert_eq!(truncated.expected_kendall_tau, prefix.expected_kendall_tau);
    assert_eq!(truncated.worst_kendall_tau, prefix.worst_kendall_tau);
    assert_eq!(
        truncated.expected_top_k_overlap,
        prefix.expected_top_k_overlap
    );
    assert_eq!(truncated.top_item_change_rate, prefix.top_item_change_rate);
    // And it reproduces itself run over run.
    let again = estimator
        .evaluate_batched(&scheduler, &table, &scoring, &ranking, Some(Duration::ZERO))
        .unwrap();
    assert_eq!(truncated, again);
}

#[test]
fn zero_deadline_full_label_is_valid_and_flagged() {
    // End to end through the pipeline: a label whose Monte-Carlo budget is
    // already spent still renders every widget, with the stability detail
    // reporting the truncation.
    let table = Arc::new(CsDepartmentsConfig::default().generate().unwrap());
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = Arc::new(
        LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
            .with_diversity_attribute("DeptSizeBin")
            .with_monte_carlo_trials(512)
            .with_monte_carlo_deadline_millis(Some(0)),
    );
    let label = AnalysisPipeline::new()
        .generate(Arc::clone(&table), config)
        .unwrap();
    let mc = label.stability.monte_carlo.as_ref().expect("detail on");
    assert!(mc.truncated);
    assert!(mc.trials >= 1 && mc.trials < 512, "got {}", mc.trials);
    assert_eq!(mc.trials_requested, 512);
    let json = label.to_json().unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["stability"]["monte_carlo"]["truncated"], true);
    assert!(value["fairness"]["reports"].as_array().unwrap().len() == 2);
}

/// A deterministic numeric table for the property tests.
fn random_table(rows: usize, spread: f64) -> Table {
    let a: Vec<f64> = (0..rows)
        .map(|i| (i as f64 * 7.3).sin() * spread + i as f64)
        .collect();
    let b: Vec<f64> = (0..rows)
        .map(|i| (i as f64 * 3.1).cos() * spread * 0.5 + (rows - i) as f64)
        .collect();
    Table::from_columns(vec![
        ("attr_a", Column::from_f64(a)),
        ("attr_b", Column::from_f64(b)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: materialized reference, columnar sequential,
    /// and batched columnar agree byte-for-byte over random seeds, trial
    /// counts, batch factors, worker counts, and noise levels.
    #[test]
    fn batched_columnar_matches_materialized_for_random_inputs(
        seed in 0u64..=u64::MAX,
        trials in 1usize..24,
        workers in 1usize..5,
        factor in 1usize..6,
        data_noise in 0.0..0.4f64,
        weight_noise in 0.0..0.4f64,
        rows in 8usize..48,
        spread in 0.5..50.0f64,
    ) {
        let table = Arc::new(random_table(rows, spread));
        let scoring = ScoringFunction::from_pairs([("attr_a", 0.6), ("attr_b", 0.4)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(trials)
            .unwrap()
            .with_noise(data_noise, weight_noise)
            .unwrap()
            .with_k(5)
            .with_seed(seed);
        let materialized = estimator.evaluate_materialized(&table, &scoring, &ranking).unwrap();
        let columnar = estimator.evaluate(&table, &scoring, &ranking).unwrap();
        prop_assert_eq!(&materialized, &columnar);
        let scheduler = Scheduler::new(workers);
        let batched = estimator
            .evaluate_batched_with(&scheduler, &table, &scoring, &ranking, None, factor)
            .unwrap();
        prop_assert_eq!(&materialized, &batched);
        prop_assert_eq!(
            serde_json::to_string(&materialized).unwrap(),
            serde_json::to_string(&batched).unwrap()
        );
    }
}
