//! The observability plane end to end, and its zero-interference contract.
//!
//! PR 8's acceptance hinges on two things holding *simultaneously*: the
//! server exposes request IDs, stage histograms, and slow-request traces
//! over the wire, **and** turning all of it up to maximum (slow threshold
//! zero — every request builds and publishes a full span trace) changes no
//! label byte.  These tests drive a real TCP server in both configurations
//! and compare served bodies byte for byte, then validate the `/metrics`
//! exposition with the same checker the load generator runs in CI.

use rf_bench::exposition::{check_counters_monotonic, check_slow_debug, parse_metrics};
use rf_server::{DatasetCatalog, Server, ServerConfig};
use std::collections::HashSet;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LABEL_PATH: &str = "/datasets/cs-departments/label.json?k=5";

/// Starts a demo-catalog server; `trace_all` drops the slow threshold to
/// zero so every request is traced (maximum instrumentation pressure).
fn start_server(trace_all: bool) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers: 2,
        slow_threshold_ms: if trace_all {
            0
        } else {
            ServerConfig::default().slow_threshold_ms
        },
        trace_ring_entries: 32,
        ..ServerConfig::default()
    };
    let server = Server::bind(DatasetCatalog::with_demo_datasets(), &config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, shutdown, handle)
}

fn stop(shutdown: &AtomicBool, handle: std::thread::JoinHandle<()>) {
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");
}

/// One GET over a fresh connection; returns `(head, body)`.
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let request = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let response = rf_net::read_one_response(&mut stream).expect("read response");
    let body = response.body_text();
    (response.head, body)
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

#[test]
fn full_tracing_changes_no_label_byte_and_ids_are_unique() {
    let (loud_addr, loud_shutdown, loud_handle) = start_server(true);
    let (quiet_addr, quiet_shutdown, quiet_handle) = start_server(false);

    // Cold miss, warm hit, and a default-threshold server must all serve
    // the same bytes: instrumentation is invisible in the label contract.
    let (cold_head, cold_body) = get(loud_addr, LABEL_PATH);
    let (warm_head, warm_body) = get(loud_addr, LABEL_PATH);
    let (_, quiet_body) = get(quiet_addr, LABEL_PATH);
    assert!(cold_head.starts_with("HTTP/1.1 200"), "head: {cold_head}");
    assert_eq!(cold_body, warm_body, "cache hit must reuse the cold bytes");
    assert_eq!(cold_body, quiet_body, "tracing must not change label bytes");

    // Every response carries a `shard:seq` request ID, unique per request.
    let mut seen = HashSet::new();
    for head in [&cold_head, &warm_head]
        .into_iter()
        .cloned()
        .chain((0..6).map(|_| get(loud_addr, LABEL_PATH).0))
    {
        let id = header(&head, "X-Request-Id").expect("X-Request-Id header");
        let (shard, seq) = id.split_once(':').expect("shard:seq format");
        shard.parse::<u32>().expect("numeric shard");
        seq.parse::<u64>().expect("numeric sequence");
        assert!(seen.insert(id.to_string()), "duplicate request id {id}");
    }

    // With the threshold at zero every request above landed in the trace
    // ring; the debug endpoint must serve them in the checked shape.
    let (slow_head, slow_body) = get(loud_addr, "/debug/slow");
    assert!(slow_head.starts_with("HTTP/1.1 200"), "head: {slow_head}");
    let capacity = check_slow_debug(&slow_body).expect("well-formed /debug/slow");
    assert_eq!(capacity, 32, "configured --trace-ring-entries");
    let parsed: serde_json::Value = serde_json::from_str(&slow_body).expect("json");
    let traces = parsed["traces"].as_array().expect("traces array");
    assert!(!traces.is_empty(), "threshold 0 must trace every request");

    stop(&loud_shutdown, loud_handle);
    stop(&quiet_shutdown, quiet_handle);
}

#[test]
fn metrics_exposition_is_valid_complete_and_monotone_over_tcp() {
    let (addr, shutdown, handle) = start_server(true);

    let (_, _) = get(addr, LABEL_PATH);
    let (first_head, first_body) = get(addr, "/metrics");
    assert!(first_head.starts_with("HTTP/1.1 200"), "head: {first_head}");
    assert!(
        header(&first_head, "Content-Type").is_some_and(|value| value.contains("version=0.0.4")),
        "Prometheus text exposition content type"
    );
    let before = parse_metrics(&first_body).expect("first scrape parses");

    // More traffic, then a second scrape: cumulative series never decrease.
    for _ in 0..4 {
        let (_, _) = get(addr, LABEL_PATH);
    }
    let (_, second_body) = get(addr, "/metrics");
    let after = parse_metrics(&second_body).expect("second scrape parses");
    check_counters_monotonic(&before, &after).expect("counters are monotone");

    // At least ten metric families, each TYPE-declared exactly once.
    let families: Vec<&str> = second_body
        .lines()
        .filter_map(|line| line.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .collect();
    assert!(families.len() >= 10, "only {} families", families.len());
    assert_eq!(
        families.len(),
        families.iter().collect::<HashSet<_>>().len(),
        "duplicate TYPE declarations"
    );

    // Stage histograms are exposed per shard and aggregated.
    for needle in [
        "rf_stage_duration_microseconds_count{stage=\"parse\",shard=\"0\"}",
        "rf_stage_duration_microseconds_count{stage=\"prepare\",shard=\"service\"}",
        "rf_stage_duration_microseconds_count{stage=\"render\",shard=\"all\"}",
        "rf_cache_hits_total",
        "rf_scheduler_executed_jobs_total",
        "rf_mc_runs_total",
        "rf_admission_max_pending",
        "rf_traces_recorded_total",
    ] {
        assert!(second_body.contains(needle), "missing {needle}");
    }

    stop(&shutdown, handle);
}
