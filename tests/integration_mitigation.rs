//! Integration test for the mitigation extension (paper §4 future work) on a
//! realistic dataset: the CS departments scenario where small departments are
//! shut out of the top-10.

use rf_core::{LabelConfig, MitigationSearch, NutritionalLabel};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;

fn scenario() -> (rf_table::Table, LabelConfig) {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.45), ("Faculty", 0.45), ("GRE", 0.10)])
            .unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_sensitive_attribute("DeptSizeBin", ["small"])
        .with_diversity_attribute("DeptSizeBin");
    (table, config)
}

#[test]
fn mitigation_improves_on_a_size_driven_recipe() {
    let (table, config) = scenario();

    // Premise: the original recipe is flagged.
    let original = NutritionalLabel::generate(&table, &config).unwrap();
    assert!(!original.fairness.all_fair() || !original.diversity.full_coverage());

    let suggestions = MitigationSearch::new()
        .with_factors(vec![0.25, 0.5, 1.0, 2.0, 4.0])
        .unwrap()
        .with_min_similarity(0.0)
        .with_max_suggestions(10)
        .suggest(&table, &config)
        .unwrap();
    assert!(!suggestions.is_empty());

    // The best suggestion is at least as good as the original on both axes.
    let best = &suggestions[0];
    let original_entry = suggestions
        .iter()
        .find(|s| s.is_original)
        .cloned()
        .unwrap_or_else(|| best.clone());
    assert!(best.unfair_features <= original_entry.unfair_features);
    assert!(best.attributes_losing_categories <= original_entry.attributes_losing_categories);

    // Every suggestion can actually be turned back into a label.
    for suggestion in &suggestions {
        let scoring = ScoringFunction::with_normalization(
            suggestion.weights.clone(),
            config.scoring.normalization(),
        )
        .unwrap();
        let candidate_config = LabelConfig {
            scoring,
            ..config.clone()
        };
        let label = NutritionalLabel::generate(&table, &candidate_config).unwrap();
        assert_eq!(label.ranking.len(), table.num_rows());
    }
}

#[test]
fn mitigation_is_deterministic() {
    let (table, config) = scenario();
    let run = || {
        MitigationSearch::new()
            .with_min_similarity(0.0)
            .suggest(&table, &config)
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn suggestions_respect_similarity_floor() {
    let (table, config) = scenario();
    let suggestions = MitigationSearch::new()
        .with_min_similarity(0.9)
        .suggest(&table, &config)
        .unwrap();
    for suggestion in &suggestions {
        assert!(suggestion.is_original || suggestion.similarity_to_original >= 0.9);
    }
}
