//! Integration: the command-line front end driven end-to-end, in process.
//!
//! These tests exercise the same flow a demo user would follow at the
//! terminal: export a dataset to CSV, feed that CSV back in as an "uploaded"
//! dataset, design a scoring function, generate the label in every format,
//! and run the mitigation / re-ranking / selection extensions.

use rf_cli::run;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rf_cli_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn generate_then_label_an_uploaded_csv() {
    // Step 1: export the synthetic CS dataset as CSV (the "download" half).
    let csv_path = temp_path("cs_departments.csv");
    let message = run([
        "generate",
        "--dataset",
        "cs",
        "--rows",
        "80",
        "--seed",
        "42",
        "--out",
        csv_path.to_str().unwrap(),
    ])
    .expect("generate");
    assert!(message.contains("wrote"));

    // Step 2: treat that CSV as a user upload and produce the label from it.
    let label = run([
        "label",
        "--data",
        csv_path.to_str().unwrap(),
        "--score",
        "PubCount=0.4,Faculty=0.4,GRE=0.2",
        "--sensitive",
        "DeptSizeBin=small",
        "--sensitive",
        "DeptSizeBin=large",
        "--diversity",
        "DeptSizeBin",
        "--diversity",
        "Region",
        "--k",
        "10",
    ])
    .expect("label");
    assert!(label.contains("Recipe"));
    assert!(label.contains("DeptSizeBin"));
    assert!(label.contains("Diversity"));

    // Step 3: the JSON rendering of the same configuration parses and keeps
    // the six-widget structure.
    let json = run([
        "label",
        "--data",
        csv_path.to_str().unwrap(),
        "--score",
        "PubCount=0.4,Faculty=0.4,GRE=0.2",
        "--sensitive",
        "DeptSizeBin=small",
        "--format",
        "json",
    ])
    .expect("json label");
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    for widget in [
        "recipe",
        "ingredients",
        "stability",
        "fairness",
        "diversity",
    ] {
        assert!(
            value.get(widget).is_some(),
            "label JSON must contain the `{widget}` widget"
        );
    }
}

#[test]
fn design_view_matches_figure3_flow() {
    let out = run([
        "design",
        "--dataset",
        "cs",
        "--rows",
        "60",
        "--seed",
        "1",
        "--attribute",
        "GRE",
        "--score",
        "PubCount=0.6,Faculty=0.4",
        "--preview",
        "8",
    ])
    .expect("design");
    assert!(out.contains("--- GRE ---"));
    assert!(out.contains("histogram"));
    assert!(out.contains("ranking preview"));
}

#[test]
fn mitigation_rerank_and_selection_extensions_run_end_to_end() {
    let mitigate = run([
        "mitigate",
        "--dataset",
        "cs",
        "--rows",
        "80",
        "--seed",
        "42",
        "--score",
        "PubCount=0.4,Faculty=0.4,GRE=0.2",
        "--sensitive",
        "DeptSizeBin=small",
        "--diversity",
        "DeptSizeBin",
        "--suggestions",
        "3",
    ])
    .expect("mitigate");
    assert!(mitigate.contains("Mitigation suggestions"));

    let rerank = run([
        "rerank",
        "--dataset",
        "german",
        "--rows",
        "400",
        "--seed",
        "11",
        "--score",
        "credit_score=1.0",
        "--sensitive",
        "age_group=young",
        "--k",
        "30",
    ])
    .expect("rerank");
    assert!(rerank.contains("before:"));
    assert!(rerank.contains("after:  FAIR"));

    let select = run([
        "select",
        "--dataset",
        "compas",
        "--rows",
        "500",
        "--seed",
        "7",
        "--utility",
        "decile_score",
        "--category",
        "race",
        "--k",
        "25",
        "--floor",
        "Other=10",
        "--runs",
        "15",
    ])
    .expect("select");
    assert!(select.contains("offline optimum"));
    assert!(select.contains("constraints satisfied in 100%"));
}

#[test]
fn errors_carry_distinct_exit_codes() {
    // Usage error: unknown command.
    let usage = run(["explode"]).unwrap_err();
    assert_eq!(usage.exit_code(), 2);
    // Usage error: malformed option value.
    let usage = run(["label", "--dataset", "cs", "--score", "PubCount=oops"]).unwrap_err();
    assert_eq!(usage.exit_code(), 2);
    // Execution error: valid command line, but the pipeline rejects the input
    // (missing column in this case).
    let exec = run([
        "label",
        "--dataset",
        "cs",
        "--rows",
        "40",
        "--score",
        "DoesNotExist=1.0",
    ])
    .unwrap_err();
    assert_eq!(exec.exit_code(), 1);
}
