//! Cross-crate integration tests: synthetic dataset → scoring function →
//! nutritional label, checking that the widgets are mutually consistent.

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;

fn cs_label() -> NutritionalLabel {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_dataset_name("CS departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    NutritionalLabel::generate(&table, &config).unwrap()
}

#[test]
fn label_generates_for_the_cs_scenario() {
    let label = cs_label();
    assert_eq!(label.ranking.len(), 97);
    assert_eq!(label.top_k_rows.len(), 10);
    assert_eq!(label.recipe.entries.len(), 3);
    assert_eq!(label.fairness.reports.len(), 2);
    assert_eq!(label.diversity.reports.len(), 2);
}

#[test]
fn ranking_is_a_permutation_of_the_dataset() {
    let label = cs_label();
    let mut order = label.ranking.order();
    order.sort_unstable();
    assert_eq!(order, (0..97).collect::<Vec<_>>());
}

#[test]
fn top_k_rows_agree_with_ranking() {
    let label = cs_label();
    for (row, item) in label.top_k_rows.iter().zip(label.ranking.top_k(10).iter()) {
        assert_eq!(row.rank, item.rank);
        assert_eq!(row.row_index, item.index);
        assert!((row.score - item.score).abs() < 1e-12);
    }
}

#[test]
fn recipe_weights_sum_to_one_after_normalization() {
    let label = cs_label();
    let total: f64 = label
        .recipe
        .entries
        .iter()
        .map(|e| e.normalized_weight.abs())
        .sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn recipe_details_cover_top_k_and_overall() {
    let label = cs_label();
    for detail in &label.recipe.details {
        assert_eq!(detail.top_k.count, 10);
        assert_eq!(detail.overall.count, 97);
        assert!(detail.top_k.min >= detail.overall.min - 1e-9);
        assert!(detail.top_k.max <= detail.overall.max + 1e-9);
    }
}

#[test]
fn fairness_reports_reference_configured_features() {
    let label = cs_label();
    let features: Vec<(String, String)> = label
        .fairness
        .reports
        .iter()
        .map(|r| (r.attribute.clone(), r.protected_value.clone()))
        .collect();
    assert!(features.contains(&("DeptSizeBin".to_string(), "large".to_string())));
    assert!(features.contains(&("DeptSizeBin".to_string(), "small".to_string())));
    for report in &label.fairness.reports {
        for outcome in report.outcomes() {
            assert!((0.0..=1.0).contains(&outcome.p_value));
        }
        assert!((0.0..=1.0).contains(&report.discounted.rnd));
    }
}

#[test]
fn diversity_proportions_are_consistent() {
    let label = cs_label();
    for report in &label.diversity.reports {
        let top_sum: f64 = report.top_k.proportions().iter().sum();
        let all_sum: f64 = report.overall.proportions().iter().sum();
        assert!((top_sum - 1.0).abs() < 1e-9);
        assert!((all_sum - 1.0).abs() < 1e-9);
        assert_eq!(report.top_k.total, 10);
        assert_eq!(report.overall.total, 97);
        // Categories missing from the top-k must have zero top-k proportion.
        for missing in &report.missing_from_top_k {
            assert_eq!(report.top_k.proportion_of(missing), 0.0);
            assert!(report.overall.proportion_of(missing) > 0.0);
        }
    }
}

#[test]
fn stability_widget_consistent_with_slope_estimator() {
    let label = cs_label();
    assert_eq!(
        label.stability.stable,
        label.stability.slope.verdict() == rf_stability::StabilityVerdict::Stable
    );
    assert!(label.stability.stability_score >= 0.0);
    assert_eq!(label.stability.per_attribute.len(), 3);
}

#[test]
fn ingredients_associations_are_sorted_and_bounded() {
    let label = cs_label();
    for pair in label.ingredients.ingredients.windows(2) {
        assert!(pair[0].rank_association >= pair[1].rank_association);
    }
    for ing in &label.ingredients.all_attributes {
        assert!((0.0..=1.0 + 1e-9).contains(&ing.rank_association));
        assert!(ing.signed_association.abs() <= 1.0 + 1e-9);
    }
}

#[test]
fn changing_weights_changes_the_ranking_but_not_the_schema() {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let config_a =
        LabelConfig::new(ScoringFunction::from_pairs([("PubCount", 1.0), ("GRE", 0.0)]).unwrap())
            .with_top_k(10);
    let config_b =
        LabelConfig::new(ScoringFunction::from_pairs([("PubCount", 0.0), ("GRE", 1.0)]).unwrap())
            .with_top_k(10);
    let label_a = NutritionalLabel::generate(&table, &config_a).unwrap();
    let label_b = NutritionalLabel::generate(&table, &config_b).unwrap();
    assert_ne!(label_a.ranking.order(), label_b.ranking.order());
    assert_eq!(label_a.ranking.len(), label_b.ranking.len());
}

#[test]
fn label_generation_is_deterministic() {
    let a = cs_label();
    let b = cs_label();
    assert_eq!(a, b);
}

#[test]
fn invalid_configurations_are_rejected() {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring = ScoringFunction::from_pairs([("PubCount", 1.0)]).unwrap();
    // k larger than the dataset.
    let config = LabelConfig::new(scoring.clone()).with_top_k(500);
    assert!(NutritionalLabel::generate(&table, &config).is_err());
    // Sensitive attribute that is numeric.
    let config = LabelConfig::new(scoring.clone())
        .with_top_k(10)
        .with_sensitive_attribute("PubCount", ["1.0"]);
    assert!(NutritionalLabel::generate(&table, &config).is_err());
    // Sensitive attribute with more than two values (Region).
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_sensitive_attribute("Region", ["NE"]);
    assert!(NutritionalLabel::generate(&table, &config).is_err());
}
