//! Integration tests for the three label renderers on realistic datasets.

use rf_core::{render_html, render_json, render_text, LabelConfig, NutritionalLabel};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;

fn label() -> NutritionalLabel {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_dataset_name("CS departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    NutritionalLabel::generate(&table, &config).unwrap()
}

#[test]
fn text_render_contains_all_sections_and_items() {
    let label = label();
    let text = render_text(&label);
    for needle in [
        "Ranking Facts",
        "CS departments",
        "Recipe",
        "Ingredients",
        "Stability",
        "Fairness",
        "Diversity",
        "PubCount",
        "GRE",
    ] {
        assert!(text.contains(needle), "text output missing `{needle}`");
    }
    // Every top-10 identifier appears.
    for row in &label.top_k_rows {
        assert!(text.contains(&row.identifier));
    }
}

#[test]
fn html_render_is_well_formed_and_escaped() {
    let label = label();
    let html = render_html(&label);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("</html>"));
    // Section cards for every widget.
    for class in [
        "recipe",
        "ingredients",
        "stability",
        "fairness",
        "diversity",
    ] {
        assert!(html.contains(&format!("class=\"card {class}\"")));
    }
    // Balanced table tags.
    assert_eq!(
        html.matches("<table>").count(),
        html.matches("</table>").count()
    );
    assert_eq!(
        html.matches("<section").count(),
        html.matches("</section>").count()
    );
}

#[test]
fn json_render_roundtrips_and_matches_label_content() {
    let label = label();
    let json = render_json(&label).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["dataset_name"], "CS departments");
    assert_eq!(
        value["top_k_rows"].as_array().unwrap().len(),
        label.top_k_rows.len()
    );
    assert_eq!(
        value["fairness"]["reports"].as_array().unwrap().len(),
        label.fairness.reports.len()
    );
    // Round-trip: serialize → parse → serialize reaches a fixpoint and the
    // structural content survives (float formatting may differ by ULPs).
    let parsed: NutritionalLabel = serde_json::from_str(&json).unwrap();
    assert_eq!(render_json(&parsed).unwrap(), json);
    assert_eq!(parsed.ranking.order(), label.ranking.order());
    assert_eq!(parsed.config, label.config);
}

#[test]
fn renders_survive_hostile_strings_in_data() {
    // Identifiers containing HTML-special characters must be escaped, not
    // injected, in the HTML output.
    use rf_table::{Column, Table};
    let table = Table::from_columns(vec![
        (
            "name",
            Column::from_strings(["<script>alert(1)</script>", "a & b", "\"quoted\"", "plain"]),
        ),
        ("score", Column::from_f64(vec![4.0, 3.0, 2.0, 1.0])),
        ("grp", Column::from_strings(["x", "y", "x", "y"])),
    ])
    .unwrap();
    let scoring = ScoringFunction::from_pairs([("score", 1.0)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(2)
        .with_sensitive_attribute("grp", ["x"])
        .with_diversity_attribute("grp");
    let label = NutritionalLabel::generate(&table, &config).unwrap();
    let html = label.to_html();
    assert!(!html.contains("<script>alert(1)</script>"));
    assert!(html.contains("&lt;script&gt;"));
    assert!(html.contains("a &amp; b"));
}
