//! Integration: constrained set selection over the synthetic demo datasets.
//!
//! Pipeline under test: dataset generator (`rf-datasets`) → candidate pool
//! (`rf-setsel::items`) → offline optimum and online strategies → the
//! diversity effect the nutritional label reports (which categories survive
//! into the selected set).

use rf_datasets::{CompasConfig, CsDepartmentsConfig};
use rf_setsel::{
    evaluate_online, expected_utility_ratio, offline_select, Candidate, ConstraintSet,
    GroupConstraint, OnlineSelector, OnlineStrategy,
};

fn count_of(counts: &[(String, usize)], category: &str) -> usize {
    counts
        .iter()
        .find(|(c, _)| c == category)
        .map_or(0, |(_, n)| *n)
}

#[test]
fn floors_restore_small_departments_to_the_top_k() {
    // Unconstrained top-10 by publications contains only large departments
    // (the paper's Diversity finding); a floor on `small` restores them.
    let table = CsDepartmentsConfig::default().generate().expect("dataset");
    let candidates = Candidate::from_table(&table, "PubCount", "DeptSizeBin").expect("candidates");

    let unconstrained =
        offline_select(&candidates, &ConstraintSet::unconstrained(10).unwrap()).expect("top-10");
    assert_eq!(
        count_of(&unconstrained.category_counts, "small"),
        0,
        "plain top-10 must reproduce the paper's finding that small departments vanish"
    );

    let constrained = offline_select(
        &candidates,
        &ConstraintSet::new(10, vec![GroupConstraint::at_least("small", 3).unwrap()]).unwrap(),
    )
    .expect("constrained top-10");
    assert_eq!(count_of(&constrained.category_counts, "small"), 3);
    assert_eq!(constrained.items.len(), 10);
    // Diversity has a price: the constrained selection gives up some utility.
    assert!(constrained.total_utility <= unconstrained.total_utility);
    assert_eq!(constrained.forced_by_floors, 3);
}

#[test]
fn online_selection_over_compas_respects_constraints_for_every_order() {
    let table = CompasConfig {
        rows: 1_000,
        ..CompasConfig::default()
    }
    .generate()
    .expect("dataset");
    let candidates = Candidate::from_table(&table, "decile_score", "race").expect("candidates");
    let constraints = ConstraintSet::new(
        40,
        vec![
            GroupConstraint::at_least("Other", 15).unwrap(),
            GroupConstraint::at_most("African-American", 25).unwrap(),
        ],
    )
    .unwrap();

    let offline = offline_select(&candidates, &constraints).expect("offline");
    assert!(constraints.is_satisfied_by(&offline.items));

    for strategy in [OnlineStrategy::Greedy, OnlineStrategy::secretary()] {
        let selector = OnlineSelector::new(constraints.clone(), strategy).expect("selector");
        for seed in 0..10 {
            let online = selector.run_shuffled(&candidates, seed).expect("run");
            assert!(constraints.is_satisfied_by(&online.items));
            let eval = evaluate_online(&candidates, &constraints, online).expect("evaluation");
            assert!(eval.utility_ratio <= 1.0 + 1e-9);
            assert!(eval.utility_ratio > 0.0);
        }
    }
}

#[test]
fn secretary_warmup_closes_most_of_the_gap_to_offline() {
    let table = CompasConfig {
        rows: 1_500,
        ..CompasConfig::default()
    }
    .generate()
    .expect("dataset");
    let candidates = Candidate::from_table(&table, "decile_score", "race").expect("candidates");
    let constraints =
        ConstraintSet::new(50, vec![GroupConstraint::at_least("Other", 20).unwrap()]).unwrap();
    let selector = OnlineSelector::new(constraints, OnlineStrategy::secretary()).expect("selector");
    let summary = expected_utility_ratio(&candidates, &selector, 40, 3).expect("summary");
    assert!(
        summary.mean > 0.75,
        "expected the warm-up strategy to reach at least 75% of the offline optimum, got {:.3}",
        summary.mean
    );
    assert!((summary.constraint_satisfaction_rate - 1.0).abs() < 1e-12);
}

#[test]
fn ceilings_cap_the_over_represented_group() {
    // The COMPAS generator shifts protected scores upward, so an
    // unconstrained top-k over-selects the protected group; a ceiling caps it.
    let table = CompasConfig {
        rows: 1_000,
        ..CompasConfig::default()
    }
    .generate()
    .expect("dataset");
    let candidates = Candidate::from_table(&table, "decile_score", "race").expect("candidates");

    let unconstrained =
        offline_select(&candidates, &ConstraintSet::unconstrained(30).unwrap()).expect("top-30");
    let aa_unconstrained = count_of(&unconstrained.category_counts, "African-American");

    let capped = offline_select(
        &candidates,
        &ConstraintSet::new(
            30,
            vec![GroupConstraint::at_most("African-American", 15).unwrap()],
        )
        .unwrap(),
    )
    .expect("capped top-30");
    let aa_capped = count_of(&capped.category_counts, "African-American");
    assert!(
        aa_unconstrained > 15,
        "the injected score skew must be visible"
    );
    assert_eq!(aa_capped, 15);
}
