//! Per-trial Monte-Carlo stability on the label hot path.
//!
//! The contract of the work-stealing refactor: decomposing the §2.2
//! uncertainty estimator into one scheduler task per trial may change *when*
//! trials run, never *what* they compute.  Each trial draws from its own
//! derived ChaCha stream (`seed ⊕ trial`), so:
//!
//! 1. the parallel schedule is **byte-identical** to the sequential reference
//!    on all three demo scenarios, at any worker count (counter-verified to
//!    run exactly `trials` tasks on the scheduler);
//! 2. the same holds for random seeds, trial counts, noise levels, and
//!    worker counts (proptest);
//! 3. a full label — widget fan-out with the per-trial fan-out nested inside
//!    it — completes on a **one-worker** scheduler (the nested-scope
//!    deadlock regression, end to end) and still matches the sequential
//!    pipeline byte for byte.

use proptest::prelude::*;
use rf_core::{AnalysisPipeline, LabelConfig};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig};
use rf_ranking::{Ranking, ScoringFunction};
use rf_runtime::{Scheduler, ThreadPool};
use rf_stability::MonteCarloStability;
use rf_table::{Column, Table};
use std::sync::Arc;

fn demo_scenarios() -> Vec<(&'static str, Arc<Table>, ScoringFunction)> {
    vec![
        (
            "cs-departments",
            Arc::new(CsDepartmentsConfig::default().generate().unwrap()),
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .unwrap(),
        ),
        (
            "compas",
            Arc::new(CompasConfig::with_rows(600).generate().unwrap()),
            ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap(),
        ),
        (
            "german-credit",
            Arc::new(GermanCreditConfig::default().generate().unwrap()),
            ScoringFunction::from_pairs([
                ("credit_score", 0.7),
                ("employment_years", 0.2),
                ("credit_amount", -0.1),
            ])
            .unwrap(),
        ),
    ]
}

#[test]
fn per_trial_parallel_is_byte_identical_on_all_demo_scenarios() {
    for (name, table, scoring) in demo_scenarios() {
        let ranking: Ranking = scoring.rank_table(&table).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(24)
            .unwrap()
            .with_noise(0.05, 0.05)
            .unwrap()
            .with_k(10)
            .with_seed(42);
        let sequential = estimator.evaluate(&table, &scoring, &ranking).unwrap();
        let sequential_json = serde_json::to_string(&sequential).unwrap();

        for workers in [1usize, 2, 4] {
            // A dedicated scheduler so the task counter is exact: the
            // estimator must schedule one task per trial, no more, no less.
            let scheduler = Scheduler::new(workers);
            let before = scheduler.executed_jobs();
            let parallel = estimator
                .evaluate_on(&scheduler, &table, &scoring, &ranking)
                .unwrap();
            assert_eq!(
                scheduler.executed_jobs() - before,
                24,
                "{name}: exactly one scheduler task per trial ({workers} workers)"
            );
            assert_eq!(
                sequential, parallel,
                "{name}: per-trial parallel summary diverges ({workers} workers)"
            );
            assert_eq!(
                sequential_json,
                serde_json::to_string(&parallel).unwrap(),
                "{name}: serialized summaries diverge ({workers} workers)"
            );
        }
    }
}

#[test]
fn full_label_with_nested_trials_completes_on_a_one_worker_pool() {
    // The end-to-end nested-scope regression: the widget fan-out runs on the
    // pool, and inside it the Stability builder fans out one task per trial
    // on the *same* pool.  With a single worker this deadlocked the old flat
    // queue design; scopes whose waiters help must complete — and match the
    // sequential reference byte for byte.
    let table = Arc::new(CsDepartmentsConfig::default().generate().unwrap());
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = Arc::new(
        LabelConfig::new(scoring)
            .with_top_k(10)
            .with_dataset_name("CS departments")
            .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
            .with_diversity_attribute("DeptSizeBin")
            .with_monte_carlo_trials(16),
    );

    let sequential = AnalysisPipeline::sequential()
        .generate(Arc::clone(&table), Arc::clone(&config))
        .unwrap();
    for workers in [1usize, 2] {
        let pool = Arc::new(ThreadPool::new(workers));
        let parallel = AnalysisPipeline::with_pool(pool)
            .generate(Arc::clone(&table), Arc::clone(&config))
            .unwrap();
        assert_eq!(
            parallel.to_json().unwrap(),
            sequential.to_json().unwrap(),
            "label diverges on a {workers}-worker pool"
        );
        assert!(parallel.stability.monte_carlo.is_some());
    }
}

/// A deterministic numeric table for the property tests.
fn random_table(rows: usize, spread: f64) -> Table {
    let a: Vec<f64> = (0..rows)
        .map(|i| (i as f64 * 7.3).sin() * spread + i as f64)
        .collect();
    let b: Vec<f64> = (0..rows)
        .map(|i| (i as f64 * 3.1).cos() * spread * 0.5 + (rows - i) as f64)
        .collect();
    Table::from_columns(vec![
        ("attr_a", Column::from_f64(a)),
        ("attr_b", Column::from_f64(b)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_trials_match_sequential_for_random_inputs(
        seed in 0u64..=u64::MAX,
        trials in 1usize..24,
        workers in 1usize..5,
        data_noise in 0.0..0.4f64,
        weight_noise in 0.0..0.4f64,
        rows in 8usize..48,
        spread in 0.5..50.0f64,
    ) {
        let table = Arc::new(random_table(rows, spread));
        let scoring = ScoringFunction::from_pairs([("attr_a", 0.6), ("attr_b", 0.4)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(trials)
            .unwrap()
            .with_noise(data_noise, weight_noise)
            .unwrap()
            .with_k(5)
            .with_seed(seed);
        let sequential = estimator.evaluate(&table, &scoring, &ranking).unwrap();
        let scheduler = Scheduler::new(workers);
        let parallel = estimator
            .evaluate_on(&scheduler, &table, &scoring, &ranking)
            .unwrap();
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(
            serde_json::to_string(&sequential).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}
