//! The event-driven server under concurrency: many keep-alive connections
//! on a tiny worker pool.
//!
//! This is the acceptance test for the `rf-net` reactor.  A 2-worker server
//! holds 64+ open keep-alive connections — most idle, some active, one
//! deliberately slow — and every label response must be byte-identical to a
//! cold single-connection generation.  Under the old
//! one-blocking-worker-per-connection design this test cannot pass at all:
//! two idle connections alone would pin both workers forever.
//!
//! The second half drives the `LabelService` single-flight path end to end:
//! a concurrent burst of identical cold requests must perform exactly one
//! context preparation (counter-verified over `GET /stats`).
//!
//! NOTE: the preparation counter is process-wide, so every scenario that
//! generates labels lives in the one `#[test]` below, sequenced around the
//! counter reads; the error-isolation test only touches non-generating
//! endpoints.

use rf_server::{DatasetCatalog, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes every label-*generating* test in this file: the preparation
/// counter is process-wide, so a test that asserts an exact counter delta
/// must not overlap another test's generations.
fn generation_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts a demo server with a deliberately small label pool.
fn start_server(workers: usize) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    start_server_with(ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
}

/// Starts a demo server from a full config (reactor shards, admission
/// bounds).
fn start_server_with(
    config: ServerConfig,
) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let server = Server::bind(DatasetCatalog::with_demo_datasets(), &config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, shutdown, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
}

/// Sends one GET on an existing (keep-alive) stream.
fn send_get(stream: &mut TcpStream, path: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\r\n")
                .as_bytes(),
        )
        .expect("write request");
}

/// Reads exactly one response (head + `Content-Length` body); returns
/// `(head, body)`.
fn read_response(stream: &mut TcpStream) -> (String, String) {
    let response = rf_net::read_one_response(stream).expect("response");
    let body = response.body_text();
    (response.head, body)
}

/// One-shot request on a fresh connection (`Connection: close`).
fn fetch(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = connect(addr);
    send_get(&mut stream, path, true);
    read_response(&mut stream)
}

/// The service counters, read over the wire.
fn stats(addr: SocketAddr) -> serde_json::Value {
    let (head, body) = fetch(addr, "/stats");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    serde_json::from_str(&body).expect("stats JSON")
}

const LABEL_PATH: &str = "/datasets/cs-departments/label.json?k=5";

#[test]
fn sixty_four_keep_alive_connections_on_a_two_worker_pool() {
    let _generations = generation_lock();
    let (addr, shutdown, handle) = start_server(2);

    // Cold single-connection reference generation.
    let (head, reference) = fetch(addr, LABEL_PATH);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let reference = Arc::new(reference);

    // 64 simultaneously open keep-alive connections: 48 idle, 15 active,
    // 1 slow reader.  The idle ones are opened first and stay open the whole
    // time — under the old design they would pin both pool workers and no
    // active request could ever be served.
    let idle: Vec<TcpStream> = (0..48).map(|_| connect(addr)).collect();

    let active_threads: Vec<_> = (0..15)
        .map(|_| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                // Several sequential requests reuse the one connection.
                for round in 0..3 {
                    send_get(&mut stream, LABEL_PATH, false);
                    let (head, body) = read_response(&mut stream);
                    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                    assert!(head.contains("Connection: keep-alive"), "{head}");
                    assert_eq!(
                        body, *reference,
                        "round {round}: keep-alive response must be byte-identical \
                         to the cold single-connection generation"
                    );
                }
            })
        })
        .collect();

    // The slow reader drains its response a few bytes at a time.  It holds
    // only its own write buffer — never a pool worker — so it cannot slow
    // the active connections down.
    let slow_thread = {
        let reference = Arc::clone(&reference);
        std::thread::spawn(move || {
            let mut stream = connect(addr);
            send_get(&mut stream, LABEL_PATH, true);
            let mut response = Vec::new();
            let mut chunk = [0u8; 7];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        response.extend_from_slice(&chunk[..n]);
                        if response.len() < 700 {
                            std::thread::sleep(Duration::from_millis(3));
                        }
                    }
                    Err(err) => panic!("slow read: {err}"),
                }
            }
            let text = String::from_utf8_lossy(&response).into_owned();
            let body = text.split("\r\n\r\n").nth(1).expect("body");
            assert_eq!(body, *reference, "slow reader still gets exact bytes");
        })
    };

    for thread in active_threads {
        thread.join().expect("active connection");
    }
    slow_thread.join().expect("slow reader");

    // The idle connections are still alive and serviceable afterwards.
    let mut woken = idle.into_iter().next().expect("one idle connection");
    send_get(&mut woken, LABEL_PATH, false);
    let (head, body) = read_response(&mut woken);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(body, *reference);

    // ── Single-flight: a concurrent burst of identical *cold* requests
    // performs exactly one preparation. ──────────────────────────────────
    let before = stats(addr);
    let preparations_before = before["preparations"].as_u64().expect("preparations");

    let burst_path = "/datasets/cs-departments/label.json?k=6"; // never requested above
    let burst = 16usize;
    let barrier = Arc::new(Barrier::new(burst));
    let burst_threads: Vec<_> = (0..burst)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (head, body) = fetch(addr, burst_path);
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                body
            })
        })
        .collect();
    let bodies: Vec<String> = burst_threads
        .into_iter()
        .map(|thread| thread.join().expect("burst request"))
        .collect();
    for body in &bodies {
        assert_eq!(body, &bodies[0], "coalesced requests share one result");
    }

    let after = stats(addr);
    let preparations_after = after["preparations"].as_u64().expect("preparations");
    assert_eq!(
        preparations_after - preparations_before,
        1,
        "a burst of {burst} identical cold requests must prepare exactly once \
         (before: {before}, after: {after})"
    );
    assert!(
        after["coalesced"].as_u64().is_some(),
        "stats expose the coalescing counter: {after}"
    );

    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");
}

#[test]
fn two_reactor_shards_serve_byte_identical_labels() {
    let _generations = generation_lock();

    // Reference bytes from today's single-reactor topology.
    let (addr, shutdown, handle) = start_server(2);
    let (head, reference) = fetch(addr, LABEL_PATH);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("single-reactor server");
    let reference = Arc::new(reference);

    // The same demo catalogue behind two SO_REUSEPORT reactor shards.
    let (addr, shutdown, handle) = start_server_with(ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers: 2,
        reactors: 2,
        ..ServerConfig::default()
    });

    // 64 simultaneously open keep-alive connections, kernel-balanced across
    // the shards, each serving several sequential label requests.
    let mut streams: Vec<TcpStream> = (0..64).map(|_| connect(addr)).collect();
    for round in 0..2 {
        for stream in &mut streams {
            send_get(stream, LABEL_PATH, false);
        }
        for stream in &mut streams {
            let (head, body) = read_response(stream);
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert_eq!(
                body, *reference,
                "round {round}: sharded response must be byte-identical to \
                 the single-reactor server's"
            );
        }
    }

    // /stats rolls both shards up; the torn-read discipline holds while the
    // 64 connections are still open.
    let value = stats(addr);
    let network = &value["network"];
    let reactors = network["reactors"].as_array().expect("reactor array");
    assert_eq!(reactors.len(), 2, "{network}");
    for shard in reactors {
        assert!(
            shard["accepted"].as_u64().unwrap() > 0,
            "kernel balanced nothing onto one shard: {network}"
        );
        assert!(shard["active"].as_u64().unwrap() <= shard["accepted"].as_u64().unwrap());
    }
    let totals = &network["totals"];
    assert!(totals["accepted"].as_u64().unwrap() >= 64, "{network}");
    assert!(totals["active"].as_u64().unwrap() <= totals["accepted"].as_u64().unwrap());
    assert_eq!(totals["shed_requests"].as_u64().unwrap(), 0, "{network}");

    drop(streams);
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("sharded server");
}

#[test]
fn saturated_dispatch_queue_sheds_with_503_and_retry_after() {
    let _generations = generation_lock();

    // One worker, and admission allows exactly one unanswered request.
    let (addr, shutdown, handle) = start_server_with(ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers: 1,
        max_pending: 1,
        ..ServerConfig::default()
    });

    // A deliberately slow cold request (1024 Monte-Carlo re-rankings of the
    // 1000-row German-credit dataset) occupies the only worker…
    let mut slow = connect(addr);
    send_get(
        &mut slow,
        "/datasets/german-credit/label.json?trials=1024&mc_seed=4242",
        false,
    );

    // …so a keep-alive burst behind it is refused at admission: 503 with a
    // Retry-After hint, connection left open.
    let mut burst: Vec<TcpStream> = (0..8).map(|_| connect(addr)).collect();
    for stream in &mut burst {
        send_get(stream, LABEL_PATH, false);
    }
    let mut shed = 0u32;
    for stream in &mut burst {
        let (head, _body) = read_response(stream);
        if head.starts_with("HTTP/1.1 503") {
            assert!(head.contains("Retry-After:"), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            shed += 1;
        }
    }
    assert!(shed >= 1, "saturated queue must shed at least one request");

    // The slow request itself completes normally.
    let (head, _body) = read_response(&mut slow);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");

    // Shed connections survived and are served once pressure lifts — retry
    // on one of the very sockets that got the 503.
    let mut retried = burst.into_iter().next().expect("one shed connection");
    let mut recovered = false;
    for _ in 0..50 {
        send_get(&mut retried, LABEL_PATH, false);
        let (head, _body) = read_response(&mut retried);
        if head.starts_with("HTTP/1.1 200 OK") {
            recovered = true;
            break;
        }
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        recovered,
        "shed connection must be served after the backlog"
    );

    // The shed shows up in the rolled-up reactor counters.
    let value = stats(addr);
    let totals = &value["network"]["totals"];
    assert!(totals["shed_requests"].as_u64().unwrap() >= u64::from(shed));

    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");
}

#[test]
fn connection_errors_are_isolated_to_their_connection() {
    // Only non-generating endpoints here: the test above sequences the
    // process-wide preparation counter and runs in parallel with this one.
    let (addr, shutdown, handle) = start_server(2);

    // A long-lived healthy connection, opened before any of the failures.
    let mut healthy = connect(addr);
    send_get(&mut healthy, "/datasets", false);
    let (head, _body) = read_response(&mut healthy);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");

    // 1. Malformed request: 400, then only that connection closes.
    let mut broken = connect(addr);
    broken.write_all(b"gibberish\r\n\r\n").expect("write");
    let (head, _body) = read_response(&mut broken);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    let mut rest = Vec::new();
    broken.read_to_end(&mut rest).expect("eof after 400");
    assert!(rest.is_empty());

    // 2. Unsupported method: routed 400, connection stays up (framing is
    // intact, only the method is unknown to the router).
    let mut odd = connect(addr);
    odd.write_all(b"BREW /coffee HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let (head, _body) = read_response(&mut odd);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");

    // 3. Disconnect before the response is read: the server's write hits a
    // dead socket and must only tear down that connection.
    for _ in 0..4 {
        let mut vanishing = connect(addr);
        send_get(&mut vanishing, "/datasets", false);
        drop(vanishing);
    }
    // Give the reactor a moment to trip over the dead sockets.
    std::thread::sleep(Duration::from_millis(100));

    // The healthy connection opened before all of that still works.
    send_get(&mut healthy, "/stats", false);
    let (head, body) = read_response(&mut healthy);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("coalesced"), "{body}");

    // And the server still accepts fresh connections.
    let (head, _body) = fetch(addr, "/datasets");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");

    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");
}
