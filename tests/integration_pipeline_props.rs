//! Property-based integration tests over the full pipeline: random datasets
//! and scoring weights, checking label-wide invariants.

use proptest::prelude::*;
use rf_core::{LabelConfig, NutritionalLabel};
use rf_ranking::ScoringFunction;
use rf_table::{Column, Table};

/// Builds a random but well-formed dataset: two numeric attributes, one
/// binary group, one multi-valued category.
fn dataset(rows: usize, values: &[f64]) -> Table {
    let a: Vec<f64> = (0..rows).map(|i| values[i % values.len()]).collect();
    let b: Vec<f64> = (0..rows)
        .map(|i| values[(i * 7 + 3) % values.len()] * 0.5 + i as f64)
        .collect();
    let group: Vec<&str> = (0..rows)
        .map(|i| if i % 3 == 0 { "g1" } else { "g2" })
        .collect();
    let cat: Vec<&str> = (0..rows)
        .map(|i| match i % 4 {
            0 => "north",
            1 => "south",
            2 => "east",
            _ => "west",
        })
        .collect();
    Table::from_columns(vec![
        ("attr_a", Column::from_f64(a)),
        ("attr_b", Column::from_f64(b)),
        ("group", Column::from_strings(group)),
        ("category", Column::from_strings(cat)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn label_invariants_hold_for_random_inputs(
        rows in 12usize..80,
        values in prop::collection::vec(-1.0e3..1.0e3f64, 8..32),
        w_a in 0.05..1.0f64,
        w_b in 0.05..1.0f64,
        k in 2usize..12,
    ) {
        // Ensure attribute A is not constant (min-max normalization requires spread).
        prop_assume!(values.iter().any(|v| (v - values[0]).abs() > 1e-6));
        let table = dataset(rows, &values);
        let k = k.min(rows);
        let scoring = ScoringFunction::from_pairs([("attr_a", w_a), ("attr_b", w_b)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(k)
            .with_sensitive_attribute("group", ["g1"])
            .with_diversity_attribute("category");
        let label = NutritionalLabel::generate(&table, &config).unwrap();

        // The ranking is a permutation of the rows.
        let mut order = label.ranking.order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..rows).collect::<Vec<_>>());

        // Scores in rank order never increase.
        let scores = label.ranking.scores_in_rank_order();
        for pair in scores.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }

        // Top-k display rows match the ranking prefix.
        prop_assert_eq!(label.top_k_rows.len(), k);
        for (row, item) in label.top_k_rows.iter().zip(label.ranking.top_k(k)) {
            prop_assert_eq!(row.row_index, item.index);
        }

        // Every fairness p-value lies in [0, 1]; verdicts match thresholds for
        // the two plain tests.
        for report in &label.fairness.reports {
            prop_assert!((0.0..=1.0).contains(&report.pairwise.p_value));
            prop_assert!((0.0..=1.0).contains(&report.proportion.p_value));
            prop_assert!((0.0..=1.0).contains(&report.fair_star.p_value));
            prop_assert_eq!(report.pairwise.fair, report.pairwise.p_value >= report.alpha);
            prop_assert_eq!(report.proportion.fair, report.proportion.p_value >= report.alpha);
            prop_assert!((0.0..=1.0).contains(&report.discounted.rnd));
            prop_assert!((0.0..=1.0).contains(&report.discounted.rkl));
            prop_assert!((0.0..=1.0).contains(&report.discounted.rrd));
        }

        // Diversity proportions sum to one in both views, and lost categories
        // really are absent from the top-k.
        for report in &label.diversity.reports {
            let sum_top: f64 = report.top_k.proportions().iter().sum();
            let sum_all: f64 = report.overall.proportions().iter().sum();
            prop_assert!((sum_top - 1.0).abs() < 1e-9);
            prop_assert!((sum_all - 1.0).abs() < 1e-9);
            for missing in &report.missing_from_top_k {
                prop_assert_eq!(report.top_k.proportion_of(missing), 0.0);
            }
        }

        // Stability scores are non-negative and the verdict is consistent.
        prop_assert!(label.stability.stability_score >= 0.0);
        prop_assert_eq!(
            label.stability.stable,
            label.stability.stability_score > label.config.stability_threshold
        );

        // The label serializes to JSON and parses back with the same ranking.
        let json = label.to_json().unwrap();
        let parsed: NutritionalLabel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(parsed.ranking.order(), label.ranking.order());
        prop_assert_eq!(parsed.config, label.config);
    }
}
