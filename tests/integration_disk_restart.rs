//! Kill-and-restart: a label service killed after its write-behind settles
//! leaves a warm disk tier behind, and the *restarted* service's first
//! request is served from it — zero context preparations, byte-identical
//! bytes — then promoted so the second request is a plain memory hit.
//!
//! Everything counter-sensitive lives in ONE test function: the preparation
//! counter is process-wide, so concurrently running sibling tests would race
//! it.  (Each integration-test binary is its own process, so other test
//! files cannot interfere.)

use rf_core::{AnalysisContext, AnalysisPipeline, LabelConfig, LabelService};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;
use rf_store::DiskStore;
use rf_table::Table;
use std::sync::Arc;

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("rf-disk-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scenario() -> (Arc<Table>, Arc<LabelConfig>) {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_dataset_name("CS departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    (Arc::new(table), Arc::new(config))
}

fn disk_service(dir: &std::path::Path) -> LabelService {
    LabelService::with_pipeline(AnalysisPipeline::sequential(), 8, 1 << 22)
        .with_disk_tier(Arc::new(DiskStore::open(dir, 1 << 22).unwrap()))
}

#[test]
fn a_restarted_service_serves_its_first_request_from_the_disk_tier() {
    let scratch = Scratch::new();
    let (table, config) = scenario();

    // Life 1: one cold request, write-behind settled, then "kill" — dropping
    // the service joins the writer thread, exactly what a clean process exit
    // does (a hard kill after the fsync+rename leaves the same bytes).
    let cold = {
        let service = disk_service(&scratch.0);
        let cold = service.label(&table, &config).unwrap();
        service.disk_store().unwrap().flush();
        let disk = service.stats().disk.unwrap();
        assert_eq!(disk.entries, 1, "the fill reached the disk tier");
        assert_eq!(disk.write_errors, 0);
        cold
    };

    // Life 2: a brand-new process image — empty memory tier, rescanned
    // directory.  The first request must be a disk hit with ZERO pipeline
    // preparations, byte-identical to the pre-kill label.
    let service = disk_service(&scratch.0);
    let prepared_before = AnalysisContext::preparations();
    let first = service.label(&table, &config).unwrap();
    assert_eq!(
        AnalysisContext::preparations(),
        prepared_before,
        "the restarted service's first request re-prepared nothing"
    );
    assert_eq!(
        first.json, cold.json,
        "stored bytes are served verbatim across the restart"
    );
    assert_eq!(
        first.label, cold.label,
        "the label round-trips through JSON"
    );

    let stats = service.stats();
    let disk = stats.disk.expect("disk tier attached");
    assert_eq!(disk.disk_hits, 1, "the first request hit the disk tier");
    assert_eq!(disk.promotions, 1, "…and was promoted into memory");
    assert_eq!(stats.cache.misses, 1, "the memory tier itself missed");
    assert_eq!(stats.cache.hits, 0);

    // The promotion warmed the memory tier: the second request is a memory
    // hit and the disk tier is not consulted again.
    let prepared_before = AnalysisContext::preparations();
    let second = service.label(&table, &config).unwrap();
    assert_eq!(AnalysisContext::preparations(), prepared_before);
    assert_eq!(second.json, cold.json);
    let stats = service.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.disk.unwrap().disk_hits, 1, "no second disk read");

    // Purging invalidates BOTH tiers: after `clear_cache` the same request
    // is a full cold miss again (counter-verified on both tiers).
    service.clear_cache();
    let stats = service.stats();
    assert_eq!(stats.cache.entries, 0);
    let disk = stats.disk.unwrap();
    assert_eq!(disk.entries, 0);
    assert_eq!(disk.bytes, 0);
    let prepared_before = AnalysisContext::preparations();
    let regenerated = service.label(&table, &config).unwrap();
    assert!(
        AnalysisContext::preparations() > prepared_before,
        "after a purge the label really is recomputed"
    );
    assert_eq!(regenerated.json, cold.json);
    assert_eq!(
        service.stats().disk.unwrap().disk_hits,
        1,
        "the purged disk tier could not serve the regeneration"
    );
}
