//! Cache parity: a warm `LabelCache` hit must be byte-identical to cold
//! generation, and must perform **zero** analysis work — no context
//! preparation at all.  Likewise, `generate_sweep` must prepare exactly once
//! for any number of `k` values while remaining byte-identical to independent
//! `generate` calls.
//!
//! Everything counter-sensitive lives in ONE test function: the preparation
//! counter is process-wide, so concurrently running sibling tests would
//! otherwise race it.  (Each integration-test binary is its own process, so
//! other test files cannot interfere.)

use rf_core::{AnalysisContext, AnalysisPipeline, LabelConfig, LabelService};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig};
use rf_ranking::ScoringFunction;
use rf_table::Table;
use std::sync::Arc;

fn cs_scenario() -> (Arc<Table>, Arc<LabelConfig>) {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_dataset_name("CS departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    (Arc::new(table), Arc::new(config))
}

fn compas_scenario() -> (Arc<Table>, Arc<LabelConfig>) {
    let table = CompasConfig::with_rows(1_500).generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_dataset_name("COMPAS recidivism (synthetic)")
        .with_sensitive_attribute("race", ["African-American"])
        .with_sensitive_attribute("sex", ["Female"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");
    (Arc::new(table), Arc::new(config))
}

fn german_credit_scenario() -> (Arc<Table>, Arc<LabelConfig>) {
    let table = GermanCreditConfig::default().generate().unwrap();
    let scoring = ScoringFunction::from_pairs([
        ("credit_score", 0.7),
        ("employment_years", 0.2),
        ("credit_amount", -0.1),
    ])
    .unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_sensitive_attribute("sex", ["female"])
        .with_sensitive_attribute("age_group", ["young"])
        .with_diversity_attribute("housing")
        .with_diversity_attribute("checking_status");
    (Arc::new(table), Arc::new(config))
}

fn scenarios() -> Vec<(&'static str, Arc<Table>, Arc<LabelConfig>)> {
    let (cs_table, cs_config) = cs_scenario();
    let (compas_table, compas_config) = compas_scenario();
    let (credit_table, credit_config) = german_credit_scenario();
    vec![
        ("cs-departments", cs_table, cs_config),
        ("compas", compas_table, compas_config),
        ("german-credit", credit_table, credit_config),
    ]
}

/// The tentpole contract, end to end, on all three paper scenarios:
///
/// 1. a warm cache hit is byte-identical to cold generation and performs no
///    `AnalysisContext` preparation (counter-verified);
/// 2. `generate_sweep` over three `k` values prepares (and therefore ranks)
///    exactly once, byte-identical to three independent `generate` calls.
#[test]
fn warm_hits_and_sweeps_reuse_one_preparation_on_all_scenarios() {
    for (name, table, config) in scenarios() {
        // --- Cache parity -------------------------------------------------
        let service = LabelService::new();
        let cold = service.label(&table, &config).unwrap();
        assert!(
            cold.json.contains("\"monte_carlo\""),
            "{name}: the Monte-Carlo stability detail is part of the served label"
        );
        assert!(
            cold.label.stability.monte_carlo.is_some(),
            "{name}: the detail view is populated on the hot path"
        );

        let before = AnalysisContext::preparations();
        let warm = service.label(&table, &config).unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            before,
            "{name}: a warm hit must perform no context preparation"
        );
        assert_eq!(
            cold.json, warm.json,
            "{name}: warm hit must be byte-identical to cold generation"
        );
        assert_eq!(cold.label, warm.label, "{name}: labels must match too");

        // Content addressing: a rebuilt (clone-equal) table and config still
        // hit, with zero preparations.
        let rebuilt_table = Arc::new(Table::clone(&table));
        let rebuilt_config = Arc::new(LabelConfig::clone(&config));
        let before = AnalysisContext::preparations();
        let rehit = service.label(&rebuilt_table, &rebuilt_config).unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            before,
            "{name}: a content-identical request must not prepare"
        );
        assert_eq!(cold.json, rehit.json);

        let stats = service.stats();
        assert_eq!(stats.cache.hits, 2, "{name}");
        assert_eq!(stats.cache.misses, 1, "{name}");

        // --- Sweep parity -------------------------------------------------
        let ks = [5usize, 10, 20];
        let pipeline = AnalysisPipeline::new();
        let independent: Vec<String> = ks
            .iter()
            .map(|&k| {
                pipeline
                    .generate(
                        Arc::clone(&table),
                        Arc::new(LabelConfig::clone(&config).with_top_k(k)),
                    )
                    .unwrap()
                    .to_json()
                    .unwrap()
            })
            .collect();

        let before = AnalysisContext::preparations();
        let sweep = pipeline
            .generate_sweep(Arc::clone(&table), Arc::clone(&config), &ks)
            .unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            before + 1,
            "{name}: a sweep must compute the ranking exactly once"
        );
        assert_eq!(sweep.len(), ks.len(), "{name}");
        for ((label, expected), &k) in sweep.iter().zip(&independent).zip(&ks) {
            assert_eq!(label.config.top_k, k, "{name}");
            assert_eq!(
                &label.to_json().unwrap(),
                expected,
                "{name}: sweep label for k={k} diverges from an independent generate"
            );
        }

        // A cached sweep performs no preparation either.
        let before = AnalysisContext::preparations();
        let cached_sweep = service.label_sweep(&table, &config, &ks).unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            before + 1,
            "{name}: the service sweep prepares once for its cold sizes"
        );
        let before = AnalysisContext::preparations();
        let warm_sweep = service.label_sweep(&table, &config, &ks).unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            before,
            "{name}: a fully warm sweep must not prepare"
        );
        for ((a, b), expected) in cached_sweep.iter().zip(&warm_sweep).zip(&independent) {
            assert_eq!(a.json, b.json, "{name}");
            assert_eq!(a.json.as_ref(), expected, "{name}");
        }
    }
}
