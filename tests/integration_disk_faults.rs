//! Fault-injection integration for the two-tier label cache: under every
//! deterministic schedule of disk faults — reported errors (EIO/ENOSPC),
//! torn writes, bit flips, truncations, at any write or read site — the
//! service must keep serving labels **byte-identical** to a no-disk
//! reference, across a simulated process restart, and must never panic or
//! serve a corrupt body.
//!
//! A separate hand-written test poisons a stored entry directly on disk and
//! checks the quarantine-and-regenerate path end to end.

use proptest::prelude::*;
use rf_core::{AnalysisPipeline, LabelConfig, LabelService};
use rf_ranking::ScoringFunction;
use rf_store::{DiskStore, Fault, FaultKind, FaultPlan, FaultSite};
use rf_table::{Column, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rf-disk-faults-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two distinct label requests over one small table (content addressing
/// keeps them as separate disk entries).
fn scenarios() -> (Arc<Table>, Vec<Arc<LabelConfig>>) {
    let n = 24usize;
    let table = Table::from_columns(vec![
        (
            "name",
            Column::from_strings((0..n).map(|i| format!("r{i}")).collect::<Vec<_>>()),
        ),
        (
            "score",
            Column::from_f64((0..n).map(|i| 50.0 - i as f64).collect()),
        ),
        (
            "other",
            Column::from_f64((0..n).map(|i| ((i * 7) % n) as f64).collect()),
        ),
        (
            "grp",
            Column::from_strings(
                (0..n)
                    .map(|i| if i % 3 == 0 { "x" } else { "y" })
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
    .unwrap();
    let base = |pairs: [(&str, f64); 2], k: usize| {
        Arc::new(
            LabelConfig::new(ScoringFunction::from_pairs(pairs).unwrap())
                .with_top_k(k)
                .with_sensitive_attribute("grp", ["x"])
                .with_diversity_attribute("grp")
                .with_monte_carlo_trials(16),
        )
    };
    (
        Arc::new(table),
        vec![
            base([("score", 1.0), ("other", 0.0)], 8),
            base([("score", 0.6), ("other", 0.4)], 12),
        ],
    )
}

fn disk_service(dir: &std::path::Path) -> LabelService {
    LabelService::with_cache_policy(AnalysisPipeline::sequential(), 8, 1 << 20, None)
        .with_disk_tier(Arc::new(DiskStore::open(dir, 1 << 20).unwrap()))
}

/// Decodes one generated `(site, op, kind, param)` quadruple into a
/// scheduled fault.  The narrow `u8`/`u16` range strategies exist in the
/// vendored proptest stub precisely for these enum-ish selectors.
fn decode(site: u8, op: u8, kind: u8, param: u16) -> Fault {
    let site = FaultSite::ALL[site as usize % FaultSite::ALL.len()];
    let param = param as usize;
    let kind = match kind % 5 {
        0 => FaultKind::Eio,
        1 => FaultKind::Enospc,
        2 => FaultKind::Torn { keep: param },
        3 => FaultKind::BitFlip { offset: param },
        _ => FaultKind::Truncate { keep: param },
    };
    Fault {
        site,
        op: u64::from(op),
        kind,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: for every generated fault schedule, labels
    /// served through the faulty two-tier service — before AND after a
    /// simulated restart over the damaged directory — are byte-identical to
    /// the no-disk reference.  The disk tier degrades (counters move, entries
    /// get quarantined) but it never lies and it never takes the service down.
    #[test]
    fn faulty_disks_never_change_served_labels(
        schedule in prop::collection::vec((0u8..4, 0u8..6, 0u8..5, 0u16..512), 1..6),
    ) {
        let (table, configs) = scenarios();
        let reference: Vec<String> = {
            let plain = LabelService::with_pipeline(AnalysisPipeline::sequential(), 8, 1 << 20);
            configs
                .iter()
                .map(|config| plain.label(&table, config).unwrap().json.as_ref().clone())
                .collect()
        };
        let faults: Vec<Fault> = schedule
            .iter()
            .map(|&(site, op, kind, param)| decode(site, op, kind, param))
            .collect();

        let scratch = Scratch::new("prop");
        let store = Arc::new(DiskStore::open(&scratch.0, 1 << 20).unwrap());
        store.set_fault_plan(FaultPlan::new(faults));

        // Round 1 — cold fills: write-site faults (temp write, fsync,
        // rename) fire in the write-behind thread.
        {
            let service =
                LabelService::with_pipeline(AnalysisPipeline::sequential(), 8, 1 << 20)
                    .with_disk_tier(Arc::clone(&store));
            for (config, expected) in configs.iter().zip(&reference) {
                let served = service.label(&table, config).unwrap();
                prop_assert_eq!(served.json.as_ref(), expected);
            }
            store.flush();
        }

        // Round 2 — a fresh memory tier over the SAME store: lookups now
        // read files back through the still-armed injector, so read-site
        // faults (EIO, bit flips, truncations in transit) fire here.
        {
            let service =
                LabelService::with_pipeline(AnalysisPipeline::sequential(), 8, 1 << 20)
                    .with_disk_tier(Arc::clone(&store));
            for (config, expected) in configs.iter().zip(&reference) {
                let served = service.label(&table, config).unwrap();
                prop_assert_eq!(served.json.as_ref(), expected);
            }
            store.flush();
            let stats = store.stats();
            prop_assert!(stats.bytes <= stats.max_bytes, "pruning keeps the budget");
        }
        drop(store); // joins the write-behind thread — a clean "crash point"

        // Round 3 — restart over the (possibly damaged) directory.  `open`
        // rescans and quarantines entries that fail validation; lookups
        // re-verify the survivors.  Unspent faults died with the old store,
        // like a reboot clearing a flaky controller.
        let service = disk_service(&scratch.0);
        for (config, expected) in configs.iter().zip(&reference) {
            let served = service.label(&table, config).unwrap();
            prop_assert_eq!(served.json.as_ref(), expected);
        }
        let stats = service.stats();
        let disk = stats.disk.unwrap();
        prop_assert_eq!(
            stats.cache.misses as usize, configs.len(),
            "each request missed the fresh memory tier exactly once"
        );
        prop_assert!(disk.bytes <= disk.max_bytes);
    }
}

/// Media rot after a clean shutdown: poison a stored entry's bytes directly,
/// reopen, and check it is quarantined — never served — and transparently
/// regenerated, after which a further restart serves the healthy replacement.
#[test]
fn poisoned_entries_are_quarantined_and_regenerated() {
    let (table, configs) = scenarios();
    let config = &configs[0];
    let scratch = Scratch::new("poison");

    let reference = {
        let service = disk_service(&scratch.0);
        let cold = service.label(&table, config).unwrap();
        service.disk_store().unwrap().flush();
        cold.json.as_ref().clone()
    };

    // Flip a byte in the middle of every stored entry (header checksums
    // cover the body, so any flip must be caught).
    let mut poisoned = 0usize;
    for entry in std::fs::read_dir(&scratch.0).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("label") {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        poisoned += 1;
    }
    assert_eq!(poisoned, 1, "exactly one entry was stored");

    // Reopen: the startup scan validates checksums and jails the bad entry.
    let service = disk_service(&scratch.0);
    let disk = service.stats().disk.unwrap();
    assert_eq!(
        disk.corrupt_dropped, 1,
        "the poisoned entry was quarantined"
    );
    assert_eq!(disk.entries, 0, "…and left out of the manifest");
    let jailed = std::fs::read_dir(scratch.0.join("quarantine"))
        .unwrap()
        .count();
    assert_eq!(jailed, 1, "the bad bytes are kept for forensics");

    // The request regenerates (a disk miss, not corrupt data served)…
    let regenerated = service.label(&table, config).unwrap();
    assert_eq!(regenerated.json.as_ref(), &reference);
    let disk = service.stats().disk.unwrap();
    assert_eq!(disk.disk_hits, 0);
    assert!(disk.disk_misses >= 1);
    service.disk_store().unwrap().flush();
    drop(service);

    // …and the healthy replacement survives another restart as a disk hit.
    let service = disk_service(&scratch.0);
    let warm = service.label(&table, config).unwrap();
    assert_eq!(warm.json.as_ref(), &reference);
    let disk = service.stats().disk.unwrap();
    assert_eq!(disk.disk_hits, 1);
    assert_eq!(disk.corrupt_dropped, 0, "a fresh store, a clean bill");
}
