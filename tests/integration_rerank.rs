//! Integration: diagnosing and repairing unfair rankings end-to-end.
//!
//! Pipeline under test: synthetic dataset → scoring function → ranking →
//! FA*IR diagnosis (`rf-fairness`) → constructive FA*IR re-ranking →
//! re-diagnosis, plus the interaction between re-ranking and the other
//! fairness measures that the nutritional label reports side by side.

use rf_datasets::{CsDepartmentsConfig, GermanCreditConfig};
use rf_fairness::{
    DiscountedMeasures, FairRerank, FairStarTest, PairwiseTest, ProportionTest, ProtectedGroup,
};
use rf_ranking::{kendall_tau_rankings, ScoringFunction};

#[test]
fn cs_departments_small_group_is_repaired() {
    // The paper's Figure 1 dataset: only large departments reach the top-10,
    // so the small-department group fails FA*IR under a parity target.
    let table = CsDepartmentsConfig::default().generate().expect("dataset");
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let group = ProtectedGroup::from_table(&table, "DeptSizeBin", "small").expect("group");

    let k = 10;
    let p = group.protected_proportion();
    let test = FairStarTest::new(k, p).expect("test");
    let before = test.evaluate(&group, &ranking).expect("before");
    assert!(
        !before.satisfied,
        "the synthetic CS data must reproduce the paper's finding that small departments \
         are shut out of the top-10"
    );

    let outcome = FairRerank::new(k, p)
        .expect("re-ranker")
        .rerank(&group, &ranking)
        .expect("feasible re-rank");
    assert!(outcome.changed);
    assert!(outcome.satisfied_after);
    let after = test.evaluate(&group, &outcome.reranked).expect("after");
    assert!(after.satisfied);
    assert!(after.p_value >= before.p_value);

    // The repair is minimal in the sense that the overall order stays close
    // to the original: Kendall tau remains high.
    assert!(outcome.kendall_tau_to_original > 0.9);
    let tau = kendall_tau_rankings(&ranking, &outcome.reranked).expect("tau");
    assert!((tau - outcome.kendall_tau_to_original).abs() < 1e-12);

    // The discounted measures also improve (smaller divergence from parity).
    let before_measures = DiscountedMeasures::evaluate(&group, &ranking).expect("measures");
    let after_measures = DiscountedMeasures::evaluate(&group, &outcome.reranked).expect("measures");
    assert!(after_measures.rnd <= before_measures.rnd + 1e-9);
    assert!(after_measures.rkl <= before_measures.rkl + 1e-9);
}

#[test]
fn german_credit_young_applicants_are_repaired() {
    let table = GermanCreditConfig::default().generate().expect("dataset");
    let scoring = ScoringFunction::from_pairs([("credit_score", 1.0)]).expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let group = ProtectedGroup::from_table(&table, "age_group", "young").expect("group");

    let k = 50;
    let p = group.protected_proportion();
    let test = FairStarTest::new(k, p).expect("test");
    let before = test.evaluate(&group, &ranking).expect("before");
    let outcome = FairRerank::new(k, p)
        .expect("re-ranker")
        .rerank(&group, &ranking)
        .expect("feasible re-rank");
    let after = test.evaluate(&group, &outcome.reranked).expect("after");

    assert!(after.satisfied, "the re-ranked output must pass FA*IR");
    // Re-ranking never pushes the protected group below its original share of
    // the audited prefix.
    assert!(
        after.observed_counts.last().copied().unwrap_or(0)
            >= before.observed_counts.last().copied().unwrap_or(0)
    );
    // The output remains a permutation of the applicants.
    let mut order = outcome.reranked.order();
    order.sort_unstable();
    assert_eq!(order, (0..table.num_rows()).collect::<Vec<_>>());
}

#[test]
fn rerank_interacts_consistently_with_the_other_measures() {
    // Re-ranking targets ranked group fairness (FA*IR), but the label also
    // shows Proportion and Pairwise.  After the repair the protected share of
    // the top-k cannot be smaller than before, so the proportion statistic
    // moves toward (or past) parity as well.
    let table = CsDepartmentsConfig::default().generate().expect("dataset");
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.5), ("Faculty", 0.5)]).expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let group = ProtectedGroup::from_table(&table, "DeptSizeBin", "small").expect("group");

    let k = 10;
    let p = group.protected_proportion();
    let proportion = ProportionTest::new(k).expect("proportion test");
    let pairwise = PairwiseTest::new();

    let before_share = group.protected_in_top_k(&ranking, k).expect("count");
    let outcome = FairRerank::new(k, p)
        .expect("re-ranker")
        .rerank(&group, &ranking)
        .expect("re-rank");
    let after_share = group
        .protected_in_top_k(&outcome.reranked, k)
        .expect("count");
    assert!(after_share >= before_share);

    // Both measures still evaluate cleanly on the repaired ranking.
    let prop_after = proportion
        .evaluate(&group, &outcome.reranked)
        .expect("proportion");
    let pair_after = pairwise
        .evaluate(&group, &outcome.reranked)
        .expect("pairwise");
    assert!((0.0..=1.0).contains(&prop_after.p_value));
    assert!((0.0..=1.0).contains(&pair_after.p_value));
}

#[test]
fn rerank_is_idempotent_on_already_fair_rankings() {
    let table = CsDepartmentsConfig::default().generate().expect("dataset");
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let group = ProtectedGroup::from_table(&table, "DeptSizeBin", "small").expect("group");

    let k = 10;
    let p = group.protected_proportion();
    let reranker = FairRerank::new(k, p).expect("re-ranker");
    let first = reranker.rerank(&group, &ranking).expect("first pass");
    let second = reranker
        .rerank(&group, &first.reranked)
        .expect("second pass");
    assert!(
        !second.changed,
        "a repaired ranking needs no further repair"
    );
    assert_eq!(second.reranked.order(), first.reranked.order());
    assert_eq!(second.total_score_loss, 0.0);
}
