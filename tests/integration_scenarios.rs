//! The three demonstration scenarios of the paper's §3, end to end.
//!
//! These tests assert the *qualitative findings* the paper's walk-through
//! relies on (who is flagged unfair, which attribute is immaterial, which
//! categories vanish from the top-k) rather than absolute numbers —
//! the substitution DESIGN.md documents.

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig};
use rf_ranking::ScoringFunction;

/// Scenario 1 — CS departments (Figure 1).
#[test]
fn cs_departments_scenario_reproduces_figure1_findings() {
    let table = CsDepartmentsConfig::default().generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        // List the two most material attributes, as the compact widget does.
        .with_ingredient_count(2)
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
    let label = NutritionalLabel::generate(&table, &config).unwrap();

    // Finding 1: GRE is in the Recipe but not among the Ingredients.
    assert!(
        label
            .ingredients
            .recipe_attributes_not_material
            .contains(&"GRE".to_string()),
        "GRE should not be material to the ranked outcome"
    );
    let gre = label
        .ingredients
        .all_attributes
        .iter()
        .find(|i| i.attribute == "GRE")
        .unwrap();
    assert!(gre.rank_association < 0.5);

    // Finding 2: the detailed Recipe shows GRE's range/median are similar in
    // the top-10 and over-all.
    let gre_detail = label
        .recipe
        .details
        .iter()
        .find(|d| d.attribute == "GRE")
        .unwrap();
    let median_gap = (gre_detail.top_k.median - gre_detail.overall.median).abs();
    assert!(
        median_gap < 0.25 * gre_detail.overall.range(),
        "GRE median should be similar in the top-10 and over-all (gap {median_gap})"
    );

    // Finding 3: only large departments are present in the top-10.
    let size_report = label
        .diversity
        .reports
        .iter()
        .find(|r| r.attribute == "DeptSizeBin")
        .unwrap();
    assert!(size_report.top_k.proportion_of("large") >= 0.8);
    // ... and consequently the ranking is unfair towards small departments by
    // at least one of the three measures.
    let small_report = label
        .fairness
        .reports
        .iter()
        .find(|r| r.protected_value == "small")
        .unwrap();
    assert!(
        small_report.any_unfair(),
        "the small-department group should be flagged by at least one measure"
    );

    // Finding 4: PubCount and Faculty are the material ingredients.
    let names = label.ingredients.ingredient_names();
    assert!(names.contains(&"PubCount"));
    assert!(names.contains(&"Faculty"));
}

/// Scenario 2 — COMPAS criminal risk assessment.
#[test]
fn compas_scenario_flags_the_protected_racial_group() {
    let table = CompasConfig::with_rows(3_000).generate().unwrap();
    let scoring =
        ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_sensitive_attribute("race", ["African-American"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");
    let label = NutritionalLabel::generate(&table, &config).unwrap();

    let race_report = label
        .fairness
        .reports
        .iter()
        .find(|r| r.attribute == "race")
        .unwrap();
    // The biased score shifts the protected group towards the top of the
    // "high risk" ranking: over-representation must be detectable.
    assert!(
        race_report.proportion.top_k_proportion > race_report.proportion.overall_proportion,
        "protected group should be over-represented among the highest risk scores"
    );
    assert!(
        race_report.any_unfair(),
        "the disparity should be flagged by at least one measure"
    );
    // The pairwise measure should show protected items preferred (ranked
    // higher-risk) more often than parity.
    assert!(race_report.pairwise.preference_probability > 0.5);
}

/// Scenario 2b — counterfactual: an unbiased COMPAS-like dataset passes.
#[test]
fn unbiased_compas_counterfactual_is_not_flagged() {
    let table = CompasConfig::with_rows(3_000)
        .unbiased()
        .generate()
        .unwrap();
    let scoring =
        ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)]).unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_sensitive_attribute("race", ["African-American"]);
    let label = NutritionalLabel::generate(&table, &config).unwrap();
    let race_report = &label.fairness.reports[0];
    // Without the score shift the pairwise preference sits near parity.
    assert!((race_report.pairwise.preference_probability - 0.5).abs() < 0.08);
}

/// Scenario 3 — German credit.
#[test]
fn german_credit_scenario_flags_young_applicants() {
    let table = GermanCreditConfig::default().generate().unwrap();
    let scoring = ScoringFunction::from_pairs([
        ("credit_score", 0.7),
        ("employment_years", 0.2),
        ("credit_amount", -0.1),
    ])
    .unwrap();
    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_sensitive_attribute("age_group", ["young"])
        .with_sensitive_attribute("sex", ["female"])
        .with_diversity_attribute("housing");
    let label = NutritionalLabel::generate(&table, &config).unwrap();

    let age_report = label
        .fairness
        .reports
        .iter()
        .find(|r| r.attribute == "age_group")
        .unwrap();
    // Young applicants are penalized in the synthetic score, so they are
    // under-represented among the top creditworthy applicants.
    assert!(
        age_report.proportion.top_k_proportion < age_report.proportion.overall_proportion,
        "young applicants should be under-represented at the top"
    );
    assert!(age_report.pairwise.preference_probability < 0.5);

    // Sex is not used by the synthetic score, so it should generally pass the
    // pairwise parity check (the most sensitive of the three measures here).
    let sex_report = label
        .fairness
        .reports
        .iter()
        .find(|r| r.attribute == "sex")
        .unwrap();
    assert!((sex_report.pairwise.preference_probability - 0.5).abs() < 0.1);
}

/// All three scenarios generate complete, renderable labels.
#[test]
fn all_scenarios_render_in_all_formats() {
    let scenarios: Vec<(rf_table::Table, LabelConfig)> = vec![
        (
            CsDepartmentsConfig::default().generate().unwrap(),
            LabelConfig::new(
                ScoringFunction::from_pairs([("PubCount", 0.5), ("Faculty", 0.5)]).unwrap(),
            )
            .with_top_k(10)
            .with_sensitive_attribute("DeptSizeBin", ["small"])
            .with_diversity_attribute("Region"),
        ),
        (
            CompasConfig::with_rows(800).generate().unwrap(),
            LabelConfig::new(ScoringFunction::from_pairs([("decile_score", 1.0)]).unwrap())
                .with_top_k(50)
                .with_sensitive_attribute("race", ["African-American"])
                .with_diversity_attribute("age_cat"),
        ),
        (
            GermanCreditConfig::with_rows(500).generate().unwrap(),
            LabelConfig::new(ScoringFunction::from_pairs([("credit_score", 1.0)]).unwrap())
                .with_top_k(50)
                .with_sensitive_attribute("age_group", ["young"])
                .with_diversity_attribute("housing"),
        ),
    ];
    for (table, config) in scenarios {
        let label = NutritionalLabel::generate(&table, &config).unwrap();
        let text = label.to_text();
        let html = label.to_html();
        let json = label.to_json().unwrap();
        assert!(text.contains("Ranking Facts"));
        assert!(html.contains("<html>") || html.contains("<html"));
        assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
    }
}
