//! Mitigation: suggesting modified scoring functions.
//!
//! The paper's closing section lists this as planned functionality: "we plan
//! to include methods that help the user mitigate lack of fairness and
//! diversity by suggesting modified scoring functions" (§4).  This module
//! implements that extension.
//!
//! [`MitigationSearch`] explores weight vectors in the neighbourhood of the
//! user's Recipe (a deterministic grid of per-attribute rescalings), generates
//! the ranking each candidate induces, and evaluates:
//!
//! * **fairness** — how many of the configured protected features still fail
//!   the (fast) pairwise and proportion tests;
//! * **diversity** — how many configured diversity attributes lose categories
//!   in the top-k;
//! * **faithfulness** — Kendall tau between the candidate ranking and the
//!   original one (a suggestion that reshuffles everything is not useful).
//!
//! Candidates are ranked lexicographically: fewest unfair verdicts first, then
//! fewest lost-category attributes, then highest faithfulness.  The search is
//! exhaustive over the grid and fully deterministic.

use crate::config::LabelConfig;
use crate::error::{LabelError, LabelResult};
use rf_diversity::DiversityReport;
use rf_fairness::{PairwiseTest, ProportionTest, ProtectedGroup};
use rf_ranking::{kendall_tau_rankings, AttributeWeight, Ranking, ScoringFunction};
use rf_table::Table;

/// One suggested scoring function and how it scores on the mitigation goals.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationSuggestion {
    /// The suggested weights (same attributes as the original Recipe).
    pub weights: Vec<AttributeWeight>,
    /// Number of `(attribute, protected value)` pairs still flagged unfair by
    /// the pairwise or proportion test.
    pub unfair_features: usize,
    /// Number of diversity attributes that still lose at least one category
    /// in the top-k.
    pub attributes_losing_categories: usize,
    /// Kendall tau between the suggested ranking and the original ranking.
    pub similarity_to_original: f64,
    /// `true` when this suggestion is exactly the original Recipe.
    pub is_original: bool,
}

impl MitigationSuggestion {
    /// `true` when no audited feature is flagged and no category is lost.
    #[must_use]
    pub fn resolves_all_issues(&self) -> bool {
        self.unfair_features == 0 && self.attributes_losing_categories == 0
    }
}

/// Configuration of the mitigation search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationSearch {
    /// Multiplicative factors applied to each attribute's weight, one axis at
    /// a time and in combination (the grid).  The default explores halving,
    /// dampening, keeping, boosting and doubling each weight.
    pub factors: Vec<f64>,
    /// Maximum number of suggestions returned (best first).
    pub max_suggestions: usize,
    /// Minimum acceptable similarity to the original ranking; candidates
    /// below it are discarded as too disruptive.
    pub min_similarity: f64,
}

impl Default for MitigationSearch {
    fn default() -> Self {
        MitigationSearch {
            factors: vec![0.5, 0.75, 1.0, 1.5, 2.0],
            max_suggestions: 5,
            min_similarity: 0.2,
        }
    }
}

impl MitigationSearch {
    /// Creates a search with the default grid.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the grid of per-attribute factors.
    ///
    /// # Errors
    /// The grid must be non-empty and contain only positive finite factors.
    pub fn with_factors(mut self, factors: Vec<f64>) -> LabelResult<Self> {
        if factors.is_empty() || factors.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return Err(LabelError::InvalidConfig {
                message: "mitigation factors must be positive and finite".to_string(),
            });
        }
        self.factors = factors;
        Ok(self)
    }

    /// Sets how many suggestions are returned.
    #[must_use]
    pub fn with_max_suggestions(mut self, max: usize) -> Self {
        self.max_suggestions = max.max(1);
        self
    }

    /// Sets the minimum acceptable similarity to the original ranking.
    #[must_use]
    pub fn with_min_similarity(mut self, min_similarity: f64) -> Self {
        self.min_similarity = min_similarity;
        self
    }

    /// Runs the search: evaluates every candidate weight vector on `table`
    /// under `config` and returns the best suggestions, best first.  The
    /// original Recipe is always evaluated and included in the candidate pool
    /// so the caller can see whether any change actually helps.
    ///
    /// # Errors
    /// Configuration validation errors, or measure errors on the original
    /// recipe (candidate-specific failures are skipped).
    pub fn suggest(
        &self,
        table: &Table,
        config: &LabelConfig,
    ) -> LabelResult<Vec<MitigationSuggestion>> {
        config.validate(table)?;
        let original_scoring = &config.scoring;
        let original_ranking = original_scoring.rank_table(table)?;

        // Pre-build the protected groups once; they do not depend on weights.
        let mut groups = Vec::new();
        for (attribute, value) in config.protected_features() {
            groups.push(ProtectedGroup::from_table(table, attribute, value)?);
        }

        let candidates = self.candidate_weight_vectors(original_scoring);
        let mut suggestions = Vec::with_capacity(candidates.len());
        // Two weight vectors that are positive multiples of each other induce
        // the same ranking; keep only one representative of each direction.
        let mut seen_directions: std::collections::HashSet<Vec<i64>> =
            std::collections::HashSet::new();
        for weights in candidates {
            let norm: f64 = weights.iter().map(|w| w.weight.abs()).sum();
            if norm <= 0.0 {
                continue;
            }
            let key: Vec<i64> = weights
                .iter()
                .map(|w| (w.weight / norm * 1e6).round() as i64)
                .collect();
            if !seen_directions.insert(key) {
                continue;
            }
            let Ok(scoring) = ScoringFunction::with_normalization(
                weights.clone(),
                original_scoring.normalization(),
            ) else {
                continue;
            };
            let Ok(ranking) = scoring.rank_table(table) else {
                continue;
            };
            let similarity = kendall_tau_rankings(&original_ranking, &ranking).unwrap_or(0.0);
            let is_original = weights
                .iter()
                .zip(original_scoring.weights())
                .all(|(a, b)| (a.weight - b.weight).abs() < 1e-12);
            if !is_original && similarity < self.min_similarity {
                continue;
            }
            let unfair = match self.count_unfair(&groups, &ranking, config) {
                Ok(count) => count,
                Err(_) => continue,
            };
            let losing = match self.count_losing_categories(table, &ranking, config) {
                Ok(count) => count,
                Err(_) => continue,
            };
            suggestions.push(MitigationSuggestion {
                weights,
                unfair_features: unfair,
                attributes_losing_categories: losing,
                similarity_to_original: similarity,
                is_original,
            });
        }

        suggestions.sort_by(|a, b| {
            a.unfair_features
                .cmp(&b.unfair_features)
                .then(
                    a.attributes_losing_categories
                        .cmp(&b.attributes_losing_categories),
                )
                .then(
                    b.similarity_to_original
                        .partial_cmp(&a.similarity_to_original)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        suggestions.truncate(self.max_suggestions);
        Ok(suggestions)
    }

    /// Builds the candidate weight vectors: the original Recipe plus every
    /// combination of per-attribute factors (capped to keep the grid tractable
    /// for recipes with many attributes).
    fn candidate_weight_vectors(&self, scoring: &ScoringFunction) -> Vec<Vec<AttributeWeight>> {
        let original: Vec<AttributeWeight> = scoring.weights().to_vec();
        let attrs = original.len();
        let mut candidates = vec![original.clone()];

        // Full cartesian grid for small recipes; per-axis sweeps otherwise.
        let full_grid_size = self.factors.len().pow(attrs as u32);
        if full_grid_size <= 1024 {
            let mut indices = vec![0usize; attrs];
            loop {
                let weights: Vec<AttributeWeight> = original
                    .iter()
                    .zip(indices.iter())
                    .map(|(w, &fi)| {
                        AttributeWeight::new(w.attribute.clone(), w.weight * self.factors[fi])
                    })
                    .collect();
                candidates.push(weights);
                // Advance the mixed-radix counter.
                let mut pos = 0;
                loop {
                    if pos == attrs {
                        return candidates;
                    }
                    indices[pos] += 1;
                    if indices[pos] < self.factors.len() {
                        break;
                    }
                    indices[pos] = 0;
                    pos += 1;
                }
            }
        } else {
            for (axis, w) in original.iter().enumerate() {
                for &factor in &self.factors {
                    let mut weights = original.clone();
                    weights[axis] = AttributeWeight::new(w.attribute.clone(), w.weight * factor);
                    candidates.push(weights);
                }
            }
            candidates
        }
    }

    /// Counts the protected features flagged unfair under the fast tests.
    fn count_unfair(
        &self,
        groups: &[ProtectedGroup],
        ranking: &Ranking,
        config: &LabelConfig,
    ) -> LabelResult<usize> {
        let mut unfair = 0usize;
        for group in groups {
            let pairwise = PairwiseTest::new()
                .with_alpha(config.alpha)?
                .evaluate(group, ranking)?;
            let proportion = ProportionTest::new(config.top_k)?
                .with_alpha(config.alpha)?
                .evaluate(group, ranking);
            let proportion_fair = proportion.map(|p| p.fair).unwrap_or(true);
            if !pairwise.fair || !proportion_fair {
                unfair += 1;
            }
        }
        Ok(unfair)
    }

    /// Counts diversity attributes whose top-k loses at least one category.
    fn count_losing_categories(
        &self,
        table: &Table,
        ranking: &Ranking,
        config: &LabelConfig,
    ) -> LabelResult<usize> {
        let mut losing = 0usize;
        for attribute in &config.diversity_attributes {
            let report = DiversityReport::evaluate(table, ranking, attribute, config.top_k)?;
            if !report.covers_all_categories() {
                losing += 1;
            }
        }
        Ok(losing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    /// Items where "quality" strongly favours group A but "merit" is
    /// group-neutral: down-weighting quality can restore fairness.
    fn biased_table() -> Table {
        let n = 40usize;
        let group: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "A" } else { "B" }).collect();
        // quality: group A items get a large bonus.
        let quality: Vec<f64> = (0..n)
            .map(|i| 50.0 + (n - i) as f64 + if i % 2 == 0 { 100.0 } else { 0.0 })
            .collect();
        // merit: independent of group, spread evenly.
        let merit: Vec<f64> = (0..n).map(|i| ((i * 17) % n) as f64).collect();
        Table::from_columns(vec![
            ("group", Column::from_strings(group)),
            ("quality", Column::from_f64(quality)),
            ("merit", Column::from_f64(merit)),
        ])
        .unwrap()
    }

    fn biased_config() -> LabelConfig {
        let scoring = ScoringFunction::from_pairs([("quality", 0.9), ("merit", 0.1)]).unwrap();
        LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("group", ["B"])
            .with_diversity_attribute("group")
    }

    #[test]
    fn search_returns_ranked_suggestions() {
        let table = biased_table();
        let config = biased_config();
        let suggestions = MitigationSearch::new()
            .with_min_similarity(-1.0)
            .suggest(&table, &config)
            .unwrap();
        assert!(!suggestions.is_empty());
        assert!(suggestions.len() <= 5);
        // Suggestions are sorted: no later suggestion is strictly better.
        for pair in suggestions.windows(2) {
            assert!(
                pair[0].unfair_features <= pair[1].unfair_features,
                "suggestions must be sorted by unfairness"
            );
        }
        // Every suggestion keeps the original attribute set.
        for s in &suggestions {
            let names: Vec<&str> = s.weights.iter().map(|w| w.attribute.as_str()).collect();
            assert_eq!(names, vec!["quality", "merit"]);
        }
    }

    #[test]
    fn search_finds_a_fairer_recipe_for_biased_data() {
        let table = biased_table();
        let config = biased_config();

        // The original recipe is unfair to group B (quality dominates).
        let original_ranking = config.scoring.rank_table(&table).unwrap();
        let group = ProtectedGroup::from_table(&table, "group", "B").unwrap();
        let original_pairwise = PairwiseTest::new()
            .evaluate(&group, &original_ranking)
            .unwrap();
        assert!(
            !original_pairwise.fair,
            "test premise: original recipe is unfair"
        );

        // The default grid keeps quality dominant; widen it so the search can
        // also propose recipes where the group-neutral attribute leads.
        let suggestions = MitigationSearch::new()
            .with_factors(vec![0.1, 0.5, 1.0, 2.0, 4.0])
            .unwrap()
            .with_min_similarity(-1.0)
            .suggest(&table, &config)
            .unwrap();
        let best = &suggestions[0];
        assert!(
            best.unfair_features == 0,
            "the search should find a weight vector that passes the fast fairness tests; best = {best:?}"
        );
        assert!(!best.is_original);
    }

    #[test]
    fn original_recipe_is_always_evaluated() {
        let table = biased_table();
        let config = biased_config();
        let suggestions = MitigationSearch::new()
            .with_max_suggestions(1000)
            .with_min_similarity(-1.0)
            .suggest(&table, &config)
            .unwrap();
        assert!(suggestions.iter().any(|s| s.is_original));
    }

    #[test]
    fn min_similarity_filters_disruptive_candidates() {
        let table = biased_table();
        let config = biased_config();
        let strict = MitigationSearch::new()
            .with_min_similarity(0.95)
            .suggest(&table, &config)
            .unwrap();
        for s in &strict {
            assert!(s.is_original || s.similarity_to_original >= 0.95);
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(MitigationSearch::new().with_factors(vec![]).is_err());
        assert!(MitigationSearch::new().with_factors(vec![0.0]).is_err());
        assert!(MitigationSearch::new()
            .with_factors(vec![f64::NAN])
            .is_err());
        assert!(MitigationSearch::new().with_factors(vec![0.5, 2.0]).is_ok());
        assert_eq!(
            MitigationSearch::new()
                .with_max_suggestions(0)
                .max_suggestions,
            1
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let table = biased_table();
        let config = biased_config().with_top_k(1000);
        assert!(MitigationSearch::new().suggest(&table, &config).is_err());
    }

    #[test]
    fn resolves_all_issues_flag() {
        let good = MitigationSuggestion {
            weights: vec![],
            unfair_features: 0,
            attributes_losing_categories: 0,
            similarity_to_original: 0.9,
            is_original: false,
        };
        assert!(good.resolves_all_issues());
        let bad = MitigationSuggestion {
            unfair_features: 1,
            ..good.clone()
        };
        assert!(!bad.resolves_all_issues());
    }

    #[test]
    fn per_axis_sweep_used_for_large_recipes() {
        // A recipe with many attributes would explode the full grid; the
        // search falls back to per-axis sweeps and still returns suggestions.
        let n = 30usize;
        let mut columns: Vec<(String, Column)> = (0..6)
            .map(|a| {
                (
                    format!("attr{a}"),
                    Column::from_f64((0..n).map(|i| ((i * (a + 3)) % n) as f64).collect()),
                )
            })
            .collect();
        columns.push((
            "group".to_string(),
            Column::from_strings((0..n).map(|i| if i % 2 == 0 { "A" } else { "B" })),
        ));
        let table = Table::from_columns(columns).unwrap();
        let scoring =
            ScoringFunction::from_pairs((0..6).map(|a| (format!("attr{a}"), 1.0 / 6.0))).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(8)
            .with_sensitive_attribute("group", ["B"]);
        let suggestions = MitigationSearch::new()
            .with_min_similarity(-1.0)
            .suggest(&table, &config)
            .unwrap();
        assert!(!suggestions.is_empty());
    }
}
