//! The Ingredients widget.
//!
//! "The Ingredients widget lists attributes most material to the ranked
//! outcome, in order of importance.  For example, for a linear model, this
//! list could present the attributes with the highest learned weights.  Put
//! another way, the explicit intentions of the designer of the scoring
//! function [...] are stated in the Recipe, while Ingredients may show
//! additional attributes associated with high rank." (paper §2.1)
//!
//! Importance is estimated in two complementary ways, both reported:
//!
//! * **rank association** — the absolute Spearman correlation between the
//!   attribute's values and the item scores (rank-aware, robust to monotone
//!   transformations), which is what the overview sorts by;
//! * **learned weight** — the coefficient of the attribute in a multiple
//!   linear regression of the score on all standardized numeric attributes
//!   (the "highest learned weights" formulation), shown in the detailed view.

use crate::error::LabelResult;
use crate::widgets::recipe::AttributeDetail;
use rf_ranking::{rank_aware_association, Ranking};
use rf_stats::{spearman, MultipleRegression};
use rf_table::{NormalizationMethod, Normalizer, Table};

/// How the Ingredients widget estimates which attributes are "most material
/// to the ranked outcome".
///
/// The paper offers both options: "such associations can be derived with
/// linear models or with other methods, such as rank-aware similarity in our
/// prior work" (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum IngredientsMethod {
    /// Sort by the absolute Spearman correlation between the attribute and
    /// the score (the linear-model flavour; the default).
    #[default]
    LinearAssociation,
    /// Sort by the rank-aware (top-weighted) agreement between the ranking
    /// the attribute alone would induce and the observed ranking.
    RankAwareSimilarity,
}

impl IngredientsMethod {
    /// Human-readable name used by the renderers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            IngredientsMethod::LinearAssociation => "linear association",
            IngredientsMethod::RankAwareSimilarity => "rank-aware similarity",
        }
    }
}

/// One attribute of the Ingredients widget, with its importance estimates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ingredient {
    /// Attribute name.
    pub attribute: String,
    /// Absolute Spearman correlation between the attribute and the score.
    pub rank_association: f64,
    /// Signed Spearman correlation (direction of the association).
    pub signed_association: f64,
    /// Rank-aware (top-weighted) agreement between the attribute-induced
    /// ranking and the observed ranking, in `[0, 1]`.
    pub top_weighted_association: f64,
    /// Standardized learned weight from the linear model (None when the
    /// regression is degenerate, e.g. collinear attributes).
    pub learned_weight: Option<f64>,
    /// Whether the attribute is part of the declared Recipe.
    pub in_recipe: bool,
}

/// The Ingredients widget: attributes most associated with the ranked outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IngredientsWidget {
    /// The top ingredients, ordered by decreasing rank association.
    pub ingredients: Vec<Ingredient>,
    /// All candidate attributes with their associations (detailed view).
    pub all_attributes: Vec<Ingredient>,
    /// Detailed per-attribute statistics for the listed ingredients.
    pub details: Vec<AttributeDetail>,
    /// R² of the linear model used for the learned weights (None when the
    /// regression could not be fitted).
    pub model_r_squared: Option<f64>,
    /// Recipe attributes that do **not** appear among the top ingredients —
    /// the mismatch the demo walk-through highlights (GRE in Figure 1).
    pub recipe_attributes_not_material: Vec<String>,
    /// The association method that ordered the list.
    #[serde(default)]
    pub method: IngredientsMethod,
}

impl IngredientsWidget {
    /// Builds the Ingredients widget with the default
    /// [`IngredientsMethod::LinearAssociation`] ordering.
    ///
    /// `recipe_attributes` are the attributes of the scoring function (used to
    /// flag recipe/ingredient mismatches); `count` is how many ingredients the
    /// overview lists.
    ///
    /// # Errors
    /// Propagates table/statistics errors for candidate numeric attributes.
    pub fn build(
        table: &Table,
        ranking: &Ranking,
        recipe_attributes: &[&str],
        k: usize,
        count: usize,
    ) -> LabelResult<Self> {
        Self::build_with_method(
            table,
            ranking,
            recipe_attributes,
            k,
            count,
            IngredientsMethod::LinearAssociation,
        )
    }

    /// Builds the Ingredients widget, ordering attributes by `method`.
    ///
    /// # Errors
    /// Propagates table/statistics errors for candidate numeric attributes.
    pub fn build_with_method(
        table: &Table,
        ranking: &Ranking,
        recipe_attributes: &[&str],
        k: usize,
        count: usize,
        method: IngredientsMethod,
    ) -> LabelResult<Self> {
        let scores = ranking.score_vector();
        let numeric_names: Vec<String> = table
            .schema()
            .numeric_names()
            .iter()
            .map(|s| (*s).to_string())
            .collect();

        // Rank association per attribute (skip attributes that are constant or
        // all-missing: they cannot explain the outcome).
        let mut all_attributes = Vec::with_capacity(numeric_names.len());
        let mut usable: Vec<(String, Vec<f64>)> = Vec::new();
        for name in &numeric_names {
            let options = table.numeric_column_options(name)?;
            // Mean-impute missing values for the association estimate.
            let non_null: Vec<f64> = options.iter().filter_map(|v| *v).collect();
            if non_null.is_empty() {
                continue;
            }
            let mean = non_null.iter().sum::<f64>() / non_null.len() as f64;
            let filled: Vec<f64> = options.iter().map(|v| v.unwrap_or(mean)).collect();
            let signed = match spearman(&filled, &scores) {
                Ok(rho) => rho,
                Err(rf_stats::StatsError::ZeroVariance { .. }) => 0.0,
                Err(err) => return Err(err.into()),
            };
            // Rank-aware (top-weighted) agreement between the ranking this
            // attribute alone would produce and the observed ranking.
            let depth = k.clamp(1, ranking.len());
            let top_weighted = rank_aware_association(ranking, &filled, depth)?;
            all_attributes.push(Ingredient {
                attribute: name.clone(),
                rank_association: signed.abs(),
                signed_association: signed,
                top_weighted_association: top_weighted,
                learned_weight: None,
                in_recipe: recipe_attributes.contains(&name.as_str()),
            });
            usable.push((name.clone(), filled));
        }

        // Learned weights: regress the score on all standardized usable attributes.
        let mut model_r_squared = None;
        if !usable.is_empty() {
            let names: Vec<&str> = usable.iter().map(|(n, _)| n.as_str()).collect();
            if let Ok(normalizer) = Normalizer::fit(table, &names, NormalizationMethod::ZScore) {
                let design: Vec<Vec<f64>> = usable
                    .iter()
                    .map(|(name, filled)| {
                        filled
                            .iter()
                            .map(|&v| normalizer.transform_value(name, v).unwrap_or(0.0))
                            .collect()
                    })
                    .collect();
                if let Ok(fit) = MultipleRegression::fit(&design, &scores) {
                    model_r_squared = Some(fit.r_squared);
                    for (ing, coeff) in all_attributes
                        .iter_mut()
                        .filter(|i| usable.iter().any(|(n, _)| n == &i.attribute))
                        .zip(fit.coefficients.iter())
                    {
                        ing.learned_weight = Some(*coeff);
                    }
                }
            }
        }

        // Sort by the selected association measure, strongest first.
        let sort_key = |ing: &Ingredient| match method {
            IngredientsMethod::LinearAssociation => ing.rank_association,
            IngredientsMethod::RankAwareSimilarity => ing.top_weighted_association,
        };
        all_attributes.sort_by(|a, b| {
            sort_key(b)
                .partial_cmp(&sort_key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.attribute.cmp(&b.attribute))
        });
        let ingredients: Vec<Ingredient> = all_attributes.iter().take(count).cloned().collect();

        let mut details = Vec::with_capacity(ingredients.len());
        for ing in &ingredients {
            details.push(AttributeDetail::compute(table, ranking, &ing.attribute, k)?);
        }

        let top_names: Vec<&str> = ingredients.iter().map(|i| i.attribute.as_str()).collect();
        let recipe_attributes_not_material = recipe_attributes
            .iter()
            .filter(|a| !top_names.contains(a))
            .map(|a| (*a).to_string())
            .collect();

        Ok(IngredientsWidget {
            ingredients,
            all_attributes,
            details,
            model_r_squared,
            recipe_attributes_not_material,
            method,
        })
    }

    /// Names of the listed ingredients, strongest association first.
    #[must_use]
    pub fn ingredient_names(&self) -> Vec<&str> {
        self.ingredients
            .iter()
            .map(|i| i.attribute.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    /// PubCount drives the score; Faculty is correlated with PubCount; GRE is
    /// noise — the structure of the paper's CS departments example.
    fn setup() -> (Table, Ranking) {
        let n = 40usize;
        let pubs: Vec<f64> = (0..n).map(|i| 100.0 - 2.0 * i as f64).collect();
        // Faculty tracks PubCount closely but not perfectly (perfect
        // collinearity would make the learned-weight regression singular).
        let faculty: Vec<f64> = pubs
            .iter()
            .enumerate()
            .map(|(i, p)| p * 0.8 + 5.0 + (i % 4) as f64 * 1.5)
            .collect();
        let gre: Vec<f64> = (0..n).map(|i| 158.0 + (i % 5) as f64).collect();
        let table = Table::from_columns(vec![
            ("PubCount", Column::from_f64(pubs)),
            ("Faculty", Column::from_f64(faculty)),
            ("GRE", Column::from_f64(gre)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("PubCount", 0.7), ("GRE", 0.3)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        (table, ranking)
    }

    #[test]
    fn ingredients_ordered_by_association() {
        let (table, ranking) = setup();
        let widget =
            IngredientsWidget::build(&table, &ranking, &["PubCount", "GRE"], 10, 2).unwrap();
        assert_eq!(widget.ingredients.len(), 2);
        // PubCount (and the correlated Faculty) dominate; GRE does not make the cut.
        let names = widget.ingredient_names();
        assert!(names.contains(&"PubCount"));
        assert!(names.contains(&"Faculty"));
        assert!(!names.contains(&"GRE"));
        // Associations are sorted non-increasing.
        for pair in widget.ingredients.windows(2) {
            assert!(pair[0].rank_association >= pair[1].rank_association);
        }
    }

    #[test]
    fn recipe_mismatch_is_reported() {
        let (table, ranking) = setup();
        let widget =
            IngredientsWidget::build(&table, &ranking, &["PubCount", "GRE"], 10, 2).unwrap();
        // GRE is in the Recipe but not material to the outcome — exactly the
        // observation the demo walks through.
        assert_eq!(
            widget.recipe_attributes_not_material,
            vec!["GRE".to_string()]
        );
        let gre = widget
            .all_attributes
            .iter()
            .find(|i| i.attribute == "GRE")
            .unwrap();
        assert!(gre.in_recipe);
        assert!(gre.rank_association < 0.5);
    }

    #[test]
    fn learned_weights_present_when_model_fits() {
        let (table, ranking) = setup();
        let widget = IngredientsWidget::build(&table, &ranking, &["PubCount"], 10, 3).unwrap();
        assert!(widget.model_r_squared.unwrap_or(0.0) > 0.8);
        let pub_ing = widget
            .all_attributes
            .iter()
            .find(|i| i.attribute == "PubCount")
            .unwrap();
        assert!(pub_ing.learned_weight.is_some());
    }

    #[test]
    fn details_align_with_listed_ingredients() {
        let (table, ranking) = setup();
        let widget = IngredientsWidget::build(&table, &ranking, &["PubCount"], 5, 2).unwrap();
        assert_eq!(widget.details.len(), widget.ingredients.len());
        for (detail, ing) in widget.details.iter().zip(widget.ingredients.iter()) {
            assert_eq!(detail.attribute, ing.attribute);
            assert_eq!(detail.top_k.count, 5);
        }
    }

    #[test]
    fn count_larger_than_candidates_is_capped() {
        let (table, ranking) = setup();
        let widget = IngredientsWidget::build(&table, &ranking, &[], 5, 10).unwrap();
        assert_eq!(widget.ingredients.len(), 3);
        assert!(widget.recipe_attributes_not_material.is_empty());
        assert_eq!(widget.method, IngredientsMethod::LinearAssociation);
    }

    /// Fixture whose ranking is driven by PubCount alone, with GRE pure noise
    /// — the clean case in which both association estimators must agree.
    fn setup_pubcount_only() -> (Table, Ranking) {
        let n = 40usize;
        let pubs: Vec<f64> = (0..n).map(|i| 100.0 - 2.0 * i as f64).collect();
        let faculty: Vec<f64> = pubs.iter().map(|p| p * 0.8 + 5.0).collect();
        let gre: Vec<f64> = (0..n).map(|i| 158.0 + (i % 5) as f64).collect();
        let table = Table::from_columns(vec![
            ("PubCount", Column::from_f64(pubs.clone())),
            ("Faculty", Column::from_f64(faculty)),
            ("GRE", Column::from_f64(gre)),
        ])
        .unwrap();
        let ranking = Ranking::from_scores(&pubs).unwrap();
        (table, ranking)
    }

    #[test]
    fn rank_aware_method_orders_by_top_weighted_association() {
        let (table, ranking) = setup_pubcount_only();
        let widget = IngredientsWidget::build_with_method(
            &table,
            &ranking,
            &["PubCount", "GRE"],
            10,
            3,
            IngredientsMethod::RankAwareSimilarity,
        )
        .unwrap();
        assert_eq!(widget.method, IngredientsMethod::RankAwareSimilarity);
        // PubCount alone reproduces the ranking, so its attribute-induced
        // ranking agrees with the outcome far more than GRE's does.
        let find = |name: &str| {
            widget
                .all_attributes
                .iter()
                .find(|i| i.attribute == name)
                .unwrap()
        };
        assert!((find("PubCount").top_weighted_association - 1.0).abs() < 1e-9);
        assert!(find("PubCount").top_weighted_association > find("GRE").top_weighted_association);
        // The listed ingredients are sorted by the top-weighted association.
        for pair in widget.ingredients.windows(2) {
            assert!(pair[0].top_weighted_association >= pair[1].top_weighted_association);
        }
        // Every association lies in [0, 1].
        for ing in &widget.all_attributes {
            assert!((0.0..=1.0 + 1e-9).contains(&ing.top_weighted_association));
        }
    }

    #[test]
    fn both_methods_agree_on_the_driving_attribute() {
        let (table, ranking) = setup_pubcount_only();
        let linear = IngredientsWidget::build(&table, &ranking, &[], 10, 1).unwrap();
        let rank_aware = IngredientsWidget::build_with_method(
            &table,
            &ranking,
            &[],
            10,
            1,
            IngredientsMethod::RankAwareSimilarity,
        )
        .unwrap();
        // Different estimators, same headline finding: the publication /
        // faculty block tops the list, GRE never does.
        assert_ne!(linear.ingredient_names()[0], "GRE");
        assert_ne!(rank_aware.ingredient_names()[0], "GRE");
    }

    #[test]
    fn methods_can_disagree_when_an_attribute_dominates_only_the_top() {
        // The setup() fixture ranks with min-max normalized scores, where the
        // coarse GRE values decide who is at the very top even though PubCount
        // explains the overall ordering; the two estimators then tell
        // different (both true) stories — exactly why the widget reports both.
        let (table, ranking) = setup();
        let widget = IngredientsWidget::build_with_method(
            &table,
            &ranking,
            &["PubCount", "GRE"],
            10,
            3,
            IngredientsMethod::RankAwareSimilarity,
        )
        .unwrap();
        let find = |name: &str| {
            widget
                .all_attributes
                .iter()
                .find(|i| i.attribute == name)
                .unwrap()
        };
        // Linear association still favours PubCount…
        assert!(find("PubCount").rank_association > find("GRE").rank_association);
        // …while both top-weighted values are reported for the detailed view.
        assert!(find("GRE").top_weighted_association > 0.0);
        assert!(find("PubCount").top_weighted_association > 0.0);
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(
            IngredientsMethod::LinearAssociation.as_str(),
            "linear association"
        );
        assert_eq!(
            IngredientsMethod::RankAwareSimilarity.as_str(),
            "rank-aware similarity"
        );
        assert_eq!(
            IngredientsMethod::default(),
            IngredientsMethod::LinearAssociation
        );
    }
}
