//! The Recipe widget.
//!
//! "The Recipe widget succinctly describes the ranking algorithm.  For
//! example, for a linear scoring formula, each attribute would be listed
//! together with its weight. [...] The detailed Recipe and Ingredients
//! widgets list statistics of the attributes in the Recipe and in the
//! Ingredients: minimum, maximum and median values at the top-10 and
//! over-all." (paper §2.1)

use crate::error::LabelResult;
use rf_ranking::{Ranking, ScoringFunction};
use rf_stats::Summary;
use rf_table::Table;

/// One attribute row of the detailed Recipe/Ingredients view: its statistics
/// at the top-k and over the whole dataset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributeDetail {
    /// Attribute name.
    pub attribute: String,
    /// Statistics over the top-k rows.
    pub top_k: Summary,
    /// Statistics over all rows.
    pub overall: Summary,
}

impl AttributeDetail {
    /// Computes the top-k / over-all statistics of one numeric attribute.
    ///
    /// # Errors
    /// Unknown or non-numeric attribute, or no non-missing values in a slice.
    pub fn compute(
        table: &Table,
        ranking: &Ranking,
        attribute: &str,
        k: usize,
    ) -> LabelResult<Self> {
        let values = table.numeric_column_options(attribute)?;
        let overall: Vec<f64> = values.iter().filter_map(|v| *v).collect();
        let top_k_values: Vec<f64> = ranking
            .top_k_indices(k)
            .iter()
            .filter_map(|&i| values[i])
            .collect();
        Ok(AttributeDetail {
            attribute: attribute.to_string(),
            top_k: Summary::of(&top_k_values)?,
            overall: Summary::of(&overall)?,
        })
    }
}

/// One entry of the Recipe overview: an attribute and its (normalized) weight.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecipeEntry {
    /// Attribute name.
    pub attribute: String,
    /// Raw weight as specified by the designer.
    pub weight: f64,
    /// Weight rescaled so that absolute weights sum to 1.
    pub normalized_weight: f64,
}

/// The Recipe widget: the declared scoring methodology.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecipeWidget {
    /// The scoring attributes and weights, in declaration order.
    pub entries: Vec<RecipeEntry>,
    /// Human-readable description of the normalization policy.
    pub normalization: String,
    /// Detailed per-attribute statistics (top-k vs over-all).
    pub details: Vec<AttributeDetail>,
}

impl RecipeWidget {
    /// Builds the Recipe widget for `scoring` evaluated on `table`.
    ///
    /// # Errors
    /// Propagates attribute-statistics errors.
    pub fn build(
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
        k: usize,
    ) -> LabelResult<Self> {
        let normalized = scoring.normalized_weights();
        let entries = scoring
            .weights()
            .iter()
            .zip(normalized.iter())
            .map(|(raw, norm)| RecipeEntry {
                attribute: raw.attribute.clone(),
                weight: raw.weight,
                normalized_weight: norm.weight,
            })
            .collect();
        let mut details = Vec::with_capacity(scoring.weights().len());
        for weight in scoring.weights() {
            details.push(AttributeDetail::compute(
                table,
                ranking,
                &weight.attribute,
                k,
            )?);
        }
        Ok(RecipeWidget {
            entries,
            normalization: scoring.normalization().as_str().to_string(),
            details,
        })
    }

    /// Names of the recipe attributes, in declaration order.
    #[must_use]
    pub fn attribute_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.attribute.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn setup() -> (Table, ScoringFunction, Ranking) {
        let table = Table::from_columns(vec![
            ("PubCount", Column::from_f64(vec![9.0, 7.0, 5.0, 3.0, 1.0])),
            (
                "GRE",
                Column::from_f64(vec![160.0, 162.0, 158.0, 161.0, 159.0]),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("PubCount", 0.8), ("GRE", 0.2)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        (table, scoring, ranking)
    }

    #[test]
    fn recipe_lists_weights_and_normalization() {
        let (table, scoring, ranking) = setup();
        let recipe = RecipeWidget::build(&table, &scoring, &ranking, 3).unwrap();
        assert_eq!(recipe.entries.len(), 2);
        assert_eq!(recipe.entries[0].attribute, "PubCount");
        assert!((recipe.entries[0].normalized_weight - 0.8).abs() < 1e-12);
        assert!((recipe.entries[1].normalized_weight - 0.2).abs() < 1e-12);
        assert_eq!(recipe.normalization, "min-max [0, 1]");
        assert_eq!(recipe.attribute_names(), vec!["PubCount", "GRE"]);
    }

    #[test]
    fn details_compare_top_k_with_overall() {
        let (table, scoring, ranking) = setup();
        let recipe = RecipeWidget::build(&table, &scoring, &ranking, 2).unwrap();
        let pub_detail = &recipe.details[0];
        assert_eq!(pub_detail.attribute, "PubCount");
        assert_eq!(pub_detail.overall.count, 5);
        assert_eq!(pub_detail.top_k.count, 2);
        // The top-2 by PubCount-dominated score have the two largest PubCounts.
        assert_eq!(pub_detail.top_k.min, 7.0);
        assert_eq!(pub_detail.top_k.max, 9.0);
        assert_eq!(pub_detail.overall.min, 1.0);
    }

    #[test]
    fn attribute_detail_errors_on_bad_column() {
        let (table, _, ranking) = setup();
        assert!(AttributeDetail::compute(&table, &ranking, "ghost", 2).is_err());
    }

    #[test]
    fn gre_statistics_similar_between_slices() {
        // The paper's observation: "the range of values and the median for GRE
        // are very similar in the top-10 and overall".
        let (table, scoring, ranking) = setup();
        let recipe = RecipeWidget::build(&table, &scoring, &ranking, 3).unwrap();
        let gre = recipe
            .details
            .iter()
            .find(|d| d.attribute == "GRE")
            .unwrap();
        assert!((gre.top_k.median - gre.overall.median).abs() < 3.0);
    }
}
