//! The Diversity widget.
//!
//! "The Diversity widget shows diversity with respect to a set of demographic
//! categories of individuals, or a set of categorical attributes of other
//! kinds of items.  The widget displays the proportion of each category in
//! the top-10 ranked list and over-all." (paper §2.4)

use crate::config::LabelConfig;
use crate::error::LabelResult;
use rf_diversity::DiversityReport;
use rf_ranking::Ranking;
use rf_table::Table;

/// The Diversity widget: one report per configured categorical attribute.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiversityWidget {
    /// One diversity report per attribute, in configuration order.
    pub reports: Vec<DiversityReport>,
}

impl DiversityWidget {
    /// Builds the Diversity widget for every diversity attribute in `config`.
    ///
    /// # Errors
    /// Propagates diversity-measure errors (float attributes, empty
    /// attributes, k out of range).
    pub fn build(table: &Table, ranking: &Ranking, config: &LabelConfig) -> LabelResult<Self> {
        let mut reports = Vec::with_capacity(config.diversity_attributes.len());
        for attribute in &config.diversity_attributes {
            reports.push(DiversityReport::evaluate(
                table,
                ranking,
                attribute,
                config.top_k,
            )?);
        }
        Ok(DiversityWidget { reports })
    }

    /// Attributes whose top-k loses at least one category present over-all —
    /// e.g. "only large departments are present in the top-10".
    #[must_use]
    pub fn attributes_losing_categories(&self) -> Vec<&str> {
        self.reports
            .iter()
            .filter(|r| !r.covers_all_categories())
            .map(|r| r.attribute.as_str())
            .collect()
    }

    /// `true` when every attribute keeps all of its categories in the top-k.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        self.reports
            .iter()
            .all(DiversityReport::covers_all_categories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    fn setup() -> (Table, Ranking, LabelConfig) {
        let n = 40usize;
        let sizes: Vec<&str> = (0..n)
            .map(|i| if i < 20 { "large" } else { "small" })
            .collect();
        let regions: Vec<&str> = (0..n)
            .map(|i| match i % 4 {
                0 => "NE",
                1 => "MW",
                2 => "SA",
                _ => "W",
            })
            .collect();
        let quality: Vec<f64> = (0..n).map(|i| 100.0 - i as f64).collect();
        let table = Table::from_columns(vec![
            ("DeptSizeBin", Column::from_strings(sizes)),
            ("Region", Column::from_strings(regions)),
            ("quality", Column::from_f64(quality)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("quality", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_diversity_attribute("DeptSizeBin")
            .with_diversity_attribute("Region");
        (table, ranking, config)
    }

    #[test]
    fn one_report_per_attribute() {
        let (table, ranking, config) = setup();
        let widget = DiversityWidget::build(&table, &ranking, &config).unwrap();
        assert_eq!(widget.reports.len(), 2);
        assert_eq!(widget.reports[0].attribute, "DeptSizeBin");
        assert_eq!(widget.reports[1].attribute, "Region");
    }

    #[test]
    fn detects_lost_categories() {
        let (table, ranking, config) = setup();
        let widget = DiversityWidget::build(&table, &ranking, &config).unwrap();
        // Only large departments reach the top-10; every region survives.
        assert_eq!(widget.attributes_losing_categories(), vec!["DeptSizeBin"]);
        assert!(!widget.full_coverage());
    }

    #[test]
    fn empty_config_is_fine() {
        let (table, ranking, mut config) = setup();
        config.diversity_attributes.clear();
        let widget = DiversityWidget::build(&table, &ranking, &config).unwrap();
        assert!(widget.reports.is_empty());
        assert!(widget.full_coverage());
    }

    #[test]
    fn bad_attribute_errors() {
        let (table, ranking, mut config) = setup();
        config.diversity_attributes = vec!["quality".to_string()];
        assert!(DiversityWidget::build(&table, &ranking, &config).is_err());
    }
}
