//! The Stability widget (overview + the detailed view of Figure 2).

use crate::error::LabelResult;
use rf_ranking::{Ranking, ScoringFunction};
use rf_stability::{
    attribute_stability_with_threshold, AttributeStability, MonteCarloSummary, SlopeStability,
};
use rf_table::Table;

/// The Stability widget: slope analysis at the top-k and over-all, the
/// per-attribute breakdown, and the Monte-Carlo uncertainty detail of the
/// detailed view.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StabilityWidget {
    /// Slope-based stability (the paper's headline estimator, Figure 2).
    pub slope: SlopeStability,
    /// Per-attribute stability ("stability can be computed with respect to
    /// each scoring attribute").
    pub per_attribute: Vec<AttributeStability>,
    /// The Monte-Carlo detail view ("assessed using a model of uncertainty
    /// in the data"); `None` when the configuration disables it
    /// (`monte_carlo.trials == 0`).
    #[serde(default)]
    pub monte_carlo: Option<MonteCarloSummary>,
    /// The single number the overview shows.
    pub stability_score: f64,
    /// The stable / unstable verdict of the overview.
    pub stable: bool,
}

impl StabilityWidget {
    /// Builds the Stability widget (without the Monte-Carlo detail — attach
    /// one via [`StabilityWidget::with_monte_carlo`]).
    ///
    /// # Errors
    /// Propagates stability-estimator errors (too few items, constant scoring
    /// attributes under min-max normalization, …).
    pub fn build(
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
        k: usize,
        threshold: f64,
    ) -> LabelResult<Self> {
        let slope = SlopeStability::evaluate_with_threshold(ranking, k, threshold)?;
        let per_attribute = attribute_stability_with_threshold(table, scoring, ranking, threshold)?;
        Ok(Self::assemble(slope, per_attribute))
    }

    /// Builds the Stability widget from the precomputed normalized score
    /// matrix held by the analysis context, skipping the per-label normalizer
    /// refit.
    ///
    /// # Errors
    /// Propagates stability-estimator errors.
    pub fn build_from_normalized(
        scoring: &ScoringFunction,
        normalized: &[(String, Vec<f64>)],
        ranking: &Ranking,
        k: usize,
        threshold: f64,
    ) -> LabelResult<Self> {
        let slope = SlopeStability::evaluate_with_threshold(ranking, k, threshold)?;
        let per_attribute =
            rf_stability::attribute_stability_from_normalized(scoring, normalized, threshold)?;
        Ok(Self::assemble(slope, per_attribute))
    }

    /// Attaches the Monte-Carlo detail view.
    #[must_use]
    pub fn with_monte_carlo(mut self, monte_carlo: Option<MonteCarloSummary>) -> Self {
        self.monte_carlo = monte_carlo;
        self
    }

    fn assemble(slope: SlopeStability, per_attribute: Vec<AttributeStability>) -> Self {
        let stability_score = slope.stability_score();
        let stable = slope.verdict() == rf_stability::StabilityVerdict::Stable;
        StabilityWidget {
            slope,
            per_attribute,
            monte_carlo: None,
            stability_score,
            stable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn setup(spread: f64) -> (Table, ScoringFunction, Ranking) {
        let values: Vec<f64> = (0..30).map(|i| 100.0 - spread * i as f64).collect();
        let other: Vec<f64> = (0..30).map(|i| 50.0 + (i % 7) as f64).collect();
        let table = Table::from_columns(vec![
            ("main", Column::from_f64(values)),
            ("minor", Column::from_f64(other)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("main", 0.9), ("minor", 0.1)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        (table, scoring, ranking)
    }

    #[test]
    fn widely_spread_scores_are_stable() {
        let (table, scoring, ranking) = setup(3.0);
        let widget = StabilityWidget::build(&table, &scoring, &ranking, 10, 0.25).unwrap();
        assert!(widget.stable);
        assert!(widget.stability_score > 0.25);
        assert_eq!(widget.per_attribute.len(), 2);
        assert_eq!(widget.slope.k, 10);
    }

    #[test]
    fn nearly_tied_scores_are_unstable() {
        let (table, scoring, ranking) = setup(0.001);
        let widget = StabilityWidget::build(&table, &scoring, &ranking, 10, 0.25).unwrap();
        // The dominant attribute barely varies relative to the minor one, so
        // scores cluster and the distribution is flat.
        assert!(widget.stability_score < 1.0);
        // The score consistent with the verdict flag.
        assert_eq!(
            widget.stable,
            widget.slope.verdict() == rf_stability::StabilityVerdict::Stable
        );
    }

    #[test]
    fn per_attribute_breakdown_names_match_recipe() {
        let (table, scoring, ranking) = setup(2.0);
        let widget = StabilityWidget::build(&table, &scoring, &ranking, 10, 0.25).unwrap();
        let names: Vec<&str> = widget
            .per_attribute
            .iter()
            .map(|a| a.attribute.as_str())
            .collect();
        assert_eq!(names, vec!["main", "minor"]);
    }

    #[test]
    fn errors_propagate() {
        let (table, scoring, _) = setup(2.0);
        let tiny = Ranking::from_scores(&[1.0]).unwrap();
        assert!(StabilityWidget::build(&table, &scoring, &tiny, 10, 0.25).is_err());
        let (table2, scoring2, ranking2) = setup(2.0);
        assert!(StabilityWidget::build(&table2, &scoring2, &ranking2, 10, 0.0).is_err());
    }
}
