//! The six widgets of the nutritional label (Figure 1 of the paper).
//!
//! Each widget has an *overview* (what the compact label shows) and a
//! *detailed view* (what expands when the user clicks through), mirroring the
//! paper: "The nutritional label consists of six widgets, each with an
//! overview and a detailed view" (§2).

pub mod diversity;
pub mod fairness;
pub mod ingredients;
pub mod recipe;
pub mod stability;
