//! The Fairness widget.
//!
//! "The summary view of the Fairness widget [...] presents the output of
//! three fairness measures: FA*IR, proportion, and our own pairwise measure.
//! All these measures are statistical tests, and whether a result is fair is
//! determined by the computed p-value.  The detailed Fairness widget provides
//! additional information about the tests and explains the process."
//! (paper §2.3)
//!
//! One [`FairnessReport`] is produced per protected feature; in Figure 1 both
//! values of `DeptSizeBin` ("large" and "small") are audited.

use crate::config::LabelConfig;
use crate::error::LabelResult;
use rf_fairness::{FairnessReport, FairnessVerdict, ProtectedGroup};
use rf_ranking::Ranking;
use rf_table::Table;

/// The Fairness widget: one report per audited protected feature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FairnessWidget {
    /// One fairness report per `(sensitive attribute, protected value)` pair,
    /// in configuration order.
    pub reports: Vec<FairnessReport>,
}

impl FairnessWidget {
    /// Builds the Fairness widget for every protected feature in `config`.
    ///
    /// # Errors
    /// Propagates fairness-measure errors (non-binary attributes, degenerate
    /// groups, k out of range, …).
    pub fn build(table: &Table, ranking: &Ranking, config: &LabelConfig) -> LabelResult<Self> {
        let mut groups = Vec::new();
        for (attribute, protected_value) in config.protected_features() {
            groups.push(ProtectedGroup::from_table(
                table,
                attribute,
                protected_value,
            )?);
        }
        Self::build_from_groups(&groups, ranking, config)
    }

    /// Builds the Fairness widget from precomputed protected groups (the
    /// membership vectors the analysis context extracts exactly once).
    ///
    /// # Errors
    /// Propagates fairness-measure errors (degenerate groups, k out of
    /// range, …).
    pub fn build_from_groups(
        groups: &[ProtectedGroup],
        ranking: &Ranking,
        config: &LabelConfig,
    ) -> LabelResult<Self> {
        let fairness_config = rf_fairness::report::FairnessConfig {
            k: config.top_k,
            alpha: config.alpha,
        };
        let mut reports = Vec::with_capacity(groups.len());
        for group in groups {
            reports.push(FairnessReport::evaluate(group, ranking, &fairness_config)?);
        }
        Ok(FairnessWidget { reports })
    }

    /// `true` when every measure of every audited feature is fair.
    #[must_use]
    pub fn all_fair(&self) -> bool {
        self.reports.iter().all(FairnessReport::all_fair)
    }

    /// The protected features flagged as unfair by at least one measure.
    #[must_use]
    pub fn unfair_features(&self) -> Vec<(&str, &str)> {
        self.reports
            .iter()
            .filter(|r| r.any_unfair())
            .map(|r| (r.attribute.as_str(), r.protected_value.as_str()))
            .collect()
    }

    /// Flattened `(attribute, value, measure, verdict, p_value)` rows for
    /// rendering the summary table.
    #[must_use]
    pub fn summary_rows(&self) -> Vec<(String, String, String, FairnessVerdict, f64)> {
        self.reports
            .iter()
            .flat_map(|report| {
                report.outcomes().into_iter().map(move |outcome| {
                    (
                        report.attribute.clone(),
                        report.protected_value.clone(),
                        outcome.measure,
                        outcome.verdict,
                        outcome.p_value,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    /// Scores strongly favour "large" items, so "small" is under-represented
    /// at the top — the Figure 1 situation.
    fn setup() -> (Table, Ranking, LabelConfig) {
        let n = 60usize;
        let sizes: Vec<&str> = (0..n)
            .map(|i| if i < 30 { "large" } else { "small" })
            .collect();
        let score_attr: Vec<f64> = (0..n).map(|i| 200.0 - i as f64).collect();
        let table = Table::from_columns(vec![
            ("size", Column::from_strings(sizes)),
            ("quality", Column::from_f64(score_attr)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("quality", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("size", ["large", "small"]);
        (table, ranking, config)
    }

    #[test]
    fn one_report_per_protected_feature() {
        let (table, ranking, config) = setup();
        let widget = FairnessWidget::build(&table, &ranking, &config).unwrap();
        assert_eq!(widget.reports.len(), 2);
        assert_eq!(widget.reports[0].protected_value, "large");
        assert_eq!(widget.reports[1].protected_value, "small");
        assert_eq!(widget.summary_rows().len(), 6); // 2 features × 3 measures
    }

    #[test]
    fn excluded_group_is_flagged() {
        let (table, ranking, config) = setup();
        let widget = FairnessWidget::build(&table, &ranking, &config).unwrap();
        assert!(!widget.all_fair());
        let unfair = widget.unfair_features();
        // "small" never reaches the top-10, so it must be among the unfair features.
        assert!(unfair.contains(&("size", "small")));
    }

    #[test]
    fn no_sensitive_attributes_produces_empty_widget() {
        let (table, ranking, mut config) = setup();
        config.sensitive_attributes.clear();
        let widget = FairnessWidget::build(&table, &ranking, &config).unwrap();
        assert!(widget.reports.is_empty());
        assert!(widget.all_fair());
        assert!(widget.unfair_features().is_empty());
    }

    #[test]
    fn non_binary_attribute_errors() {
        let n = 30usize;
        let regions: Vec<&str> = (0..n)
            .map(|i| match i % 3 {
                0 => "NE",
                1 => "MW",
                _ => "W",
            })
            .collect();
        let table = Table::from_columns(vec![
            ("region", Column::from_strings(regions)),
            (
                "quality",
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("quality", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&table).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("region", ["NE"]);
        assert!(FairnessWidget::build(&table, &ranking, &config).is_err());
    }
}
