//! The [`LabelService`]: the cached front door to the analysis pipeline.
//!
//! Callers that serve repeated label requests (the HTTP server, benchmarks)
//! should not talk to [`AnalysisPipeline`] directly — they go through this
//! service, which
//!
//! 1. fingerprints the request into a [`CacheKey`] (content-addressed: a
//!    re-uploaded byte-identical table hits the same entry),
//! 2. answers warm requests from the bounded LRU [`LabelCache`] with **zero**
//!    analysis work (no context preparation — asserted by the cache-parity
//!    tests via [`AnalysisContext::preparations`]),
//! 3. on a miss, generates through the pipeline, renders the JSON once, and
//!    caches both, and
//! 4. coalesces concurrent misses for the same key (**single-flight**): the
//!    first request leads the generation, later arrivals wait on its
//!    in-flight slot and share the result — a cold-key load spike performs
//!    one preparation instead of N.  Only observable now that the
//!    event-driven server actually holds many concurrent requests.
//!
//! The service is `Sync`; one instance is shared across worker threads by
//! `Arc` (the server does exactly that), with the cache behind a mutex held
//! only for lookups and inserts — never while generating.
//!
//! One-shot processes gain nothing from an in-process cache, so the CLI's
//! `--ks` sweeps call [`AnalysisPipeline::generate_sweep`] directly;
//! [`LabelService::label_sweep`] is the long-lived-process flavour of the
//! same batching.

use crate::cache::{CacheKey, CacheStats, CachedLabel, LabelCache};
use crate::config::LabelConfig;
use crate::error::{LabelError, LabelResult};
use crate::pipeline::{AnalysisContext, AnalysisPipeline};
use rf_table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};

/// Default maximum number of resident labels.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;
/// Default maximum resident bytes — each entry counts its rendered JSON
/// *plus* the approximate heap footprint of the table it retains for hit
/// verification (see [`LabelCache`]): 64 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// A point-in-time view of the service: cache counters, the process-wide
/// preparation count (how many analysis contexts were ever prepared), and
/// the execution scheduler's observability counters.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Cache counters and occupancy.
    pub cache: CacheStats,
    /// Process-wide [`AnalysisContext`] preparations so far.
    pub preparations: u64,
    /// Requests that joined another request's in-flight generation instead
    /// of repeating it (single-flight coalescing).
    pub coalesced: u64,
    /// The work-stealing scheduler this service's pipeline fans out on:
    /// worker count, queue depth, steals, executed and panicked tasks.
    pub scheduler: rf_runtime::SchedulerStats,
    /// Process-wide Monte-Carlo stability counters: estimator runs, trials
    /// completed, and runs truncated by their deadline budget.
    pub monte_carlo: crate::pipeline::MonteCarloRuntimeStats,
    /// The I/O plane's per-reactor counters and their rollup.  `None` when
    /// the service runs without a network front-end (library use, tests);
    /// the server fills it in at scrape time from the live reactors.
    #[serde(default)]
    pub network: Option<NetworkStats>,
    /// Admission-control visibility: the pending gauge against its cap, plus
    /// the controller's *predicted* (EWMA) and *measured* (stage-histogram
    /// mean) per-request service times side by side — the comparison the
    /// observability layer exists to make.  `None` without a network
    /// front-end; the server fills it in at scrape time.
    #[serde(default)]
    pub admission: Option<AdmissionStats>,
    /// Shape metadata of every table in the server's dataset catalogue, so
    /// operators can see sizes without downloading a table.  `None` without
    /// a catalogue (library use, tests); the server fills it in at scrape
    /// time.
    #[serde(default)]
    pub datasets: Option<Vec<DatasetTableStats>>,
    /// The on-disk tier's counters and occupancy
    /// (`disk_hits`/`disk_misses`/`promotions`/`write_errors`/
    /// `corrupt_dropped`).  `None` when the service runs memory-only — the
    /// default, and the degraded mode an unusable cache directory falls
    /// back to.
    #[serde(default)]
    pub disk: Option<rf_store::DiskStats>,
}

/// Shape of one catalogued dataset, as seen by `/stats`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DatasetTableStats {
    /// The dataset's catalogue slug (its URL path segment).
    pub slug: String,
    /// Number of rows.
    pub rows: u64,
    /// Number of columns.
    pub columns: u64,
}

/// Admission control as seen by `/stats`: occupancy plus the predicted vs
/// measured service-time estimates (microseconds; `measured` is `0` until
/// the prepare/render histograms have observations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdmissionStats {
    /// The configured cap on concurrently pending requests.
    pub max_pending: u64,
    /// Requests currently admitted but not yet completed.
    pub pending: u64,
    /// The controller's EWMA service-time estimate (its own feedback loop).
    pub ewma_service_micros: u64,
    /// Mean prepare+render time from the measured stage histograms.
    pub measured_service_micros: u64,
}

/// The sharded I/O plane as seen by `/stats`: one counter block per reactor
/// and their sum.  Plain integers only — the snapshots are taken with
/// rf-net's torn-read-safe discipline, so `active ≤ accepted` holds in the
/// totals as well as per shard.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetworkStats {
    /// One counter block per reactor shard, in shard order.
    pub reactors: Vec<ReactorCounters>,
    /// Component-wise sum over all shards.
    pub totals: ReactorCounters,
}

/// Counters for one reactor shard (or a sum over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReactorCounters {
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections currently open (derived, never exceeds `accepted`).
    pub active: u64,
    /// Requests handed to the application.
    pub dispatched: u64,
    /// Responses delivered back through the completion channel.
    pub completions: u64,
    /// Connections refused with a `503` at the connection cap.
    pub shed_connections: u64,
    /// Requests refused with a `503` by admission control.
    pub shed_requests: u64,
}

/// Memoizes table fingerprints by `Arc` identity, so long-lived shared
/// tables (the server's catalog) are hashed once instead of once per
/// request — fingerprinting is linear in the table, and it sits on the warm
/// hit path.
///
/// Entries hold `Weak` references: a memoized fingerprint is only reused
/// when the weak pointer upgrades to the *same allocation* as the request's
/// `Arc`, so a recycled address can never serve a stale hash.  `Table` has
/// no interior mutability, so an alive shared allocation cannot have
/// changed.  Fresh allocations (per-request uploads) simply miss and hash.
#[derive(Debug, Default)]
struct FingerprintMemo {
    entries: HashMap<usize, (Weak<Table>, u64)>,
}

/// Dead weak entries are pruned once the memo grows past this.
const FINGERPRINT_MEMO_PRUNE_AT: usize = 64;

impl FingerprintMemo {
    fn fingerprint(&mut self, table: &Arc<Table>) -> u64 {
        let address = Arc::as_ptr(table) as usize;
        if let Some((weak, fingerprint)) = self.entries.get(&address) {
            if let Some(alive) = weak.upgrade() {
                if Arc::ptr_eq(&alive, table) {
                    return *fingerprint;
                }
            }
        }
        let fingerprint = table.fingerprint();
        if self.entries.len() >= FINGERPRINT_MEMO_PRUNE_AT {
            self.entries.retain(|_, (weak, _)| weak.strong_count() > 0);
        }
        self.entries
            .insert(address, (Arc::downgrade(table), fingerprint));
        fingerprint
    }
}

/// One in-flight generation that later arrivals for the same key wait on.
///
/// The slot retains the leader's exact inputs: the fingerprints are
/// non-cryptographic, so — exactly like a [`LabelCache`] hit — a waiter only
/// accepts the shared result after verifying its table and configuration
/// *equal* the leader's.  A colliding request falls back to generating for
/// itself instead of receiving another key's label.
#[derive(Debug)]
struct Inflight {
    table: Arc<Table>,
    config: Arc<LabelConfig>,
    result: Mutex<Option<LabelResult<CachedLabel>>>,
    done: Condvar,
}

impl Inflight {
    fn new(table: &Arc<Table>, config: &Arc<LabelConfig>) -> Self {
        Inflight {
            table: Arc::clone(table),
            config: Arc::clone(config),
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Publishes the generation's outcome and wakes every waiter.
    fn fill(&self, result: LabelResult<CachedLabel>) {
        let mut slot = self.result.lock().expect("in-flight slot lock");
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.done.notify_all();
    }

    /// Blocks until the leader publishes, then returns a clone.
    fn wait(&self) -> LabelResult<CachedLabel> {
        let mut slot = self.result.lock().expect("in-flight slot lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).expect("in-flight slot lock");
        }
    }
}

/// Removes the in-flight slot (and publishes a failure if nothing was
/// published) even when the leader unwinds — waiters must never block on a
/// slot whose leader died.
struct InflightGuard<'a> {
    service: &'a LabelService,
    key: CacheKey,
    slot: Arc<Inflight>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        // No-op when the leader already published; the error is only seen
        // by waiters racing a leader that panicked.
        self.slot.fill(Err(LabelError::WidgetPanic {
            widget: "single-flight leader".to_string(),
        }));
        self.service
            .inflight
            .lock()
            .expect("in-flight map lock")
            .remove(&self.key);
    }
}

/// Content-addressed, cached label generation.
#[derive(Debug)]
pub struct LabelService {
    pipeline: AnalysisPipeline,
    cache: Mutex<LabelCache>,
    fingerprints: Mutex<FingerprintMemo>,
    /// Per-key single-flight slots for generations currently running.
    inflight: Mutex<HashMap<CacheKey, Arc<Inflight>>>,
    /// How many requests joined an in-flight generation.
    coalesced: AtomicU64,
    /// The crash-safe on-disk tier under the memory cache, when configured:
    /// probed on the leader's cold path, written behind on fills, purged
    /// together with the memory tier.  `None` runs memory-only.
    disk: Option<Arc<rf_store::DiskStore>>,
    /// The cache TTL, mirrored out of the [`LabelCache`] policy so disk
    /// entries (whose fill timestamps survive restarts) expire on the same
    /// clock as memory entries.
    ttl: Option<std::time::Duration>,
}

impl Default for LabelService {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelService {
    /// A service over the parallel pipeline with the default cache bounds.
    #[must_use]
    pub fn new() -> Self {
        Self::with_pipeline(
            AnalysisPipeline::new(),
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_CACHE_BYTES,
        )
    }

    /// A service over an explicit pipeline and explicit cache bounds
    /// (`capacity` entries; `max_bytes` resident bytes, counting each
    /// entry's rendered JSON plus the table it retains).
    #[must_use]
    pub fn with_pipeline(pipeline: AnalysisPipeline, capacity: usize, max_bytes: usize) -> Self {
        Self::with_cache_policy(pipeline, capacity, max_bytes, None)
    }

    /// [`LabelService::with_pipeline`] plus an optional per-entry TTL: warm
    /// entries older than `ttl` are dropped on lookup (and counted in
    /// [`CacheStats::expired`](crate::CacheStats)), the knob deployments
    /// tune so a steadily-hit label cannot pin its table in memory forever.
    #[must_use]
    pub fn with_cache_policy(
        pipeline: AnalysisPipeline,
        capacity: usize,
        max_bytes: usize,
        ttl: Option<std::time::Duration>,
    ) -> Self {
        LabelService {
            pipeline,
            cache: Mutex::new(LabelCache::with_ttl(capacity, max_bytes, ttl)),
            fingerprints: Mutex::new(FingerprintMemo::default()),
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            disk: None,
            ttl,
        }
    }

    /// Attaches the crash-safe on-disk tier: cold misses probe `store`
    /// before generating, fills are written behind, and cache invalidation
    /// purges it together with the memory tier.  Disk hits are promoted into
    /// memory *at their original age* (the fill timestamp is persisted), so
    /// the TTL policy holds across restarts.
    #[must_use]
    pub fn with_disk_tier(mut self, store: Arc<rf_store::DiskStore>) -> Self {
        self.disk = Some(store);
        self
    }

    /// The attached disk tier, if any (tests and the server's startup log
    /// use this to see whether the two-tier mode is active).
    #[must_use]
    pub fn disk_store(&self) -> Option<&Arc<rf_store::DiskStore>> {
        self.disk.as_ref()
    }

    /// The table's content fingerprint, memoized by `Arc` identity.
    fn table_fingerprint(&self, table: &Arc<Table>) -> u64 {
        self.fingerprints
            .lock()
            .expect("fingerprint memo lock")
            .fingerprint(table)
    }

    /// The label for `(table, config)` — served from the cache when warm,
    /// generated (and cached) when cold.
    ///
    /// A warm hit performs no analysis work at all: no validation, no
    /// ranking, no context preparation.  Cold and warm responses are
    /// byte-identical because generation is a pure function of the key.
    ///
    /// Cold misses are **single-flight**: when load spikes send N identical
    /// requests at once, the first becomes the leader and runs the pipeline;
    /// the other N−1 block on its in-flight slot and share the result —
    /// exactly one context preparation total (the [`ServiceStats::coalesced`]
    /// counter records the joins).  Leaders publish errors too, so a failed
    /// generation fails every coalesced request instead of retrying N times.
    ///
    /// # Errors
    /// Pipeline errors on a cold miss (validation, widgets, serialization).
    pub fn label(&self, table: &Arc<Table>, config: &Arc<LabelConfig>) -> LabelResult<CachedLabel> {
        // `cache_lookup` covers everything up to the hit/lead/join decision:
        // fingerprinting, the map+cache probe, and slot resolution.
        let lookup_started = std::time::Instant::now();
        let key = CacheKey {
            table: self.table_fingerprint(table),
            config: config.fingerprint(),
        };
        // Check the cache and join-or-lead *under the in-flight map lock*.
        // A leader only removes its map entry (guard drop) after inserting
        // into the cache, and that removal also takes this lock — so a
        // vacant map entry here proves the cache check just above it could
        // not have missed a completed generation.  Checking outside the
        // lock would let a request race a finishing leader and run a
        // duplicate generation (lock order is map → cache, nowhere
        // reversed).
        let (slot, leading) = {
            let mut inflight = self.inflight.lock().expect("in-flight map lock");
            if let Some(hit) = self
                .cache
                .lock()
                .expect("label cache lock")
                .get(&key, table, config)
            {
                crate::pipeline::note_stage(rf_obs::Stage::CacheLookup, lookup_started.elapsed());
                rf_obs::with_active(|span| span.set_cache(rf_obs::CacheOutcome::Hit));
                return Ok(hit);
            }
            match inflight.entry(key) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    (Arc::clone(entry.get()), false)
                }
                std::collections::hash_map::Entry::Vacant(entry) => (
                    Arc::clone(entry.insert(Arc::new(Inflight::new(table, config)))),
                    true,
                ),
            }
        };
        crate::pipeline::note_stage(rf_obs::Stage::CacheLookup, lookup_started.elapsed());
        if !leading {
            // Verify the leader is generating *our* inputs before adopting
            // its result (fingerprint collisions degrade to own generation).
            if slot.config.as_ref() == config.as_ref()
                && (Arc::ptr_eq(&slot.table, table) || slot.table.as_ref() == table.as_ref())
            {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                rf_obs::with_active(|span| span.set_cache(rf_obs::CacheOutcome::Coalesced));
                return slot.wait();
            }
            rf_obs::with_active(|span| span.set_cache(rf_obs::CacheOutcome::Miss));
            return self.generate_uncoalesced(key, table, config);
        }
        rf_obs::with_active(|span| span.set_cache(rf_obs::CacheOutcome::Miss));
        let guard = InflightGuard {
            service: self,
            key,
            slot,
        };
        let result = self.generate_uncoalesced(key, table, config);
        // Publish to waiters before the guard's drop removes the map entry,
        // so a racing request either sees the cache entry, joins the filled
        // slot, or starts fresh — never waits on an abandoned slot.
        guard.slot.fill(result.clone());
        drop(guard);
        result
    }

    /// The plain cold-miss path: generate through the pipeline, render, and
    /// cache under the caller's already-computed `key`.  Used by leaders
    /// and by collision fallbacks.
    ///
    /// A label whose Monte-Carlo detail was **truncated by its deadline
    /// budget** is returned but *not* cached: how far a truncated run got is
    /// a function of transient load, not of the cache key, so caching it
    /// would let one busy moment permanently degrade every later (idle)
    /// request for that key.  Deadline-bearing requests therefore regenerate
    /// until one completes within budget — each regeneration still honours
    /// the budget, and concurrent arrivals still coalesce onto one
    /// generation.
    fn generate_uncoalesced(
        &self,
        key: CacheKey,
        table: &Arc<Table>,
        config: &Arc<LabelConfig>,
    ) -> LabelResult<CachedLabel> {
        if let Some(hit) = self.disk_lookup(key, table, config) {
            return Ok(hit);
        }
        let label = self
            .pipeline
            .generate(Arc::clone(table), Arc::clone(config))?;
        let cached = CachedLabel {
            json: Arc::new(label.to_json()?),
            label: Arc::new(label),
        };
        if !Self::is_truncated(&cached) {
            self.cache.lock().expect("label cache lock").insert(
                key,
                Arc::clone(table),
                cached.clone(),
            );
            if let Some(disk) = &self.disk {
                // Write-behind: the store's background writer frames,
                // fsyncs, and renames; the request never waits on disk.
                disk.store(
                    Self::store_key(key),
                    rf_store::unix_millis_now(),
                    Arc::clone(&cached.json),
                );
            }
        }
        Ok(cached)
    }

    fn store_key(key: CacheKey) -> rf_store::StoreKey {
        rf_store::StoreKey {
            table: key.table,
            config: key.config,
        }
    }

    /// Probes the disk tier on the leader's cold path (timed as the
    /// `cache_disk` stage).  A valid, unexpired entry is deserialized back
    /// into a label, verified against the request's configuration (the
    /// fingerprints are non-cryptographic, exactly like a memory hit), and
    /// promoted into the memory tier **at its original age** so the TTL
    /// clock is never reset by a promotion.  The stored bytes are served
    /// verbatim — a disk hit is byte-identical to the warm hit it replaces.
    ///
    /// Every failure degrades to `None` (regenerate): absent, expired,
    /// unreadable, corrupt, undeserializable, or colliding.  The stored
    /// table is not retained on disk, so — unlike a memory hit — a disk hit
    /// cannot compare the request's table bytes; the table fingerprint in
    /// the file name plus the embedded configuration check is the guarantee.
    fn disk_lookup(
        &self,
        key: CacheKey,
        table: &Arc<Table>,
        config: &Arc<LabelConfig>,
    ) -> Option<CachedLabel> {
        let disk = self.disk.as_ref()?;
        let started = std::time::Instant::now();
        let result = self.disk_lookup_inner(disk, key, table, config);
        crate::pipeline::note_stage(rf_obs::Stage::CacheDisk, started.elapsed());
        result
    }

    fn disk_lookup_inner(
        &self,
        disk: &Arc<rf_store::DiskStore>,
        key: CacheKey,
        table: &Arc<Table>,
        config: &Arc<LabelConfig>,
    ) -> Option<CachedLabel> {
        let now = rf_store::unix_millis_now();
        let ttl_millis = self
            .ttl
            .map(|ttl| u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX));
        let entry = disk.lookup(Self::store_key(key), ttl_millis, now)?;
        // The framing checksum held, so this is what the writer stored —
        // but the writer could have been a colliding key's leader, and the
        // body must round-trip back into a label for the HTML/text renders.
        let Ok(json) = String::from_utf8(entry.body) else {
            disk.discard_corrupt(Self::store_key(key));
            return None;
        };
        let Ok(label) = serde_json::from_str::<crate::label::NutritionalLabel>(&json) else {
            disk.discard_corrupt(Self::store_key(key));
            return None;
        };
        if label.config != **config {
            // A config-fingerprint collision: the entry is some other
            // request's valid label.  Leave it; generate for ourselves.
            return None;
        }
        let cached = CachedLabel {
            label: Arc::new(label),
            json: Arc::new(json),
        };
        let age = std::time::Duration::from_millis(now.saturating_sub(entry.fill_unix_millis));
        self.cache.lock().expect("label cache lock").insert_aged(
            key,
            Arc::clone(table),
            cached.clone(),
            age,
        );
        disk.note_promotion();
        Some(cached)
    }

    /// Whether the label's Monte-Carlo detail stopped early on its deadline
    /// budget (such labels are never cached — see
    /// [`generate_uncoalesced`](Self::generate_uncoalesced)).
    fn is_truncated(cached: &CachedLabel) -> bool {
        cached
            .label
            .stability
            .monte_carlo
            .as_ref()
            .is_some_and(|mc| mc.truncated)
    }

    /// One label per audited prefix size in `ks`, in order.
    ///
    /// Warm sizes come from the cache; all cold sizes are generated by a
    /// single [`AnalysisPipeline::generate_sweep`] — the ranking and the rest
    /// of the analysis context are prepared at most once per call no matter
    /// how many sizes miss.
    ///
    /// # Errors
    /// Validation errors for the first invalid `k`, or pipeline errors.
    pub fn label_sweep(
        &self,
        table: &Arc<Table>,
        config: &Arc<LabelConfig>,
        ks: &[usize],
    ) -> LabelResult<Vec<CachedLabel>> {
        let configs: Vec<Arc<LabelConfig>> = ks
            .iter()
            .map(|&k| Arc::new(LabelConfig::clone(config).with_top_k(k)))
            .collect();
        // Fingerprint the table once (memoized) and every per-k config
        // outside the lock.
        let table_fingerprint = self.table_fingerprint(table);
        let keys: Vec<CacheKey> = configs
            .iter()
            .map(|config_k| CacheKey {
                table: table_fingerprint,
                config: config_k.fingerprint(),
            })
            .collect();
        let mut slots: Vec<Option<CachedLabel>> = {
            let mut cache = self.cache.lock().expect("label cache lock");
            keys.iter()
                .zip(&configs)
                .map(|(key, config_k)| cache.get(key, table, config_k))
                .collect()
        };
        let cold_ks: Vec<usize> = ks
            .iter()
            .zip(&slots)
            .filter(|(_, slot)| slot.is_none())
            .map(|(&k, _)| k)
            .collect();
        if !cold_ks.is_empty() {
            let generated =
                self.pipeline
                    .generate_sweep(Arc::clone(table), Arc::clone(config), &cold_ks)?;
            // Render every cold label's JSON before taking the lock: on the
            // Arc-shared server the lock gates every worker's lookup, and
            // serialization needs no cache state.
            let mut fresh = Vec::with_capacity(generated.len());
            for label in generated {
                fresh.push(CachedLabel {
                    json: Arc::new(label.to_json()?),
                    label: Arc::new(label),
                });
            }
            let mut cache = self.cache.lock().expect("label cache lock");
            let mut fresh = fresh.into_iter();
            for (key, slot) in keys.iter().zip(&mut slots) {
                if slot.is_none() {
                    let cached = fresh.next().expect("one label per cold k");
                    // Deadline-truncated labels are served but never cached
                    // (see `generate_uncoalesced`).
                    if !Self::is_truncated(&cached) {
                        cache.insert(*key, Arc::clone(table), cached.clone());
                    }
                    *slot = Some(cached);
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every k resolved"))
            .collect())
    }

    /// Counters: cache hits/misses/evictions/expiries/occupancy, the
    /// process-wide preparation count, and the scheduler's observability
    /// counters.  Served by the HTTP `/stats` endpoint.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.cache.lock().expect("label cache lock").stats(),
            preparations: AnalysisContext::preparations(),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            scheduler: self.pipeline.scheduler_stats(),
            monte_carlo: crate::pipeline::monte_carlo_runtime_stats(),
            network: None,
            admission: None,
            datasets: None,
            disk: self.disk.as_ref().map(|disk| disk.stats()),
        }
    }

    /// Drops every cached label (counters keep their history).
    ///
    /// This is the invalidation hook for mutable-catalog deployments: the
    /// server calls it whenever a dataset is uploaded into its catalogue, so
    /// a re-uploaded dataset name can never serve a label rendered from the
    /// old bytes through a stale catalogue path.  In-flight generations are
    /// unaffected — they publish to their own waiters and (re-)insert their
    /// result, which is still correct for the exact bytes they were keyed
    /// on (the cache is content-addressed).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("label cache lock").clear();
        // The disk tier is purged too — and `DiskStore::clear` first drains
        // its write-behind queue, so an upload can never race a queued fill
        // into surviving the invalidation.
        if let Some(disk) = &self.disk {
            disk.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    fn scenario() -> (Arc<Table>, Arc<LabelConfig>) {
        let n = 30usize;
        let table = Table::from_columns(vec![
            (
                "name",
                Column::from_strings((0..n).map(|i| format!("r{i}")).collect::<Vec<_>>()),
            ),
            (
                "score",
                Column::from_f64((0..n).map(|i| 60.0 - i as f64).collect()),
            ),
            (
                "grp",
                Column::from_strings(
                    (0..n)
                        .map(|i| if i % 3 == 0 { "x" } else { "y" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("score", 1.0)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(8)
            .with_sensitive_attribute("grp", ["x"])
            .with_diversity_attribute("grp");
        (Arc::new(table), Arc::new(config))
    }

    // Counter-based "no preparation on a warm hit" assertions live in the
    // cache-parity integration test, where the process-wide counter is not
    // shared with concurrently running sibling tests; here the per-service
    // hit/miss counters make the same point race-free.

    #[test]
    fn warm_hits_skip_preparation_and_match_cold_generation() {
        let (table, config) = scenario();
        let service = LabelService::new();
        let cold = service.label(&table, &config).unwrap();
        let warm = service.label(&table, &config).unwrap();
        assert_eq!(cold.json, warm.json);
        assert_eq!(cold.label, warm.label);
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn content_addressing_survives_table_rebuilds() {
        let (table, config) = scenario();
        let service = LabelService::new();
        service.label(&table, &config).unwrap();
        // A fresh Arc around an identical table is still a hit.
        let rebuilt = Arc::new((*table).clone());
        service.label(&rebuilt, &config).unwrap();
        assert_eq!(service.stats().cache.hits, 1);
        assert_eq!(service.stats().cache.misses, 1);
    }

    #[test]
    fn sweep_serves_warm_ks_from_cache_and_generates_the_rest() {
        let (table, config) = scenario();
        let service = LabelService::new();
        // Warm one of the three sizes.
        let five = Arc::new(LabelConfig::clone(&config).with_top_k(5));
        service.label(&table, &five).unwrap();
        let labels = service.label_sweep(&table, &config, &[5, 10, 20]).unwrap();
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[0].label.config.top_k, 5);
        assert_eq!(labels[2].label.top_k_rows.len(), 20);
        // k=5 was served from the cache, 10 and 20 were generated.
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 3); // initial cold 5, then cold 10 + 20
        assert_eq!(stats.cache.entries, 3);
        // The whole sweep is now warm and byte-stable.
        let again = service.label_sweep(&table, &config, &[5, 10, 20]).unwrap();
        assert_eq!(service.stats().cache.hits, 4);
        for (a, b) in labels.iter().zip(&again) {
            assert_eq!(a.json, b.json);
        }
    }

    #[test]
    fn concurrent_cold_misses_coalesce_onto_one_generation() {
        let (table, config) = scenario();
        let service = Arc::new(LabelService::new());
        let threads = 8usize;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = Arc::clone(&service);
                let table = Arc::clone(&table);
                let config = Arc::clone(&config);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service.label(&table, &config).unwrap()
                })
            })
            .collect();
        let labels: Vec<CachedLabel> = handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect();
        for label in &labels {
            assert_eq!(label.json, labels[0].json, "all requests share one result");
        }
        let stats = service.stats();
        // Every thread either hit the cache (arrived after the leader
        // finished), led, or coalesced — the books must balance.
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            threads as u64,
            "each thread checks the cache exactly once"
        );
        // The leader is the only thread that generated; with single-flight,
        // there is exactly one entry and no duplicated work visible in it.
        assert_eq!(stats.cache.entries, 1);
        assert_eq!(
            stats.coalesced,
            stats.cache.misses - 1,
            "every miss but the leader joined the in-flight slot"
        );
        // The in-flight map is drained once the burst resolves.
        assert!(service.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn coalesced_errors_fail_every_waiter_without_retrying() {
        let (table, config) = scenario();
        let bad = Arc::new(LabelConfig::clone(&config).with_top_k(500));
        let service = Arc::new(LabelService::new());
        let threads = 4usize;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = Arc::clone(&service);
                let table = Arc::clone(&table);
                let bad = Arc::clone(&bad);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service.label(&table, &bad)
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().unwrap().is_err());
        }
        assert_eq!(service.stats().cache.entries, 0);
        assert!(service.inflight.lock().unwrap().is_empty());
        // The service still generates fine afterwards.
        assert!(service.label(&table, &config).is_ok());
    }

    #[test]
    fn ttl_policy_expires_warm_labels_and_regenerates() {
        let (table, config) = scenario();
        let service = LabelService::with_cache_policy(
            AnalysisPipeline::sequential(),
            8,
            1 << 20,
            Some(std::time::Duration::from_millis(30)),
        );
        let first = service.label(&table, &config).unwrap();
        assert!(service.label(&table, &config).is_ok(), "young entry hits");
        std::thread::sleep(std::time::Duration::from_millis(50));
        let regenerated = service.label(&table, &config).unwrap();
        // Byte-identical content (generation is pure), but regenerated.
        assert_eq!(first.json, regenerated.json);
        let stats = service.stats();
        assert_eq!(stats.cache.expired, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 2);
        assert_eq!(stats.cache.ttl_millis, Some(30));
    }

    #[test]
    fn deadline_truncated_labels_are_served_but_never_cached() {
        // How far a truncated run gets depends on transient load, not on the
        // cache key — caching one busy moment's degraded label would serve
        // it forever.  Untruncated labels under the same deadline cache as
        // usual.
        let (table, config) = scenario();
        let service = LabelService::new();
        let truncating = Arc::new(
            LabelConfig::clone(&config)
                .with_monte_carlo_trials(256)
                .with_monte_carlo_deadline_millis(Some(0)),
        );
        let first = service.label(&table, &truncating).unwrap();
        assert!(
            first
                .label
                .stability
                .monte_carlo
                .as_ref()
                .unwrap()
                .truncated
        );
        let second = service.label(&table, &truncating).unwrap();
        // Deterministic wave truncation: regenerations agree byte for byte…
        assert_eq!(first.json, second.json);
        // …but nothing was cached, and both requests were misses.
        let stats = service.stats();
        assert_eq!(stats.cache.entries, 0);
        assert_eq!(stats.cache.hits, 0);
        assert_eq!(stats.cache.misses, 2);
        // A budget generous enough to finish caches normally.
        let generous =
            Arc::new(LabelConfig::clone(&config).with_monte_carlo_deadline_millis(Some(60_000)));
        let cached = service.label(&table, &generous).unwrap();
        assert!(
            !cached
                .label
                .stability
                .monte_carlo
                .as_ref()
                .unwrap()
                .truncated
        );
        assert_eq!(service.stats().cache.entries, 1);
        service.label(&table, &generous).unwrap();
        assert_eq!(service.stats().cache.hits, 1);
    }

    /// A unique scratch directory for disk-tier tests, removed on drop.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "rf-service-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn disk_service(dir: &std::path::Path, ttl: Option<std::time::Duration>) -> LabelService {
        LabelService::with_cache_policy(AnalysisPipeline::sequential(), 8, 1 << 20, ttl)
            .with_disk_tier(Arc::new(rf_store::DiskStore::open(dir, 1 << 20).unwrap()))
    }

    #[test]
    fn disk_tier_serves_a_fresh_service_byte_identically_with_zero_preparations() {
        let scratch = Scratch::new("restart");
        let (table, config) = scenario();
        let cold = {
            let service = disk_service(&scratch.0, None);
            let cold = service.label(&table, &config).unwrap();
            service.disk_store().unwrap().flush();
            cold
        };
        // "Restart": a brand-new service (empty memory tier) over the same
        // directory.  Its first request is a disk hit — no pipeline work.
        let service = disk_service(&scratch.0, None);
        let prepared_before = AnalysisContext::preparations();
        let warm = service.label(&table, &config).unwrap();
        assert_eq!(
            AnalysisContext::preparations(),
            prepared_before,
            "a disk hit performs zero preparations"
        );
        assert_eq!(warm.json, cold.json, "stored bytes served verbatim");
        assert_eq!(warm.label, cold.label, "label round-trips through JSON");
        let stats = service.stats();
        let disk = stats.disk.expect("disk tier attached");
        assert_eq!(disk.disk_hits, 1);
        assert_eq!(disk.promotions, 1);
        assert_eq!(stats.cache.misses, 1, "the memory tier missed");
        // The promotion warmed the memory tier: next request is a warm hit.
        service.label(&table, &config).unwrap();
        assert_eq!(service.stats().cache.hits, 1);
        assert_eq!(service.stats().disk.unwrap().disk_hits, 1);
    }

    #[test]
    fn ttl_expired_disk_entries_are_not_re_promoted() {
        let scratch = Scratch::new("ttl");
        let (table, config) = scenario();
        let ttl = Some(std::time::Duration::from_millis(60));
        let service = disk_service(&scratch.0, ttl);
        service.label(&table, &config).unwrap();
        service.disk_store().unwrap().flush();
        assert_eq!(service.stats().disk.unwrap().entries, 1);
        std::thread::sleep(std::time::Duration::from_millis(90));
        // Memory and disk both expired: the request regenerates — the disk
        // entry's persisted fill timestamp must not resurrect it.
        service.label(&table, &config).unwrap();
        let stats = service.stats();
        let disk = stats.disk.unwrap();
        assert_eq!(disk.disk_hits, 0, "an expired disk entry never serves");
        assert_eq!(disk.promotions, 0);
        assert_eq!(stats.cache.expired, 1);
        assert_eq!(stats.cache.misses, 2);
    }

    #[test]
    fn clear_cache_purges_the_disk_tier_too() {
        let scratch = Scratch::new("clear");
        let (table, config) = scenario();
        let service = disk_service(&scratch.0, None);
        service.label(&table, &config).unwrap();
        service.disk_store().unwrap().flush();
        assert_eq!(service.stats().disk.unwrap().entries, 1);
        service.clear_cache();
        let stats = service.stats();
        assert_eq!(stats.cache.entries, 0);
        assert_eq!(stats.disk.unwrap().entries, 0);
        // The next request is a full cold generation, not a disk hit.
        service.label(&table, &config).unwrap();
        let stats = service.stats();
        assert_eq!(stats.disk.unwrap().disk_hits, 0);
        assert_eq!(stats.cache.misses, 2);
    }

    #[test]
    fn stats_include_the_scheduler_counters() {
        let (table, config) = scenario();
        let pool = Arc::new(rf_runtime::ThreadPool::new(2));
        let service =
            LabelService::with_pipeline(AnalysisPipeline::with_pool(Arc::clone(&pool)), 8, 1 << 20);
        service.label(&table, &config).unwrap();
        let stats = service.stats();
        assert_eq!(stats.scheduler.workers, 2);
        assert!(
            stats.scheduler.executed_jobs > 0,
            "generation ran tasks on the dedicated scheduler"
        );
        assert_eq!(stats.scheduler.panicked_jobs, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let (table, config) = scenario();
        let service = LabelService::new();
        let bad = Arc::new((*config).clone().with_top_k(500));
        assert!(service.label(&table, &bad).is_err());
        assert_eq!(service.stats().cache.entries, 0);
        // The valid config still generates.
        assert!(service.label(&table, &config).is_ok());
    }
}
