//! Error type for label generation.

use std::fmt;

/// Result alias used throughout `rf-core`.
pub type LabelResult<T> = Result<T, LabelError>;

/// Errors produced while configuring or generating a nutritional label.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelError {
    /// The configuration is invalid (message explains which part).
    InvalidConfig {
        /// Description of the problem.
        message: String,
    },
    /// An underlying table error.
    Table(rf_table::TableError),
    /// An underlying ranking error.
    Ranking(rf_ranking::RankingError),
    /// An underlying fairness error.
    Fairness(rf_fairness::FairnessError),
    /// An underlying stability error.
    Stability(rf_stability::StabilityError),
    /// An underlying diversity error.
    Diversity(rf_diversity::DiversityError),
    /// An underlying statistics error.
    Stats(rf_stats::StatsError),
    /// Serialization of the label failed.
    Serialization {
        /// Description of the problem.
        message: String,
    },
    /// A pipeline job (widget builder or preparation shard) panicked on the
    /// worker pool.  The job's other siblings still completed; the name says
    /// exactly which stage failed.
    WidgetPanic {
        /// Name of the widget builder or preparation stage that panicked.
        widget: String,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::InvalidConfig { message } => {
                write!(f, "invalid label configuration: {message}")
            }
            LabelError::Table(err) => write!(f, "table error: {err}"),
            LabelError::Ranking(err) => write!(f, "ranking error: {err}"),
            LabelError::Fairness(err) => write!(f, "fairness error: {err}"),
            LabelError::Stability(err) => write!(f, "stability error: {err}"),
            LabelError::Diversity(err) => write!(f, "diversity error: {err}"),
            LabelError::Stats(err) => write!(f, "statistics error: {err}"),
            LabelError::Serialization { message } => {
                write!(f, "cannot serialize label: {message}")
            }
            LabelError::WidgetPanic { widget } => {
                write!(f, "pipeline job `{widget}` panicked")
            }
        }
    }
}

impl std::error::Error for LabelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabelError::Table(err) => Some(err),
            LabelError::Ranking(err) => Some(err),
            LabelError::Fairness(err) => Some(err),
            LabelError::Stability(err) => Some(err),
            LabelError::Diversity(err) => Some(err),
            LabelError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for LabelError {
            fn from(err: $ty) -> Self {
                LabelError::$variant(err)
            }
        }
    };
}

impl_from!(Table, rf_table::TableError);
impl_from!(Ranking, rf_ranking::RankingError);
impl_from!(Fairness, rf_fairness::FairnessError);
impl_from!(Stability, rf_stability::StabilityError);
impl_from!(Diversity, rf_diversity::DiversityError);
impl_from!(Stats, rf_stats::StatsError);

impl From<serde_json::Error> for LabelError {
    fn from(err: serde_json::Error) -> Self {
        LabelError::Serialization {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let err = LabelError::InvalidConfig {
            message: "top_k must be positive".to_string(),
        };
        assert!(err.to_string().contains("top_k"));
        assert!(err.source().is_none());

        let err: LabelError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("table error"));
    }

    #[test]
    fn all_substrate_errors_convert() {
        let _: LabelError = rf_ranking::RankingError::EmptyRanking.into();
        let _: LabelError =
            rf_fairness::FairnessError::DegenerateGroup { which: "protected" }.into();
        let _: LabelError = rf_stability::StabilityError::TooFewItems {
            available: 0,
            required: 2,
        }
        .into();
        let _: LabelError = rf_diversity::DiversityError::InvalidK { k: 0, n: 0 }.into();
        let _: LabelError = rf_stats::StatsError::EmptyInput { operation: "x" }.into();
    }
}
