//! # rf-core — Ranking Facts
//!
//! The primary contribution of *"A Nutritional Label for Rankings"*
//! (Yang, Stoyanovich, Asudeh, Howe, Jagadish, Miklau — SIGMOD 2018):
//! a **nutritional label** that explains a score-based ranking to its
//! consumers, "with appropriately summarized information regarding the
//! ranking process".
//!
//! The label is "made up of a collection of visual widgets.  Each widget
//! addresses an essential aspect of transparency and interpretability"
//! (paper §1).  This crate assembles the six widgets of Figure 1 from the
//! measure crates of this workspace and renders the result:
//!
//! | Widget | Paper section | Backing crate |
//! |---|---|---|
//! | Recipe | §2.1 | `rf-ranking` (the scoring function itself) |
//! | Ingredients | §2.1 | `rf-stats` correlation / regression |
//! | Stability (+ detail, Figure 2) | §2.2 | `rf-stability` |
//! | Fairness (FA*IR, Pairwise, Proportion) | §2.3 | `rf-fairness` |
//! | Diversity | §2.4 | `rf-diversity` |
//!
//! ## Quickstart
//!
//! ```
//! use rf_core::{LabelConfig, NutritionalLabel};
//! use rf_ranking::ScoringFunction;
//! use rf_table::{Column, Table};
//!
//! // A small dataset of departments.
//! let table = Table::from_columns(vec![
//!     ("Dept", Column::from_strings(["A", "B", "C", "D", "E", "F"])),
//!     ("PubCount", Column::from_f64(vec![9.0, 7.5, 6.0, 3.0, 2.0, 1.0])),
//!     ("Faculty", Column::from_i64(vec![60, 55, 40, 20, 15, 10])),
//!     ("Size", Column::from_strings(["large", "large", "large", "small", "small", "small"])),
//! ]).unwrap();
//!
//! // The "Recipe": a weighted scoring function.
//! let scoring = ScoringFunction::from_pairs([("PubCount", 0.7), ("Faculty", 0.3)]).unwrap();
//!
//! // Label configuration: top-3, fairness w.r.t. Size=small, diversity over Size.
//! let config = LabelConfig::new(scoring)
//!     .with_top_k(3)
//!     .with_sensitive_attribute("Size", ["small"])
//!     .with_diversity_attribute("Size");
//!
//! let label = NutritionalLabel::generate(&table, &config).unwrap();
//! assert_eq!(label.ranking.top_k(3).len(), 3);
//! println!("{}", label.to_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod design;
pub mod error;
pub mod label;
pub mod mitigation;
pub mod pipeline;
pub mod render;
pub mod service;
pub mod widgets;

pub use cache::{CacheKey, CacheStats, CachedLabel, LabelCache};
pub use config::{LabelConfig, MonteCarloConfig, SensitiveAttribute};
pub use design::{AttributePreview, DesignView};
pub use error::{LabelError, LabelResult};
pub use label::NutritionalLabel;
pub use mitigation::{MitigationSearch, MitigationSuggestion};
pub use pipeline::{
    monte_carlo_runtime_stats, AnalysisContext, AnalysisPipeline, FairnessMeasurePart,
    MonteCarloRuntimeStats, WidgetBuilder, WidgetOutput,
};
pub use render::{render_html, render_json, render_text};
pub use service::{
    AdmissionStats, DatasetTableStats, LabelService, NetworkStats, ReactorCounters, ServiceStats,
};
pub use widgets::diversity::DiversityWidget;
pub use widgets::fairness::FairnessWidget;
pub use widgets::ingredients::{IngredientsMethod, IngredientsWidget};
pub use widgets::recipe::RecipeWidget;
pub use widgets::stability::StabilityWidget;
