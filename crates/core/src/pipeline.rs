//! The parallel label-generation pipeline.
//!
//! [`NutritionalLabel::generate`](crate::NutritionalLabel::generate) used to
//! build its six widgets strictly one after another, and every widget
//! re-derived whatever intermediates it needed from the raw table.  This
//! module restructures that into two explicit phases, the way
//! shared-intermediate engines stage work once instead of recomputing it per
//! operator:
//!
//! 1. **Prepare** ([`AnalysisPipeline::prepare`]) — an [`AnalysisContext`]
//!    computes the shared intermediates exactly once: the ranking induced by
//!    the Recipe, the min-max-normalized score matrix of the scoring
//!    attributes (in rank order, for the Stability widget), and the
//!    protected-group membership vectors (for the Fairness widget).  Under
//!    the parallel schedule, preparation itself fans out over the shared
//!    `rf-runtime` work-stealing scheduler: row scoring is sharded with
//!    [`rf_runtime::Scheduler::map_shards`] (deterministic shard merge, so
//!    the scores are byte-identical to a single sequential pass) and each
//!    protected group extracts as its own job.
//! 2. **Render** ([`AnalysisPipeline::render`]) — each widget is a
//!    [`WidgetBuilder`] reading the immutable context; the pipeline schedules
//!    all builders concurrently as a scheduler scope (or serially, for the
//!    reference path the parity tests compare against).  Fairness fans out
//!    one job per `(protected feature, measure)` pair, and the Stability
//!    builder opens a **nested scope** of its own: one task per Monte-Carlo
//!    trial, each on its derived ChaCha stream (`seed ⊕ trial`).  Nested
//!    scopes cannot deadlock — a blocked waiter helps run queued tasks —
//!    which is what lets the paper's most expensive diagnostic live on the
//!    label hot path.
//!
//! Because preparation does not depend on the audited prefix size,
//! [`AnalysisPipeline::generate_sweep`] amortizes one preparation across a
//! whole sweep of `k` values — the ranking is computed once and re-rendered
//! per `k`.
//!
//! Both schedules consume identical inputs in identical order, so their
//! outputs are byte-identical after JSON rendering — asserted by
//! `tests/integration_pipeline_parity.rs`.

use crate::config::LabelConfig;
use crate::error::{LabelError, LabelResult};
use crate::label::{NutritionalLabel, RankedRow};
use crate::widgets::diversity::DiversityWidget;
use crate::widgets::fairness::FairnessWidget;
use crate::widgets::ingredients::IngredientsWidget;
use crate::widgets::recipe::RecipeWidget;
use crate::widgets::stability::StabilityWidget;
use rf_fairness::report::{FairnessConfig, FairnessReport};
use rf_fairness::{
    DiscountedMeasures, FairStarOutcome, PairwiseOutcome, ProportionOutcome, ProtectedGroup,
};
use rf_ranking::Ranking;
use rf_table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of analysis-context preparations.  The label cache's
/// contract is that a warm hit performs *no* preparation; this counter is how
/// the tests verify it.
static PREPARATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide Monte-Carlo observability: estimator runs on the label hot
/// path, trials actually performed, and runs truncated by their deadline
/// budget.  Served (with the cache and scheduler counters) by `/stats`.
static MC_RUNS: AtomicU64 = AtomicU64::new(0);
static MC_TRIALS_COMPLETED: AtomicU64 = AtomicU64::new(0);
static MC_TRUNCATED: AtomicU64 = AtomicU64::new(0);
static MC_RELAXED_RUNS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide Monte-Carlo stability
/// counters, exposed through `ServiceStats` and the HTTP `/stats` endpoint
/// so deployments can watch how often the deadline budget bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloRuntimeStats {
    /// Estimator runs performed (one per label generation with trials > 0).
    pub runs: u64,
    /// Trials actually performed across all runs.
    pub trials_completed: u64,
    /// Runs that stopped early on their wall-clock deadline budget.
    pub truncated: u64,
    /// Runs performed with relaxed float mode enabled.
    #[serde(default)]
    pub relaxed_runs: u64,
}

/// The process-wide Monte-Carlo counters (any pipeline, any schedule).
#[must_use]
pub fn monte_carlo_runtime_stats() -> MonteCarloRuntimeStats {
    MonteCarloRuntimeStats {
        runs: MC_RUNS.load(Ordering::Relaxed),
        trials_completed: MC_TRIALS_COMPLETED.load(Ordering::Relaxed),
        truncated: MC_TRUNCATED.load(Ordering::Relaxed),
        relaxed_runs: MC_RELAXED_RUNS.load(Ordering::Relaxed),
    }
}

/// The shared, immutable state every widget builder reads.
///
/// Prepared once per label: widgets never touch the raw table for anything
/// the context already derived.
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    /// The dataset being labelled.
    pub table: Arc<Table>,
    /// The label configuration.
    pub config: Arc<LabelConfig>,
    /// The full ranking induced by the Recipe — computed once.
    pub ranking: Ranking,
    /// Protected-group membership vectors, one per audited
    /// `(attribute, protected value)` pair, in configuration order.
    pub protected_groups: Vec<ProtectedGroup>,
    /// Min-max-normalized values of every scoring attribute in rank order
    /// (the Stability widget's input matrix).
    pub normalized_scoring: Vec<(String, Vec<f64>)>,
}

impl AnalysisContext {
    /// Validates the configuration and computes every shared intermediate on
    /// the calling thread — the sequential reference the sharded preparation
    /// is compared against.
    ///
    /// # Errors
    /// Configuration validation errors, ranking errors, fairness group
    /// extraction errors, or stability normalization errors.
    pub fn prepare(table: Arc<Table>, config: Arc<LabelConfig>) -> LabelResult<Self> {
        PREPARATIONS.fetch_add(1, Ordering::Relaxed);
        config.validate(&table)?;
        let ranking = config.scoring.rank_table(&table)?;
        let mut protected_groups = Vec::new();
        for (attribute, protected_value) in config.protected_features() {
            protected_groups.push(ProtectedGroup::from_table(
                &table,
                attribute,
                protected_value,
            )?);
        }
        let normalized_scoring =
            rf_stability::normalized_values_in_rank_order(&table, &config.scoring, &ranking)?;
        Ok(AnalysisContext {
            table,
            config,
            ranking,
            protected_groups,
            normalized_scoring,
        })
    }

    /// Validates the configuration and computes the shared intermediates with
    /// the expensive row-wise work fanned out over `pool`: scoring runs as
    /// row shards (merged deterministically in shard order, so the resulting
    /// ranking is byte-identical to [`AnalysisContext::prepare`]) and each
    /// protected group extracts as its own job.  Errors surface in the same
    /// order the sequential path reports them.
    ///
    /// # Errors
    /// Same as [`AnalysisContext::prepare`], plus
    /// [`LabelError::WidgetPanic`] naming the preparation stage when a shard
    /// or group job panics on the pool.
    pub fn prepare_with_pool(
        table: Arc<Table>,
        config: Arc<LabelConfig>,
        pool: &rf_runtime::ThreadPool,
    ) -> LabelResult<Self> {
        PREPARATIONS.fetch_add(1, Ordering::Relaxed);
        config.validate(&table)?;

        // Row-shard scoring: fit once, score disjoint ranges as a scheduler
        // scope, merge in shard order.  Scanning shards in order also
        // surfaces the first failing row exactly like the sequential pass
        // does.
        let scheduler = pool.scheduler();
        let model = Arc::new(config.scoring.fit(&table)?);
        let rows = model.rows();
        let shard_results = {
            let model = Arc::clone(&model);
            scheduler.map_shards(rows, 0, move |range| model.score_range(range))
        };
        let mut scores: Vec<f64> = Vec::with_capacity(rows);
        for (shard, slot) in shard_results.into_iter().enumerate() {
            match slot {
                Some(Ok(chunk)) => scores.extend(chunk),
                Some(Err(err)) => return Err(err.into()),
                None => {
                    return Err(LabelError::WidgetPanic {
                        widget: format!("scoring shard {shard}"),
                    })
                }
            }
        }
        let ranking = Ranking::from_scores(&scores)?;

        // Group extraction: one job per audited protected feature, results
        // (and errors) consumed in configuration order.
        let features: Vec<(String, String)> = config
            .protected_features()
            .into_iter()
            .map(|(attribute, value)| (attribute.to_string(), value.to_string()))
            .collect();
        let group_jobs: Vec<_> = features
            .iter()
            .map(|(attribute, value)| {
                let table = Arc::clone(&table);
                let attribute = attribute.clone();
                let value = value.clone();
                move || ProtectedGroup::from_table(&table, &attribute, &value)
            })
            .collect();
        let mut protected_groups = Vec::with_capacity(features.len());
        for (slot, (attribute, value)) in scheduler.run_all(group_jobs).into_iter().zip(features) {
            match slot {
                Some(Ok(group)) => protected_groups.push(group),
                Some(Err(err)) => return Err(err.into()),
                None => {
                    return Err(LabelError::WidgetPanic {
                        widget: format!("fairness group `{attribute}={value}`"),
                    })
                }
            }
        }

        let normalized_scoring =
            rf_stability::normalized_values_in_rank_order(&table, &config.scoring, &ranking)?;
        Ok(AnalysisContext {
            table,
            config,
            ranking,
            protected_groups,
            normalized_scoring,
        })
    }

    /// A context for the same table reusing every prepared intermediate under
    /// a different configuration.
    ///
    /// The shared intermediates depend only on the scoring function and the
    /// sensitive attributes, so `config` must agree with the original on
    /// those; everything else (`top_k`, `alpha`, thresholds, ingredient
    /// settings, dataset name) may differ.  This is what lets
    /// [`AnalysisPipeline::generate_sweep`] rank once and render per `k`.
    ///
    /// # Errors
    /// [`LabelError::InvalidConfig`] when `config` changes the scoring
    /// function or the sensitive attributes — rendering those against the
    /// old intermediates would produce a self-inconsistent label.
    pub fn with_config(&self, config: Arc<LabelConfig>) -> LabelResult<Self> {
        if self.config.scoring != config.scoring {
            return Err(LabelError::InvalidConfig {
                message: "with_config requires an identical scoring function; \
                          a new recipe needs a fresh preparation"
                    .to_string(),
            });
        }
        if self.config.sensitive_attributes != config.sensitive_attributes {
            return Err(LabelError::InvalidConfig {
                message: "with_config requires identical sensitive attributes; \
                          new protected features need a fresh preparation"
                    .to_string(),
            });
        }
        Ok(AnalysisContext {
            table: Arc::clone(&self.table),
            config,
            ranking: self.ranking.clone(),
            protected_groups: self.protected_groups.clone(),
            normalized_scoring: self.normalized_scoring.clone(),
        })
    }

    /// The audited prefix size.
    #[must_use]
    pub fn top_k(&self) -> usize {
        self.config.top_k
    }

    /// Process-wide count of analysis-context preparations (any schedule).
    ///
    /// Monotonically increasing; tests diff it around an operation to prove
    /// the operation prepared (or, for a warm cache hit, did not prepare) a
    /// context.
    #[must_use]
    pub fn preparations() -> u64 {
        PREPARATIONS.load(Ordering::Relaxed)
    }
}

/// One fairness measure's outcome for one protected feature — the unit of
/// fairness parallelism.  The assembler recombines four parts per feature
/// into the [`FairnessReport`] the widget renders.
#[derive(Debug, Clone)]
pub enum FairnessMeasurePart {
    /// The FA*IR ranked group fairness test.
    FairStar(FairStarOutcome),
    /// The pairwise preference measure.
    Pairwise(PairwiseOutcome),
    /// The proportion (statistical parity at top-k) test.
    Proportion(ProportionOutcome),
    /// The position-discounted measures (rND / rKL / rRD).
    Discounted(DiscountedMeasures),
}

/// One widget of the label, produced by a [`WidgetBuilder`].
#[derive(Debug, Clone)]
pub enum WidgetOutput {
    /// The Recipe widget.
    Recipe(RecipeWidget),
    /// The Ingredients widget.
    Ingredients(IngredientsWidget),
    /// The Stability widget.
    Stability(StabilityWidget),
    /// One fairness measure of one protected feature (by configuration
    /// index); assembled into per-feature reports in configuration order.
    FairnessMeasure {
        /// Index of the protected feature in configuration order.
        feature: usize,
        /// The measure's outcome.
        part: FairnessMeasurePart,
    },
    /// The Diversity widget.
    Diversity(DiversityWidget),
    /// The display rows for the top-k prefix.
    TopRows(Vec<RankedRow>),
}

/// A unit of label construction that can run on the shared pool.
///
/// Implementations must be pure functions of the [`AnalysisContext`]: the
/// pipeline gives no ordering guarantees between builders, and the parity
/// suite asserts the parallel and sequential schedules agree.
pub trait WidgetBuilder: Send + Sync {
    /// Name used in diagnostics (e.g. [`LabelError::WidgetPanic`]).
    fn name(&self) -> String;

    /// Builds this widget from the shared context.
    ///
    /// # Errors
    /// Widget-specific construction errors.
    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput>;
}

struct RecipeBuilder;

impl WidgetBuilder for RecipeBuilder {
    fn name(&self) -> String {
        "recipe".to_string()
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        RecipeWidget::build(&ctx.table, &ctx.config.scoring, &ctx.ranking, ctx.top_k())
            .map(WidgetOutput::Recipe)
    }
}

struct IngredientsBuilder;

impl WidgetBuilder for IngredientsBuilder {
    fn name(&self) -> String {
        "ingredients".to_string()
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        let recipe_attribute_names: Vec<&str> = ctx.config.scoring.attribute_names();
        IngredientsWidget::build_with_method(
            &ctx.table,
            &ctx.ranking,
            &recipe_attribute_names,
            ctx.top_k(),
            ctx.config.ingredient_count,
            ctx.config.ingredients_method,
        )
        .map(WidgetOutput::Ingredients)
    }
}

/// Builds the Stability widget, including the Monte-Carlo uncertainty detail
/// on the label hot path.
///
/// Under the parallel schedule the builder holds the scheduler it is itself
/// running on and fans the estimator out in **adaptive batches** —
/// `ceil(trials / (workers × f))` trials per scheduler task, per-worker
/// scratch reused across each batch — inside a nested scope; the builder's
/// blocking wait helps run its own trial batches, so this nests safely at
/// any worker count.  Each trial draws from its derived ChaCha stream
/// (`seed ⊕ trial`), keeping the batched summary byte-identical to the
/// sequential reference at any batch size.  The configuration's
/// `monte_carlo.deadline_millis` caps the estimator's wall clock: past the
/// budget no further batch wave launches and the widget reports the
/// truncated trial count.  (The sequential reference schedule ignores the
/// deadline — it exists to compare against, not to race.)
struct StabilityBuilder {
    /// Scheduler the Monte-Carlo trial batches fan out on; `None` runs the
    /// sequential reference estimator (the reference schedule).
    scheduler: Option<Arc<rf_runtime::Scheduler>>,
}

impl WidgetBuilder for StabilityBuilder {
    fn name(&self) -> String {
        "stability".to_string()
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        let widget = StabilityWidget::build_from_normalized(
            &ctx.config.scoring,
            &ctx.normalized_scoring,
            &ctx.ranking,
            ctx.top_k(),
            ctx.config.stability_threshold,
        )?;
        let mc = &ctx.config.monte_carlo;
        let monte_carlo = if mc.trials == 0 {
            None
        } else {
            let estimator = rf_stability::MonteCarloStability::new()
                .with_trials(mc.trials)?
                .with_noise(mc.data_noise, mc.weight_noise)?
                .with_seed(mc.seed)
                .with_k(ctx.top_k())
                .with_relaxed_fp(mc.relaxed_fp);
            let trials_started = std::time::Instant::now();
            let summary = match &self.scheduler {
                Some(scheduler) => estimator.evaluate_batched(
                    scheduler,
                    &ctx.table,
                    &ctx.config.scoring,
                    &ctx.ranking,
                    mc.deadline_millis.map(std::time::Duration::from_millis),
                )?,
                None => estimator.evaluate(&ctx.table, &ctx.config.scoring, &ctx.ranking)?,
            };
            note_stage(rf_obs::Stage::McTrials, trials_started.elapsed());
            MC_RUNS.fetch_add(1, Ordering::Relaxed);
            MC_TRIALS_COMPLETED.fetch_add(summary.trials as u64, Ordering::Relaxed);
            if mc.relaxed_fp {
                MC_RELAXED_RUNS.fetch_add(1, Ordering::Relaxed);
            }
            if summary.truncated {
                MC_TRUNCATED.fetch_add(1, Ordering::Relaxed);
                rf_obs::with_active(|span| span.set_truncated(true));
            }
            Some(summary)
        };
        Ok(WidgetOutput::Stability(
            widget.with_monte_carlo(monte_carlo),
        ))
    }
}

/// The fairness measures evaluated per protected feature, in the order
/// [`FairnessReport::evaluate`] computes them (also the error-report order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FairnessMeasureKind {
    FairStar,
    Pairwise,
    Proportion,
    Discounted,
}

impl FairnessMeasureKind {
    const ALL: [FairnessMeasureKind; 4] = [
        FairnessMeasureKind::FairStar,
        FairnessMeasureKind::Pairwise,
        FairnessMeasureKind::Proportion,
        FairnessMeasureKind::Discounted,
    ];

    fn label(self) -> &'static str {
        match self {
            FairnessMeasureKind::FairStar => "FA*IR",
            FairnessMeasureKind::Pairwise => "pairwise",
            FairnessMeasureKind::Proportion => "proportion",
            FairnessMeasureKind::Discounted => "discounted",
        }
    }
}

/// One job per `(protected feature, fairness measure)` pair, so the measures
/// of every audited feature evaluate concurrently (the paper's COMPAS
/// scenario audits two features — eight jobs instead of two).
struct FairnessMeasureBuilder {
    index: usize,
    kind: FairnessMeasureKind,
}

impl WidgetBuilder for FairnessMeasureBuilder {
    fn name(&self) -> String {
        format!("fairness[{}]:{}", self.index, self.kind.label())
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        // The same per-measure helpers `FairnessReport::evaluate` is built
        // from, so the parallel fan-out can never drift from the reference
        // construction in rf-fairness.
        let group = &ctx.protected_groups[self.index];
        let fairness_config = FairnessConfig {
            k: ctx.config.top_k,
            alpha: ctx.config.alpha,
        };
        let part = match self.kind {
            FairnessMeasureKind::FairStar => FairnessMeasurePart::FairStar(
                FairnessReport::evaluate_fair_star(group, &ctx.ranking, &fairness_config)?,
            ),
            FairnessMeasureKind::Pairwise => FairnessMeasurePart::Pairwise(
                FairnessReport::evaluate_pairwise(group, &ctx.ranking, &fairness_config)?,
            ),
            FairnessMeasureKind::Proportion => FairnessMeasurePart::Proportion(
                FairnessReport::evaluate_proportion(group, &ctx.ranking, &fairness_config)?,
            ),
            FairnessMeasureKind::Discounted => FairnessMeasurePart::Discounted(
                FairnessReport::evaluate_discounted(group, &ctx.ranking)?,
            ),
        };
        Ok(WidgetOutput::FairnessMeasure {
            feature: self.index,
            part,
        })
    }
}

struct DiversityBuilder;

impl WidgetBuilder for DiversityBuilder {
    fn name(&self) -> String {
        "diversity".to_string()
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        DiversityWidget::build(&ctx.table, &ctx.ranking, &ctx.config).map(WidgetOutput::Diversity)
    }
}

struct TopRowsBuilder;

impl WidgetBuilder for TopRowsBuilder {
    fn name(&self) -> String {
        "top-rows".to_string()
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        Ok(WidgetOutput::TopRows(NutritionalLabel::top_k_rows(
            &ctx.table,
            &ctx.ranking,
            ctx.top_k(),
        )))
    }
}

/// The builders of the complete label, in the label's widget order (also the
/// order errors are reported in, regardless of schedule).  Fairness fans out
/// one job per `(protected feature, measure)` pair, feature-major in
/// configuration order, measures in report order.  `mc_scheduler` is the
/// scheduler the Stability widget's Monte-Carlo trials nest onto (`None`
/// runs the sequential reference estimator).
fn builders(
    ctx: &AnalysisContext,
    mc_scheduler: Option<Arc<rf_runtime::Scheduler>>,
) -> Vec<Box<dyn WidgetBuilder>> {
    let mut list: Vec<Box<dyn WidgetBuilder>> = vec![
        Box::new(RecipeBuilder),
        Box::new(IngredientsBuilder),
        Box::new(StabilityBuilder {
            scheduler: mc_scheduler,
        }),
    ];
    for index in 0..ctx.protected_groups.len() {
        for kind in FairnessMeasureKind::ALL {
            list.push(Box::new(FairnessMeasureBuilder { index, kind }));
        }
    }
    list.push(Box::new(DiversityBuilder));
    list.push(Box::new(TopRowsBuilder));
    list
}

/// Records a stage timing into the process-wide service-side histograms and
/// into the current request's span, when one is active on this thread.  The
/// two sinks serve different readers: the histograms feed `/metrics`
/// aggregates, the span feeds the per-request `/debug/slow` trace.
pub(crate) fn note_stage(stage: rf_obs::Stage, elapsed: std::time::Duration) {
    rf_obs::service_stages().record(stage, elapsed);
    rf_obs::with_active(|span| span.record(stage, elapsed));
}

/// How the pipeline schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Fan out across the shared `rf-runtime` pool (the default).
    Parallel,
    /// Prepare and build one step after another on the calling thread — the
    /// reference path the parity tests compare against.
    Sequential,
}

/// Generates nutritional labels by fanning preparation shards and widget
/// builders out over the shared [`rf_runtime`] pool.
#[derive(Debug, Clone)]
pub struct AnalysisPipeline {
    schedule: Schedule,
    pool: Option<Arc<rf_runtime::ThreadPool>>,
}

impl Default for AnalysisPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisPipeline {
    /// A pipeline scheduling work concurrently on the process-wide pool.
    #[must_use]
    pub fn new() -> Self {
        AnalysisPipeline {
            schedule: Schedule::Parallel,
            pool: None,
        }
    }

    /// A pipeline scheduling work concurrently on a dedicated pool.
    #[must_use]
    pub fn with_pool(pool: Arc<rf_runtime::ThreadPool>) -> Self {
        AnalysisPipeline {
            schedule: Schedule::Parallel,
            pool: Some(pool),
        }
    }

    /// The single-threaded reference pipeline: identical inputs, identical
    /// outputs, no concurrency.  Used by the parity tests and available
    /// wherever determinism is easier to reason about serially.
    #[must_use]
    pub fn sequential() -> Self {
        AnalysisPipeline {
            schedule: Schedule::Sequential,
            pool: None,
        }
    }

    fn pool_ref(&self) -> &rf_runtime::ThreadPool {
        match &self.pool {
            Some(pool) => pool,
            None => rf_runtime::global(),
        }
    }

    /// Observability counters of the scheduler this pipeline fans out on
    /// (queue depth, steals, executed and panicked tasks) — surfaced by the
    /// HTTP `/stats` endpoint.
    #[must_use]
    pub fn scheduler_stats(&self) -> rf_runtime::SchedulerStats {
        self.pool_ref().scheduler().stats()
    }

    /// **Stage 1** — validates the configuration and computes the shared
    /// intermediates (ranking, protected groups, normalized score matrix),
    /// sharded over the pool under the parallel schedule.
    ///
    /// # Errors
    /// Validation, ranking, group extraction, or normalization errors;
    /// [`LabelError::WidgetPanic`] when a preparation job panics.
    pub fn prepare(
        &self,
        table: Arc<Table>,
        config: Arc<LabelConfig>,
    ) -> LabelResult<Arc<AnalysisContext>> {
        let started = std::time::Instant::now();
        let ctx = match self.schedule {
            Schedule::Sequential => AnalysisContext::prepare(table, config)?,
            Schedule::Parallel => {
                AnalysisContext::prepare_with_pool(table, config, self.pool_ref())?
            }
        };
        note_stage(rf_obs::Stage::Prepare, started.elapsed());
        Ok(Arc::new(ctx))
    }

    /// **Stage 2** — builds every widget from a prepared context and
    /// assembles the label.  Performs no context preparation; rendering the
    /// same context twice is byte-identical.
    ///
    /// # Errors
    /// The first widget error in label order, or
    /// [`LabelError::WidgetPanic`] when a builder panics on the pool.
    pub fn render(&self, ctx: &Arc<AnalysisContext>) -> LabelResult<NutritionalLabel> {
        let started = std::time::Instant::now();
        let mc_scheduler = match self.schedule {
            Schedule::Sequential => None,
            Schedule::Parallel => Some(Arc::clone(self.pool_ref().scheduler())),
        };
        let outputs = self.run_builders(ctx, builders(ctx, mc_scheduler))?;
        let label = Self::assemble(ctx, outputs);
        note_stage(rf_obs::Stage::Render, started.elapsed());
        Ok(label)
    }

    /// Generates the complete label for `table` under `config`:
    /// [`prepare`](Self::prepare) followed by [`render`](Self::render).
    ///
    /// Sharing is by `Arc` so jobs can cross the pool without copying the
    /// dataset; callers holding plain values can use
    /// [`NutritionalLabel::generate`], which wraps them.
    ///
    /// # Errors
    /// Context preparation errors or the first widget error in label order.
    pub fn generate(
        &self,
        table: Arc<Table>,
        config: Arc<LabelConfig>,
    ) -> LabelResult<NutritionalLabel> {
        let ctx = self.prepare(table, config)?;
        self.render(&ctx)
    }

    /// Generates one label per audited prefix size in `ks`, preparing the
    /// analysis context (and therefore the ranking) **exactly once**.
    ///
    /// The shared intermediates do not depend on `top_k`, so the sweep is
    /// byte-identical to `ks.len()` independent [`generate`](Self::generate)
    /// calls at a fraction of the cost — the "batch configs sharing a table"
    /// item of the roadmap.  Labels come back in `ks` order.
    ///
    /// # Errors
    /// Validation errors for the first invalid `k` (checked up front, in
    /// order), preparation errors, or widget errors per rendered label.
    pub fn generate_sweep(
        &self,
        table: Arc<Table>,
        config: Arc<LabelConfig>,
        ks: &[usize],
    ) -> LabelResult<Vec<NutritionalLabel>> {
        if ks.is_empty() {
            return Ok(Vec::new());
        }
        let mut configs = Vec::with_capacity(ks.len());
        for &k in ks {
            let config_k = Arc::new((*config).clone().with_top_k(k));
            config_k.validate(&table)?;
            configs.push(config_k);
        }
        let ctx = self.prepare(Arc::clone(&table), Arc::clone(&configs[0]))?;
        let mut labels = Vec::with_capacity(configs.len());
        for config_k in configs {
            let ctx_k = Arc::new(ctx.with_config(config_k)?);
            labels.push(self.render(&ctx_k)?);
        }
        Ok(labels)
    }

    /// Runs the given builders under the pipeline's schedule, surfacing
    /// results (or the first error) in builder order so the parallel schedule
    /// reports exactly what the sequential one would.  A builder that panics
    /// on the pool surfaces as [`LabelError::WidgetPanic`] naming it.
    fn run_builders(
        &self,
        ctx: &Arc<AnalysisContext>,
        list: Vec<Box<dyn WidgetBuilder>>,
    ) -> LabelResult<Vec<WidgetOutput>> {
        match self.schedule {
            Schedule::Sequential => {
                let mut outputs = Vec::with_capacity(list.len());
                for builder in list {
                    outputs.push(builder.build(ctx)?);
                }
                Ok(outputs)
            }
            Schedule::Parallel => {
                let scheduler = self.pool_ref().scheduler();
                let names: Vec<String> = list.iter().map(|b| b.name()).collect();
                // Builders run on pool worker threads; carry the request's
                // active span across so widget-level stage timings (the
                // Monte-Carlo trials, truncation) still attribute to it.
                let span = rf_obs::current();
                let jobs: Vec<_> = list
                    .into_iter()
                    .map(|builder| {
                        let ctx = Arc::clone(ctx);
                        let span = span.clone();
                        move || {
                            let _active = span.map(rf_obs::activate);
                            builder.build(&ctx)
                        }
                    })
                    .collect();
                let raw = scheduler.run_all(jobs);
                let mut outputs = Vec::with_capacity(raw.len());
                for (slot, name) in raw.into_iter().zip(names) {
                    match slot {
                        Some(result) => outputs.push(result?),
                        None => return Err(LabelError::WidgetPanic { widget: name }),
                    }
                }
                Ok(outputs)
            }
        }
    }

    fn assemble(ctx: &Arc<AnalysisContext>, outputs: Vec<WidgetOutput>) -> NutritionalLabel {
        let feature_count = ctx.protected_groups.len();
        let mut recipe = None;
        let mut ingredients = None;
        let mut stability = None;
        let mut fair_star: Vec<Option<FairStarOutcome>> = vec![None; feature_count];
        let mut pairwise: Vec<Option<PairwiseOutcome>> = vec![None; feature_count];
        let mut proportion: Vec<Option<ProportionOutcome>> = vec![None; feature_count];
        let mut discounted: Vec<Option<DiscountedMeasures>> = vec![None; feature_count];
        let mut diversity = None;
        let mut top_k_rows = None;
        for output in outputs {
            match output {
                WidgetOutput::Recipe(widget) => recipe = Some(widget),
                WidgetOutput::Ingredients(widget) => ingredients = Some(widget),
                WidgetOutput::Stability(widget) => stability = Some(widget),
                // Measures arrive in arbitrary completion order but slot into
                // their feature's position, so reports assemble in
                // configuration order regardless of schedule.
                WidgetOutput::FairnessMeasure { feature, part } => match part {
                    FairnessMeasurePart::FairStar(outcome) => fair_star[feature] = Some(outcome),
                    FairnessMeasurePart::Pairwise(outcome) => pairwise[feature] = Some(outcome),
                    FairnessMeasurePart::Proportion(outcome) => proportion[feature] = Some(outcome),
                    FairnessMeasurePart::Discounted(outcome) => discounted[feature] = Some(outcome),
                },
                WidgetOutput::Diversity(widget) => diversity = Some(widget),
                WidgetOutput::TopRows(rows) => top_k_rows = Some(rows),
            }
        }
        let fairness_config = FairnessConfig {
            k: ctx.config.top_k,
            alpha: ctx.config.alpha,
        };
        let reports: Vec<FairnessReport> = (0..feature_count)
            .map(|feature| {
                FairnessReport::from_parts(
                    &ctx.protected_groups[feature],
                    fair_star[feature].take().expect("FA*IR job always runs"),
                    pairwise[feature].take().expect("pairwise job always runs"),
                    proportion[feature]
                        .take()
                        .expect("proportion job always runs"),
                    discounted[feature]
                        .take()
                        .expect("discounted job always runs"),
                    &fairness_config,
                )
            })
            .collect();
        NutritionalLabel {
            dataset_name: ctx.config.dataset_name.clone(),
            config: (*ctx.config).clone(),
            ranking: ctx.ranking.clone(),
            top_k_rows: top_k_rows.expect("top-rows builder always runs"),
            recipe: recipe.expect("recipe builder always runs"),
            ingredients: ingredients.expect("ingredients builder always runs"),
            stability: stability.expect("stability builder always runs"),
            fairness: FairnessWidget { reports },
            diversity: diversity.expect("diversity builder always runs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    fn scenario() -> (Arc<Table>, Arc<LabelConfig>) {
        let n = 40usize;
        let names: Vec<String> = (0..n).map(|i| format!("Item{i:02}")).collect();
        let quality: Vec<f64> = (0..n).map(|i| 100.0 - 2.0 * i as f64).collect();
        let minor: Vec<f64> = (0..n).map(|i| 50.0 + (i % 5) as f64).collect();
        let group: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let table = Table::from_columns(vec![
            ("Name", Column::from_strings(names)),
            ("Quality", Column::from_f64(quality)),
            ("Minor", Column::from_f64(minor)),
            ("Group", Column::from_strings(group)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("Quality", 0.8), ("Minor", 0.2)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("Group", ["a", "b"])
            .with_diversity_attribute("Group");
        (Arc::new(table), Arc::new(config))
    }

    #[test]
    fn context_prepares_every_shared_intermediate() {
        let (table, config) = scenario();
        let ctx = AnalysisContext::prepare(table, config).unwrap();
        assert_eq!(ctx.ranking.len(), 40);
        assert_eq!(ctx.protected_groups.len(), 2);
        assert_eq!(ctx.normalized_scoring.len(), 2);
        assert_eq!(ctx.normalized_scoring[0].0, "Quality");
        assert_eq!(ctx.normalized_scoring[0].1.len(), 40);
        // Normalized values in rank order decrease for the dominant attribute.
        let quality = &ctx.normalized_scoring[0].1;
        assert!(quality.first().unwrap() > quality.last().unwrap());
    }

    #[test]
    fn sharded_preparation_matches_the_sequential_reference() {
        let (table, config) = scenario();
        let sequential = AnalysisContext::prepare(Arc::clone(&table), Arc::clone(&config)).unwrap();
        let pool = rf_runtime::ThreadPool::new(3);
        let sharded = AnalysisContext::prepare_with_pool(table, config, &pool).unwrap();
        assert_eq!(sequential.ranking, sharded.ranking);
        assert_eq!(sequential.protected_groups, sharded.protected_groups);
        assert_eq!(sequential.normalized_scoring, sharded.normalized_scoring);
    }

    #[test]
    fn sharded_preparation_surfaces_row_errors_like_the_sequential_pass() {
        // A missing value in the scoring column errors with the same
        // (attribute, row) under both preparation paths.
        let mut quality: Vec<Option<f64>> = (0..40).map(|i| Some(100.0 - i as f64)).collect();
        quality[17] = None;
        let table =
            Arc::new(Table::from_columns(vec![("Quality", Column::Float(quality))]).unwrap());
        let scoring = ScoringFunction::from_pairs([("Quality", 1.0)]).unwrap();
        let config = Arc::new(LabelConfig::new(scoring).with_top_k(5));
        let sequential =
            AnalysisContext::prepare(Arc::clone(&table), Arc::clone(&config)).unwrap_err();
        let pool = rf_runtime::ThreadPool::new(4);
        let sharded = AnalysisContext::prepare_with_pool(table, config, &pool).unwrap_err();
        assert_eq!(sequential, sharded);
        assert!(sharded.to_string().contains("row 17"));
    }

    #[test]
    fn preparation_counter_moves_once_per_prepare() {
        let (table, config) = scenario();
        let before = AnalysisContext::preparations();
        AnalysisContext::prepare(Arc::clone(&table), Arc::clone(&config)).unwrap();
        // Other tests run concurrently, so the counter can only be asserted
        // to have moved at least once per preparation here.
        assert!(AnalysisContext::preparations() > before);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (table, config) = scenario();
        let parallel = AnalysisPipeline::new()
            .generate(Arc::clone(&table), Arc::clone(&config))
            .unwrap();
        let sequential = AnalysisPipeline::sequential()
            .generate(table, config)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn prepare_then_render_equals_generate() {
        let (table, config) = scenario();
        let pipeline = AnalysisPipeline::new();
        let ctx = pipeline
            .prepare(Arc::clone(&table), Arc::clone(&config))
            .unwrap();
        let staged = pipeline.render(&ctx).unwrap();
        let direct = pipeline.generate(table, config).unwrap();
        assert_eq!(staged, direct);
        // Rendering the same context again changes nothing.  (That render
        // performs *no* preparation is asserted by the cache-parity
        // integration test, where the process-wide counter is not shared
        // with concurrently running sibling tests.)
        let again = pipeline.render(&ctx).unwrap();
        assert_eq!(staged, again);
    }

    #[test]
    fn sweep_prepares_once_and_matches_independent_generates() {
        let (table, config) = scenario();
        let pipeline = AnalysisPipeline::sequential();
        let ks = [5usize, 10, 20];
        let independent: Vec<NutritionalLabel> = ks
            .iter()
            .map(|&k| {
                pipeline
                    .generate(
                        Arc::clone(&table),
                        Arc::new((*config).clone().with_top_k(k)),
                    )
                    .unwrap()
            })
            .collect();
        // (The "exactly one preparation per sweep" property is asserted by
        // the cache-parity integration test, where the process-wide counter
        // is not shared with concurrently running sibling tests.)
        let sweep = pipeline
            .generate_sweep(Arc::clone(&table), Arc::clone(&config), &ks)
            .unwrap();
        assert_eq!(sweep, independent);
        // Empty sweeps do nothing.
        assert!(pipeline
            .generate_sweep(table, config, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn zero_deadline_label_is_valid_and_reports_truncation() {
        // The deadline-budget contract end to end: a label with an
        // already-expired Monte-Carlo budget still renders, with the widget
        // detail reporting fewer (but at least one wave of) trials.
        let (table, config) = scenario();
        let config = Arc::new(
            (*config)
                .clone()
                .with_monte_carlo_trials(256)
                .with_monte_carlo_deadline_millis(Some(0)),
        );
        let runtime_before = monte_carlo_runtime_stats();
        let label = AnalysisPipeline::with_pool(Arc::new(rf_runtime::ThreadPool::new(2)))
            .generate(Arc::clone(&table), config)
            .unwrap();
        let mc = label.stability.monte_carlo.as_ref().expect("detail on");
        assert!(mc.truncated, "a 0ms budget must truncate 256 trials");
        assert!(mc.trials >= 1 && mc.trials < 256);
        assert_eq!(mc.trials_requested, 256);
        let runtime = monte_carlo_runtime_stats();
        assert!(runtime.runs > runtime_before.runs);
        assert!(runtime.truncated > runtime_before.truncated);
        assert!(runtime.trials_completed >= runtime_before.trials_completed + mc.trials as u64);
        // The truncation is visible in every render.
        assert!(label.to_text().contains("truncated by deadline"));
        assert!(label.to_html().contains("Truncated by deadline"));
    }

    #[test]
    fn with_config_rejects_preparation_changing_configs() {
        let (table, config) = scenario();
        let ctx = AnalysisContext::prepare(Arc::clone(&table), Arc::clone(&config)).unwrap();
        // Changing only render-stage knobs is fine.
        assert!(ctx
            .with_config(Arc::new((*config).clone().with_top_k(5).with_alpha(0.01)))
            .is_ok());
        // Changing the recipe or the audited features is not.
        let new_recipe = ScoringFunction::from_pairs([("Quality", 1.0)]).unwrap();
        let bad = Arc::new(LabelConfig::new(new_recipe).with_top_k(5));
        assert!(matches!(
            ctx.with_config(bad),
            Err(LabelError::InvalidConfig { .. })
        ));
        let bad = Arc::new((*config).clone().with_sensitive_attribute("Group", ["a"]));
        assert!(matches!(
            ctx.with_config(bad),
            Err(LabelError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sweep_rejects_invalid_ks_up_front() {
        let (table, config) = scenario();
        let err = AnalysisPipeline::new()
            .generate_sweep(table, config, &[5, 500])
            .unwrap_err();
        assert!(matches!(err, LabelError::InvalidConfig { .. }));
    }

    #[test]
    fn dedicated_pool_works() {
        let (table, config) = scenario();
        let pool = Arc::new(rf_runtime::ThreadPool::new(2));
        let label = AnalysisPipeline::with_pool(pool)
            .generate(table, config)
            .unwrap();
        assert_eq!(label.top_k_rows.len(), 10);
    }

    #[test]
    fn invalid_config_fails_in_prepare() {
        let (table, config) = scenario();
        let bad = Arc::new((*config).clone().with_top_k(500));
        assert!(AnalysisPipeline::new().generate(table, bad).is_err());
    }

    #[test]
    fn widget_errors_surface_in_label_order() {
        // A non-binary sensitive attribute passes validation but fails group
        // extraction during prepare.
        let n = 30usize;
        let region: Vec<&str> = (0..n)
            .map(|i| match i % 3 {
                0 => "NE",
                1 => "MW",
                _ => "W",
            })
            .collect();
        let table = Table::from_columns(vec![
            ("Region", Column::from_strings(region)),
            (
                "Score",
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("Score", 1.0)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(5)
            .with_sensitive_attribute("Region", ["NE"]);
        let err = AnalysisPipeline::new()
            .generate(Arc::new(table), Arc::new(config))
            .unwrap_err();
        assert!(matches!(err, crate::LabelError::Fairness(_)));
    }

    /// A builder that panics, for exercising the panic-to-error path.
    struct ExplodingBuilder;

    impl WidgetBuilder for ExplodingBuilder {
        fn name(&self) -> String {
            "exploding".to_string()
        }

        fn build(&self, _ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
            panic!("intentional test panic");
        }
    }

    #[test]
    fn panicking_builder_surfaces_a_widget_panic_error() {
        let (table, config) = scenario();
        let pipeline = AnalysisPipeline::with_pool(Arc::new(rf_runtime::ThreadPool::new(2)));
        let ctx = pipeline.prepare(table, config).unwrap();
        let list: Vec<Box<dyn WidgetBuilder>> =
            vec![Box::new(RecipeBuilder), Box::new(ExplodingBuilder)];
        let err = pipeline.run_builders(&ctx, list).unwrap_err();
        match err {
            LabelError::WidgetPanic { widget } => assert_eq!(widget, "exploding"),
            other => panic!("expected WidgetPanic, got {other:?}"),
        }
    }
}
