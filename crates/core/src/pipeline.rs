//! The parallel label-generation pipeline.
//!
//! [`NutritionalLabel::generate`](crate::NutritionalLabel::generate) used to
//! build its six widgets strictly one after another, and every widget
//! re-derived whatever intermediates it needed from the raw table.  This
//! module restructures that into two phases, the way shared-intermediate
//! engines stage work once instead of recomputing it per operator:
//!
//! 1. **Prepare** — an [`AnalysisContext`] computes the shared intermediates
//!    exactly once: the ranking induced by the Recipe, the min-max-normalized
//!    score matrix of the scoring attributes (in rank order, for the
//!    Stability widget), and the protected-group membership vectors (for the
//!    Fairness widget).
//! 2. **Build** — each widget is a [`WidgetBuilder`] reading the immutable
//!    context; the [`AnalysisPipeline`] schedules all builders concurrently
//!    on the shared `rf-runtime` pool (or serially, for the reference path
//!    the parity tests compare against).
//!
//! Both schedules consume identical inputs in identical order, so their
//! outputs are byte-identical after JSON rendering — asserted by
//! `tests/integration_pipeline_parity.rs`.

use crate::config::LabelConfig;
use crate::error::LabelResult;
use crate::label::{NutritionalLabel, RankedRow};
use crate::widgets::diversity::DiversityWidget;
use crate::widgets::fairness::FairnessWidget;
use crate::widgets::ingredients::IngredientsWidget;
use crate::widgets::recipe::RecipeWidget;
use crate::widgets::stability::StabilityWidget;
use rf_fairness::ProtectedGroup;
use rf_ranking::Ranking;
use rf_table::Table;
use std::sync::Arc;

/// The shared, immutable state every widget builder reads.
///
/// Prepared once per label: widgets never touch the raw table for anything
/// the context already derived.
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    /// The dataset being labelled.
    pub table: Arc<Table>,
    /// The label configuration.
    pub config: Arc<LabelConfig>,
    /// The full ranking induced by the Recipe — computed once.
    pub ranking: Ranking,
    /// Protected-group membership vectors, one per audited
    /// `(attribute, protected value)` pair, in configuration order.
    pub protected_groups: Vec<ProtectedGroup>,
    /// Min-max-normalized values of every scoring attribute in rank order
    /// (the Stability widget's input matrix).
    pub normalized_scoring: Vec<(String, Vec<f64>)>,
}

impl AnalysisContext {
    /// Validates the configuration and computes every shared intermediate.
    ///
    /// # Errors
    /// Configuration validation errors, ranking errors, fairness group
    /// extraction errors, or stability normalization errors.
    pub fn prepare(table: Arc<Table>, config: Arc<LabelConfig>) -> LabelResult<Self> {
        config.validate(&table)?;
        let ranking = config.scoring.rank_table(&table)?;
        let mut protected_groups = Vec::new();
        for (attribute, protected_value) in config.protected_features() {
            protected_groups.push(ProtectedGroup::from_table(
                &table,
                attribute,
                protected_value,
            )?);
        }
        let normalized_scoring =
            rf_stability::normalized_values_in_rank_order(&table, &config.scoring, &ranking)?;
        Ok(AnalysisContext {
            table,
            config,
            ranking,
            protected_groups,
            normalized_scoring,
        })
    }

    /// The audited prefix size.
    #[must_use]
    pub fn top_k(&self) -> usize {
        self.config.top_k
    }
}

/// One widget of the label, produced by a [`WidgetBuilder`].
#[derive(Debug, Clone)]
pub enum WidgetOutput {
    /// The Recipe widget.
    Recipe(RecipeWidget),
    /// The Ingredients widget.
    Ingredients(IngredientsWidget),
    /// The Stability widget.
    Stability(StabilityWidget),
    /// The Fairness widget (all three measures per protected feature).
    Fairness(FairnessWidget),
    /// The Diversity widget.
    Diversity(DiversityWidget),
    /// The display rows for the top-k prefix.
    TopRows(Vec<RankedRow>),
}

/// A unit of label construction that can run on the shared pool.
///
/// Implementations must be pure functions of the [`AnalysisContext`]: the
/// pipeline gives no ordering guarantees between builders, and the parity
/// suite asserts the parallel and sequential schedules agree.
pub trait WidgetBuilder: Send + Sync {
    /// Stable name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Builds this widget from the shared context.
    ///
    /// # Errors
    /// Widget-specific construction errors.
    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput>;
}

struct RecipeBuilder;

impl WidgetBuilder for RecipeBuilder {
    fn name(&self) -> &'static str {
        "recipe"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        RecipeWidget::build(&ctx.table, &ctx.config.scoring, &ctx.ranking, ctx.top_k())
            .map(WidgetOutput::Recipe)
    }
}

struct IngredientsBuilder;

impl WidgetBuilder for IngredientsBuilder {
    fn name(&self) -> &'static str {
        "ingredients"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        let recipe_attribute_names: Vec<&str> = ctx.config.scoring.attribute_names();
        IngredientsWidget::build_with_method(
            &ctx.table,
            &ctx.ranking,
            &recipe_attribute_names,
            ctx.top_k(),
            ctx.config.ingredient_count,
            ctx.config.ingredients_method,
        )
        .map(WidgetOutput::Ingredients)
    }
}

struct StabilityBuilder;

impl WidgetBuilder for StabilityBuilder {
    fn name(&self) -> &'static str {
        "stability"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        StabilityWidget::build_from_normalized(
            &ctx.config.scoring,
            &ctx.normalized_scoring,
            &ctx.ranking,
            ctx.top_k(),
            ctx.config.stability_threshold,
        )
        .map(WidgetOutput::Stability)
    }
}

/// One job per audited protected feature: the three fairness measures of one
/// `(attribute, protected value)` pair, so features evaluate concurrently
/// (the paper's COMPAS scenario audits two, German credit two).
struct FairnessFeatureBuilder {
    index: usize,
}

impl WidgetBuilder for FairnessFeatureBuilder {
    fn name(&self) -> &'static str {
        "fairness-feature"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        let group = std::slice::from_ref(&ctx.protected_groups[self.index]);
        FairnessWidget::build_from_groups(group, &ctx.ranking, &ctx.config)
            .map(WidgetOutput::Fairness)
    }
}

struct DiversityBuilder;

impl WidgetBuilder for DiversityBuilder {
    fn name(&self) -> &'static str {
        "diversity"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        DiversityWidget::build(&ctx.table, &ctx.ranking, &ctx.config).map(WidgetOutput::Diversity)
    }
}

struct TopRowsBuilder;

impl WidgetBuilder for TopRowsBuilder {
    fn name(&self) -> &'static str {
        "top-rows"
    }

    fn build(&self, ctx: &AnalysisContext) -> LabelResult<WidgetOutput> {
        Ok(WidgetOutput::TopRows(NutritionalLabel::top_k_rows(
            &ctx.table,
            &ctx.ranking,
            ctx.top_k(),
        )))
    }
}

/// The builders of the complete label, in the label's widget order (also the
/// order errors are reported in, regardless of schedule).  Fairness fans out
/// one job per protected feature; their outputs are concatenated in builder
/// order, which is configuration order.
fn builders(ctx: &AnalysisContext) -> Vec<Box<dyn WidgetBuilder>> {
    let mut list: Vec<Box<dyn WidgetBuilder>> = vec![
        Box::new(RecipeBuilder),
        Box::new(IngredientsBuilder),
        Box::new(StabilityBuilder),
    ];
    for index in 0..ctx.protected_groups.len() {
        list.push(Box::new(FairnessFeatureBuilder { index }));
    }
    list.push(Box::new(DiversityBuilder));
    list.push(Box::new(TopRowsBuilder));
    list
}

/// How the pipeline schedules its widget builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Fan out across the shared `rf-runtime` pool (the default).
    Parallel,
    /// Build widgets one after another on the calling thread — the reference
    /// path the parity tests compare against.
    Sequential,
}

/// Generates nutritional labels by fanning widget builders out over the
/// shared [`rf_runtime`] pool.
#[derive(Debug, Clone)]
pub struct AnalysisPipeline {
    schedule: Schedule,
    pool: Option<Arc<rf_runtime::ThreadPool>>,
}

impl Default for AnalysisPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisPipeline {
    /// A pipeline scheduling widgets concurrently on the process-wide pool.
    #[must_use]
    pub fn new() -> Self {
        AnalysisPipeline {
            schedule: Schedule::Parallel,
            pool: None,
        }
    }

    /// A pipeline scheduling widgets concurrently on a dedicated pool.
    #[must_use]
    pub fn with_pool(pool: Arc<rf_runtime::ThreadPool>) -> Self {
        AnalysisPipeline {
            schedule: Schedule::Parallel,
            pool: Some(pool),
        }
    }

    /// The single-threaded reference pipeline: identical inputs, identical
    /// outputs, no concurrency.  Used by the parity tests and available
    /// wherever determinism is easier to reason about serially.
    #[must_use]
    pub fn sequential() -> Self {
        AnalysisPipeline {
            schedule: Schedule::Sequential,
            pool: None,
        }
    }

    /// Generates the complete label for `table` under `config`.
    ///
    /// Sharing is by `Arc` so widget builders can cross the pool without
    /// copying the dataset; callers holding plain values can use
    /// [`NutritionalLabel::generate`], which wraps them.
    ///
    /// # Errors
    /// Context preparation errors or the first widget error in label order.
    pub fn generate(
        &self,
        table: Arc<Table>,
        config: Arc<LabelConfig>,
    ) -> LabelResult<NutritionalLabel> {
        let ctx = Arc::new(AnalysisContext::prepare(table, config)?);
        let outputs = match self.schedule {
            Schedule::Sequential => {
                let mut outputs = Vec::new();
                for builder in builders(&ctx) {
                    outputs.push(builder.build(&ctx)?);
                }
                outputs
            }
            Schedule::Parallel => self.run_parallel(&ctx)?,
        };
        Ok(Self::assemble(&ctx, outputs))
    }

    /// Runs every builder on the pool, then surfaces results (or the first
    /// error) in builder order so the parallel schedule reports exactly what
    /// the sequential one would.
    fn run_parallel(&self, ctx: &Arc<AnalysisContext>) -> LabelResult<Vec<WidgetOutput>> {
        let pool: &rf_runtime::ThreadPool = match &self.pool {
            Some(pool) => pool,
            None => rf_runtime::global(),
        };
        let list = builders(ctx);
        let names: Vec<&'static str> = list.iter().map(|b| b.name()).collect();
        let jobs: Vec<_> = list
            .into_iter()
            .map(|builder| {
                let ctx = Arc::clone(ctx);
                move || builder.build(&ctx)
            })
            .collect();
        let raw = pool.run_all(jobs);
        let mut outputs = Vec::with_capacity(raw.len());
        for (slot, name) in raw.into_iter().zip(names) {
            match slot {
                Some(result) => outputs.push(result?),
                None => panic!("widget builder `{name}` panicked"),
            }
        }
        Ok(outputs)
    }

    fn assemble(ctx: &Arc<AnalysisContext>, outputs: Vec<WidgetOutput>) -> NutritionalLabel {
        let mut recipe = None;
        let mut ingredients = None;
        let mut stability = None;
        let mut fairness_reports = Vec::new();
        let mut diversity = None;
        let mut top_k_rows = None;
        for output in outputs {
            match output {
                WidgetOutput::Recipe(widget) => recipe = Some(widget),
                WidgetOutput::Ingredients(widget) => ingredients = Some(widget),
                WidgetOutput::Stability(widget) => stability = Some(widget),
                // Per-feature fairness outputs arrive in builder order, which
                // is configuration order; concatenation preserves it.
                WidgetOutput::Fairness(widget) => fairness_reports.extend(widget.reports),
                WidgetOutput::Diversity(widget) => diversity = Some(widget),
                WidgetOutput::TopRows(rows) => top_k_rows = Some(rows),
            }
        }
        NutritionalLabel {
            dataset_name: ctx.config.dataset_name.clone(),
            config: (*ctx.config).clone(),
            ranking: ctx.ranking.clone(),
            top_k_rows: top_k_rows.expect("top-rows builder always runs"),
            recipe: recipe.expect("recipe builder always runs"),
            ingredients: ingredients.expect("ingredients builder always runs"),
            stability: stability.expect("stability builder always runs"),
            fairness: FairnessWidget {
                reports: fairness_reports,
            },
            diversity: diversity.expect("diversity builder always runs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    fn scenario() -> (Arc<Table>, Arc<LabelConfig>) {
        let n = 40usize;
        let names: Vec<String> = (0..n).map(|i| format!("Item{i:02}")).collect();
        let quality: Vec<f64> = (0..n).map(|i| 100.0 - 2.0 * i as f64).collect();
        let minor: Vec<f64> = (0..n).map(|i| 50.0 + (i % 5) as f64).collect();
        let group: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let table = Table::from_columns(vec![
            ("Name", Column::from_strings(names)),
            ("Quality", Column::from_f64(quality)),
            ("Minor", Column::from_f64(minor)),
            ("Group", Column::from_strings(group)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("Quality", 0.8), ("Minor", 0.2)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_sensitive_attribute("Group", ["a", "b"])
            .with_diversity_attribute("Group");
        (Arc::new(table), Arc::new(config))
    }

    #[test]
    fn context_prepares_every_shared_intermediate() {
        let (table, config) = scenario();
        let ctx = AnalysisContext::prepare(table, config).unwrap();
        assert_eq!(ctx.ranking.len(), 40);
        assert_eq!(ctx.protected_groups.len(), 2);
        assert_eq!(ctx.normalized_scoring.len(), 2);
        assert_eq!(ctx.normalized_scoring[0].0, "Quality");
        assert_eq!(ctx.normalized_scoring[0].1.len(), 40);
        // Normalized values in rank order decrease for the dominant attribute.
        let quality = &ctx.normalized_scoring[0].1;
        assert!(quality.first().unwrap() > quality.last().unwrap());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (table, config) = scenario();
        let parallel = AnalysisPipeline::new()
            .generate(Arc::clone(&table), Arc::clone(&config))
            .unwrap();
        let sequential = AnalysisPipeline::sequential()
            .generate(table, config)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn dedicated_pool_works() {
        let (table, config) = scenario();
        let pool = Arc::new(rf_runtime::ThreadPool::new(2));
        let label = AnalysisPipeline::with_pool(pool)
            .generate(table, config)
            .unwrap();
        assert_eq!(label.top_k_rows.len(), 10);
    }

    #[test]
    fn invalid_config_fails_in_prepare() {
        let (table, config) = scenario();
        let bad = Arc::new((*config).clone().with_top_k(500));
        assert!(AnalysisPipeline::new().generate(table, bad).is_err());
    }

    #[test]
    fn widget_errors_surface_in_label_order() {
        // A non-binary sensitive attribute passes validation but fails group
        // extraction during prepare.
        let n = 30usize;
        let region: Vec<&str> = (0..n)
            .map(|i| match i % 3 {
                0 => "NE",
                1 => "MW",
                _ => "W",
            })
            .collect();
        let table = Table::from_columns(vec![
            ("Region", Column::from_strings(region)),
            (
                "Score",
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("Score", 1.0)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(5)
            .with_sensitive_attribute("Region", ["NE"]);
        let err = AnalysisPipeline::new()
            .generate(Arc::new(table), Arc::new(config))
            .unwrap_err();
        assert!(matches!(err, crate::LabelError::Fairness(_)));
    }
}
