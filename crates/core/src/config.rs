//! Label configuration.
//!
//! A [`LabelConfig`] captures everything the demo user chooses in the
//! scoring-function design view (Figure 3) before generating Ranking Facts:
//! the scoring function (attributes + weights + normalization), the sensitive
//! attribute(s) and their protected values, the diversity attributes, the
//! audited prefix size, and the statistical thresholds.

use crate::error::{LabelError, LabelResult};
use crate::widgets::ingredients::IngredientsMethod;
use rf_ranking::ScoringFunction;
use rf_table::Table;

/// A sensitive attribute together with the values treated as protected
/// features.  "At least one categorical attribute must be chosen as the
/// sensitive attribute.  Ranking Facts will evaluate fairness with respect to
/// every value in the domain of this attribute" (paper §3) — listing both
/// values of a binary attribute reproduces that behaviour (as in Figure 1,
/// where both `large` and `small` are audited).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SensitiveAttribute {
    /// Attribute name.
    pub attribute: String,
    /// Values audited as protected features.
    pub protected_values: Vec<String>,
}

/// Knobs of the Monte-Carlo stability detail view (paper §2.2: stability
/// "can be assessed using a model of uncertainty in the data").
///
/// Part of the served label: the estimator runs on the label hot path, one
/// scheduler task per trial, and its knobs are absorbed into
/// [`LabelConfig::fingerprint`] so cached labels stay content-addressed —
/// two requests differing only in `trials` are different cache entries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloConfig {
    /// Number of perturbed re-rankings; `0` disables the detail view.
    pub trials: usize,
    /// Gaussian noise on the scoring attributes, as a fraction of each
    /// column's standard deviation.
    pub data_noise: f64,
    /// Multiplicative jitter on the scoring weights.
    pub weight_noise: f64,
    /// Base seed; trial `i` draws from the stream derived as `seed ⊕ i`.
    pub seed: u64,
    /// Wall-clock budget for the estimator, in milliseconds.  Once the
    /// budget has passed, no further trial batch launches: the label ships
    /// the trials that completed (a deterministic prefix, reported as
    /// `truncated` in the widget detail) instead of holding the request.
    /// `None` never truncates.
    #[serde(default)]
    pub deadline_millis: Option<u64>,
    /// Whether the trial kernel may reassociate float operations (lane
    /// sums, reciprocal multiplies, masked gathers) for throughput.  Off by
    /// default: the estimator stays byte-identical to the materialized
    /// reference.  On, per-row trial scores stay within ~1e-9 relative
    /// error.  Fingerprinted, so relaxed and exact labels are distinct
    /// cache entries.
    #[serde(default)]
    pub relaxed_fp: bool,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 32,
            data_noise: 0.05,
            weight_noise: 0.05,
            seed: 42,
            deadline_millis: None,
            relaxed_fp: false,
        }
    }
}

/// Full configuration of a nutritional label.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LabelConfig {
    /// The scoring function (the Recipe).
    pub scoring: ScoringFunction,
    /// Sensitive attributes audited by the Fairness widget.
    pub sensitive_attributes: Vec<SensitiveAttribute>,
    /// Categorical attributes shown by the Diversity widget.
    pub diversity_attributes: Vec<String>,
    /// Audited prefix size (the paper's widgets use the top-10).
    pub top_k: usize,
    /// Significance level shared by the fairness tests.
    pub alpha: f64,
    /// Slope threshold of the Stability widget (0.25 in the paper's example).
    pub stability_threshold: f64,
    /// Number of attributes listed by the Ingredients widget.
    pub ingredient_count: usize,
    /// How the Ingredients widget estimates attribute importance.
    #[serde(default)]
    pub ingredients_method: IngredientsMethod,
    /// Monte-Carlo stability knobs (the widget's uncertainty-model detail).
    #[serde(default)]
    pub monte_carlo: MonteCarloConfig,
    /// Optional dataset name displayed in the label header.
    pub dataset_name: Option<String>,
}

impl LabelConfig {
    /// Creates a configuration with the paper's defaults:
    /// top-10, `alpha = 0.05`, stability threshold 0.25, three ingredients.
    #[must_use]
    pub fn new(scoring: ScoringFunction) -> Self {
        LabelConfig {
            scoring,
            sensitive_attributes: Vec::new(),
            diversity_attributes: Vec::new(),
            top_k: 10,
            alpha: 0.05,
            stability_threshold: 0.25,
            ingredient_count: 3,
            ingredients_method: IngredientsMethod::default(),
            monte_carlo: MonteCarloConfig::default(),
            dataset_name: None,
        }
    }

    /// Sets the audited prefix size.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the significance level of the fairness tests.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the stability slope threshold.
    #[must_use]
    pub fn with_stability_threshold(mut self, threshold: f64) -> Self {
        self.stability_threshold = threshold;
        self
    }

    /// Sets the number of attributes listed by the Ingredients widget.
    #[must_use]
    pub fn with_ingredient_count(mut self, count: usize) -> Self {
        self.ingredient_count = count;
        self
    }

    /// Selects how the Ingredients widget estimates attribute importance
    /// (linear association by default, or rank-aware similarity).
    #[must_use]
    pub fn with_ingredients_method(mut self, method: IngredientsMethod) -> Self {
        self.ingredients_method = method;
        self
    }

    /// Replaces the Monte-Carlo stability knobs wholesale.
    #[must_use]
    pub fn with_monte_carlo(mut self, monte_carlo: MonteCarloConfig) -> Self {
        self.monte_carlo = monte_carlo;
        self
    }

    /// Sets the number of Monte-Carlo trials (`0` disables the detail view).
    #[must_use]
    pub fn with_monte_carlo_trials(mut self, trials: usize) -> Self {
        self.monte_carlo.trials = trials;
        self
    }

    /// Sets the Monte-Carlo noise magnitudes (data, weight), both fractions.
    #[must_use]
    pub fn with_monte_carlo_noise(mut self, data_noise: f64, weight_noise: f64) -> Self {
        self.monte_carlo.data_noise = data_noise;
        self.monte_carlo.weight_noise = weight_noise;
        self
    }

    /// Sets the Monte-Carlo base seed.
    #[must_use]
    pub fn with_monte_carlo_seed(mut self, seed: u64) -> Self {
        self.monte_carlo.seed = seed;
        self
    }

    /// Sets (or clears) the Monte-Carlo wall-clock budget in milliseconds.
    #[must_use]
    pub fn with_monte_carlo_deadline_millis(mut self, deadline_millis: Option<u64>) -> Self {
        self.monte_carlo.deadline_millis = deadline_millis;
        self
    }

    /// Enables (or disables) relaxed float mode on the Monte-Carlo trial
    /// kernel.
    #[must_use]
    pub fn with_monte_carlo_relaxed_fp(mut self, relaxed: bool) -> Self {
        self.monte_carlo.relaxed_fp = relaxed;
        self
    }

    /// Names the dataset for the label header.
    #[must_use]
    pub fn with_dataset_name(mut self, name: impl Into<String>) -> Self {
        self.dataset_name = Some(name.into());
        self
    }

    /// Adds a sensitive attribute with the values to audit as protected
    /// features.
    #[must_use]
    pub fn with_sensitive_attribute<I, S>(mut self, attribute: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sensitive_attributes.push(SensitiveAttribute {
            attribute: attribute.into(),
            protected_values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Adds a diversity attribute.
    #[must_use]
    pub fn with_diversity_attribute(mut self, attribute: impl Into<String>) -> Self {
        self.diversity_attributes.push(attribute.into());
        self
    }

    /// Validates the configuration against a concrete table.
    ///
    /// # Errors
    /// Returns [`LabelError::InvalidConfig`] (or a table error) describing the
    /// first problem found: missing columns, wrong column roles, k larger
    /// than the dataset, out-of-range thresholds, or empty protected-value
    /// lists.
    pub fn validate(&self, table: &Table) -> LabelResult<()> {
        if self.top_k == 0 {
            return Err(LabelError::InvalidConfig {
                message: "top_k must be at least 1".to_string(),
            });
        }
        if self.top_k > table.num_rows() {
            return Err(LabelError::InvalidConfig {
                message: format!(
                    "top_k ({}) exceeds the number of rows ({})",
                    self.top_k,
                    table.num_rows()
                ),
            });
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(LabelError::InvalidConfig {
                message: format!("alpha must lie strictly in (0, 1), got {}", self.alpha),
            });
        }
        if !(self.stability_threshold.is_finite() && self.stability_threshold > 0.0) {
            return Err(LabelError::InvalidConfig {
                message: format!(
                    "stability threshold must be positive, got {}",
                    self.stability_threshold
                ),
            });
        }
        if self.ingredient_count == 0 {
            return Err(LabelError::InvalidConfig {
                message: "ingredient_count must be at least 1".to_string(),
            });
        }
        for (name, value) in [
            ("monte_carlo.data_noise", self.monte_carlo.data_noise),
            ("monte_carlo.weight_noise", self.monte_carlo.weight_noise),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(LabelError::InvalidConfig {
                    message: format!("{name} must be a non-negative finite fraction, got {value}"),
                });
            }
        }
        self.scoring.validate_against(table)?;
        for sensitive in &self.sensitive_attributes {
            table.require_categorical(&sensitive.attribute)?;
            if sensitive.protected_values.is_empty() {
                return Err(LabelError::InvalidConfig {
                    message: format!(
                        "sensitive attribute `{}` lists no protected values",
                        sensitive.attribute
                    ),
                });
            }
        }
        for attribute in &self.diversity_attributes {
            table.require_categorical(attribute)?;
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the configuration's content.
    ///
    /// Every field that can influence the generated label is absorbed through
    /// a canonical, length-prefixed encoding (floats by canonicalized bit
    /// pattern), so two configurations fingerprint identically exactly when
    /// they would produce identical labels for the same table.  Combined with
    /// [`rf_table::Table::fingerprint`] this forms the label cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fp = rf_table::Fingerprinter::new();
        // Recipe: weights in declaration order, then the policies.
        fp.write_usize(self.scoring.weights().len());
        for weight in self.scoring.weights() {
            fp.write_str(&weight.attribute);
            fp.write_f64(weight.weight);
        }
        fp.write_u8(match self.scoring.normalization() {
            rf_table::NormalizationMethod::None => 0,
            rf_table::NormalizationMethod::MinMax => 1,
            rf_table::NormalizationMethod::ZScore => 2,
        });
        fp.write_u8(match self.scoring.missing_policy() {
            rf_ranking::MissingValuePolicy::Error => 0,
            rf_ranking::MissingValuePolicy::MeanImpute => 1,
            rf_ranking::MissingValuePolicy::Zero => 2,
        });
        // Audited features and diversity dimensions, in configuration order.
        fp.write_usize(self.sensitive_attributes.len());
        for sensitive in &self.sensitive_attributes {
            fp.write_str(&sensitive.attribute);
            fp.write_usize(sensitive.protected_values.len());
            for value in &sensitive.protected_values {
                fp.write_str(value);
            }
        }
        fp.write_usize(self.diversity_attributes.len());
        for attribute in &self.diversity_attributes {
            fp.write_str(attribute);
        }
        // Scalar knobs.
        fp.write_usize(self.top_k);
        fp.write_f64(self.alpha);
        fp.write_f64(self.stability_threshold);
        fp.write_usize(self.ingredient_count);
        fp.write_u8(match self.ingredients_method {
            IngredientsMethod::LinearAssociation => 0,
            IngredientsMethod::RankAwareSimilarity => 1,
        });
        // Monte-Carlo stability knobs: the detail view is part of the served
        // label, so its parameters must key the cache.
        fp.write_usize(self.monte_carlo.trials);
        fp.write_f64(self.monte_carlo.data_noise);
        fp.write_f64(self.monte_carlo.weight_noise);
        fp.write_u64(self.monte_carlo.seed);
        // The deadline can truncate the detail view, so two configurations
        // differing only in their budget must not share a cache entry.
        match self.monte_carlo.deadline_millis {
            Some(deadline) => {
                fp.write_u8(1);
                fp.write_u64(deadline);
            }
            None => fp.write_u8(0),
        }
        // Relaxed float mode changes the served stability numbers (within
        // epsilon), so it must key the cache too.
        fp.write_u8(u8::from(self.monte_carlo.relaxed_fp));
        match &self.dataset_name {
            Some(name) => {
                fp.write_u8(1);
                fp.write_str(name);
            }
            None => fp.write_u8(0),
        }
        fp.finish()
    }

    /// Every `(attribute, protected value)` pair audited by the Fairness
    /// widget, in configuration order.
    #[must_use]
    pub fn protected_features(&self) -> Vec<(&str, &str)> {
        self.sensitive_attributes
            .iter()
            .flat_map(|s| {
                s.protected_values
                    .iter()
                    .map(move |v| (s.attribute.as_str(), v.as_str()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c", "d"])),
            ("score_attr", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            ("other", Column::from_f64(vec![4.0, 3.0, 2.0, 1.0])),
            ("group", Column::from_strings(["x", "y", "x", "y"])),
        ])
        .unwrap()
    }

    fn scoring() -> ScoringFunction {
        ScoringFunction::from_pairs([("score_attr", 1.0)]).unwrap()
    }

    #[test]
    fn defaults_match_paper() {
        let c = LabelConfig::new(scoring());
        assert_eq!(c.top_k, 10);
        assert_eq!(c.alpha, 0.05);
        assert_eq!(c.stability_threshold, 0.25);
        assert_eq!(c.ingredient_count, 3);
        assert!(c.sensitive_attributes.is_empty());
        assert!(c.dataset_name.is_none());
    }

    #[test]
    fn builder_accumulates() {
        let c = LabelConfig::new(scoring())
            .with_top_k(5)
            .with_alpha(0.01)
            .with_stability_threshold(0.1)
            .with_ingredient_count(2)
            .with_ingredients_method(IngredientsMethod::RankAwareSimilarity)
            .with_dataset_name("CS departments")
            .with_sensitive_attribute("group", ["x", "y"])
            .with_diversity_attribute("group");
        assert_eq!(c.top_k, 5);
        assert_eq!(c.ingredients_method, IngredientsMethod::RankAwareSimilarity);
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.dataset_name.as_deref(), Some("CS departments"));
        assert_eq!(c.protected_features(), vec![("group", "x"), ("group", "y")]);
        assert_eq!(c.diversity_attributes, vec!["group"]);
    }

    #[test]
    fn validation_accepts_well_formed_config() {
        let c = LabelConfig::new(scoring())
            .with_top_k(2)
            .with_sensitive_attribute("group", ["x"])
            .with_diversity_attribute("group");
        assert!(c.validate(&table()).is_ok());
    }

    #[test]
    fn validation_rejects_bad_k() {
        let t = table();
        assert!(LabelConfig::new(scoring())
            .with_top_k(0)
            .validate(&t)
            .is_err());
        assert!(LabelConfig::new(scoring())
            .with_top_k(9)
            .validate(&t)
            .is_err());
    }

    #[test]
    fn validation_rejects_bad_thresholds() {
        let t = table();
        let base = LabelConfig::new(scoring()).with_top_k(2);
        assert!(base.clone().with_alpha(0.0).validate(&t).is_err());
        assert!(base.clone().with_alpha(1.0).validate(&t).is_err());
        assert!(base
            .clone()
            .with_stability_threshold(0.0)
            .validate(&t)
            .is_err());
        assert!(base.clone().with_ingredient_count(0).validate(&t).is_err());
        assert!(base
            .clone()
            .with_monte_carlo_noise(-0.1, 0.0)
            .validate(&t)
            .is_err());
        assert!(base
            .clone()
            .with_monte_carlo_noise(0.0, f64::NAN)
            .validate(&t)
            .is_err());
        // Zero trials is valid — it disables the detail view.
        assert!(base.clone().with_monte_carlo_trials(0).validate(&t).is_ok());
        assert!(base.validate(&t).is_ok());
    }

    #[test]
    fn monte_carlo_defaults_ride_along_serde() {
        let c = LabelConfig::new(scoring()).with_top_k(2);
        assert_eq!(c.monte_carlo, MonteCarloConfig::default());
        assert_eq!(c.monte_carlo.trials, 32);
        let json = serde_json::to_string(&c).unwrap();
        let parsed: LabelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn fingerprint_tracks_label_relevant_fields() {
        let base = LabelConfig::new(scoring())
            .with_top_k(2)
            .with_sensitive_attribute("group", ["x"])
            .with_diversity_attribute("group");
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        // Every knob that changes the label changes the fingerprint.
        let variants = vec![
            base.clone().with_top_k(3),
            base.clone().with_alpha(0.01),
            base.clone().with_stability_threshold(0.5),
            base.clone().with_ingredient_count(1),
            base.clone().with_monte_carlo_trials(64),
            base.clone().with_monte_carlo_noise(0.1, 0.05),
            base.clone().with_monte_carlo_noise(0.05, 0.1),
            base.clone().with_monte_carlo_seed(7),
            base.clone().with_monte_carlo_deadline_millis(Some(250)),
            base.clone().with_monte_carlo_relaxed_fp(true),
            base.clone()
                .with_ingredients_method(IngredientsMethod::RankAwareSimilarity),
            base.clone().with_dataset_name("named"),
            base.clone().with_sensitive_attribute("group", ["y"]),
            base.clone().with_diversity_attribute("group"),
            LabelConfig::new(ScoringFunction::from_pairs([("score_attr", 0.5)]).unwrap())
                .with_top_k(2)
                .with_sensitive_attribute("group", ["x"])
                .with_diversity_attribute("group"),
        ];
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "variant {i} must fingerprint differently"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_columns() {
        let t = table();
        // Scoring over a missing column.
        let bad_scoring = ScoringFunction::from_pairs([("ghost", 1.0)]).unwrap();
        assert!(LabelConfig::new(bad_scoring)
            .with_top_k(2)
            .validate(&t)
            .is_err());
        // Sensitive attribute that is numeric.
        let c = LabelConfig::new(scoring())
            .with_top_k(2)
            .with_sensitive_attribute("score_attr", ["1"]);
        assert!(c.validate(&t).is_err());
        // Diversity attribute that does not exist.
        let c = LabelConfig::new(scoring())
            .with_top_k(2)
            .with_diversity_attribute("ghost");
        assert!(c.validate(&t).is_err());
        // Empty protected-value list.
        let c = LabelConfig::new(scoring())
            .with_top_k(2)
            .with_sensitive_attribute("group", Vec::<String>::new());
        assert!(c.validate(&t).is_err());
    }
}
