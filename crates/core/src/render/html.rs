//! HTML rendering of the nutritional label.
//!
//! Produces a standalone, dependency-free HTML page laid out like Figure 1 of
//! the paper: a header, the top-k ranking, and one card per widget (Recipe,
//! Ingredients, Stability, Fairness, Diversity), each with its detailed
//! table.  `rf-server` serves this page for the interactive demo flow.

use crate::label::NutritionalLabel;
use std::fmt::Write;

/// Escapes text for inclusion in HTML.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders the label as a standalone HTML page.
#[must_use]
pub fn render_html(label: &NutritionalLabel) -> String {
    let mut body = String::with_capacity(8192);
    let title = escape(label.dataset_name.as_deref().unwrap_or("ranking"));

    let _ = write!(
        body,
        "<header><h1>Ranking Facts</h1><p class=\"dataset\">{title} &mdash; {} items</p>\
         <p class=\"headline\">{}</p></header>",
        label.ranking.len(),
        escape(&label.headline())
    );

    // Top-k ranking card.
    let _ = write!(body, "<section class=\"card ranking\"><h2>Top-{}</h2><table><tr><th>#</th><th>Item</th><th>Score</th></tr>", label.config.top_k);
    for row in &label.top_k_rows {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{}</td><td>{:.4}</td></tr>",
            row.rank,
            escape(&row.identifier),
            row.score
        );
    }
    let _ = write!(body, "</table></section>");

    // Recipe card.
    let _ = write!(
        body,
        "<section class=\"card recipe\"><h2>Recipe</h2><p>normalization: {}</p><table><tr><th>Attribute</th><th>Weight</th><th>Normalized</th></tr>",
        escape(&label.recipe.normalization)
    );
    for entry in &label.recipe.entries {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{:.3}</td><td>{:.3}</td></tr>",
            escape(&entry.attribute),
            entry.weight,
            entry.normalized_weight
        );
    }
    let _ = write!(body, "</table><h3>Details (top-{} vs over-all)</h3><table><tr><th>Attribute</th><th>top-k min/med/max</th><th>over-all min/med/max</th></tr>", label.config.top_k);
    for detail in &label.recipe.details {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{:.2} / {:.2} / {:.2}</td><td>{:.2} / {:.2} / {:.2}</td></tr>",
            escape(&detail.attribute),
            detail.top_k.min,
            detail.top_k.median,
            detail.top_k.max,
            detail.overall.min,
            detail.overall.median,
            detail.overall.max
        );
    }
    let _ = write!(body, "</table></section>");

    // Ingredients card.
    let _ = write!(
        body,
        "<section class=\"card ingredients\"><h2>Ingredients</h2><p class=\"method\">method: {}</p><table><tr><th>Attribute</th><th>Association</th><th>Learned weight</th><th>In recipe?</th></tr>",
        escape(label.ingredients.method.as_str())
    );
    for ing in &label.ingredients.ingredients {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{:.3}</td><td>{}</td><td>{}</td></tr>",
            escape(&ing.attribute),
            ing.rank_association,
            ing.learned_weight
                .map_or_else(|| "&mdash;".to_string(), |w| format!("{w:.3}")),
            if ing.in_recipe { "yes" } else { "no" }
        );
    }
    let _ = write!(body, "</table>");
    if !label.ingredients.recipe_attributes_not_material.is_empty() {
        let _ = write!(
            body,
            "<p class=\"note\">Recipe attributes not material to the outcome: {}</p>",
            escape(&label.ingredients.recipe_attributes_not_material.join(", "))
        );
    }
    let _ = write!(body, "</section>");

    // Stability card.
    let verdict_class = if label.stability.stable {
        "stable"
    } else {
        "unstable"
    };
    let _ = write!(
        body,
        "<section class=\"card stability\"><h2>Stability</h2>\
         <p class=\"verdict {verdict_class}\">{} (score {:.3}, threshold {:.2})</p>\
         <table><tr><th>Slice</th><th>Slope</th><th>Verdict</th></tr>\
         <tr><td>top-{}</td><td>{:.3}</td><td>{}</td></tr>\
         <tr><td>over-all</td><td>{:.3}</td><td>{}</td></tr></table>",
        if label.stability.stable {
            "STABLE"
        } else {
            "UNSTABLE"
        },
        label.stability.stability_score,
        label.stability.slope.threshold,
        label.stability.slope.k,
        label.stability.slope.top_k.slope_magnitude,
        label.stability.slope.top_k.verdict.as_str(),
        label.stability.slope.overall.slope_magnitude,
        label.stability.slope.overall.verdict.as_str(),
    );
    let _ = write!(
        body,
        "<h3>Per-attribute</h3><table><tr><th>Attribute</th><th>Slope</th><th>Verdict</th></tr>"
    );
    for attr in &label.stability.per_attribute {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{:.3}</td><td>{}</td></tr>",
            escape(&attr.attribute),
            attr.slope_magnitude,
            attr.verdict.as_str()
        );
    }
    let _ = write!(body, "</table>");
    if let Some(mc) = &label.stability.monte_carlo {
        let _ = write!(
            body,
            "<h3>Monte-Carlo detail ({} trials, data noise {:.1}%, weight noise {:.1}%)</h3>\
             <table><tr><th>Expected tau</th><th>Worst tau</th><th>Top-k overlap</th>\
             <th>Top-1 change rate</th><th>Verdict</th></tr>\
             <tr><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td><td>{:.2}</td><td>{}</td></tr></table>",
            mc.trials,
            label.config.monte_carlo.data_noise * 100.0,
            label.config.monte_carlo.weight_noise * 100.0,
            mc.expected_kendall_tau,
            mc.worst_kendall_tau,
            mc.expected_top_k_overlap,
            mc.top_item_change_rate,
            mc.verdict.as_str(),
        );
        if mc.truncated {
            let _ = write!(
                body,
                "<p class=\"truncated\">Truncated by deadline: {} of {} requested trials \
                 completed.</p>",
                mc.trials, mc.trials_requested,
            );
        }
    }
    let _ = write!(body, "</section>");

    // Fairness card.
    let _ = write!(body, "<section class=\"card fairness\"><h2>Fairness</h2>");
    if label.fairness.reports.is_empty() {
        let _ = write!(body, "<p>No sensitive attributes audited.</p>");
    } else {
        let _ = write!(
            body,
            "<table><tr><th>Attribute</th><th>Protected value</th><th>Measure</th><th>Verdict</th><th>p-value</th></tr>"
        );
        for (attribute, value, measure, verdict, p_value) in label.fairness.summary_rows() {
            let _ = write!(
                body,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"{}\">{}</td><td>{:.4}</td></tr>",
                escape(&attribute),
                escape(&value),
                escape(&measure),
                verdict.as_str(),
                verdict.as_str(),
                p_value
            );
        }
        let _ = write!(body, "</table>");
    }
    let _ = write!(body, "</section>");

    // Diversity card.
    let _ = write!(body, "<section class=\"card diversity\"><h2>Diversity</h2>");
    if label.diversity.reports.is_empty() {
        let _ = write!(body, "<p>No diversity attributes configured.</p>");
    } else {
        for report in &label.diversity.reports {
            let _ = write!(
                body,
                "<h3>{} (top-{} vs over-all)</h3><table><tr><th>Category</th><th>top-k</th><th>over-all</th></tr>",
                escape(&report.attribute),
                report.k
            );
            for category in &report.overall.categories {
                let _ = write!(
                    body,
                    "<tr><td>{}</td><td>{:.1}%</td><td>{:.1}%</td></tr>",
                    escape(&category.category),
                    report.top_k.proportion_of(&category.category) * 100.0,
                    category.proportion * 100.0
                );
            }
            let _ = write!(body, "</table>");
            if !report.missing_from_top_k.is_empty() {
                let _ = write!(
                    body,
                    "<p class=\"note\">Missing from the top-{}: {}</p>",
                    report.k,
                    escape(&report.missing_from_top_k.join(", "))
                );
            }
        }
    }
    let _ = write!(body, "</section>");

    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>Ranking Facts — {title}</title>\
         <style>{CSS}</style></head><body><main>{body}</main></body></html>"
    )
}

/// Minimal stylesheet approximating the card layout of Figure 1.
const CSS: &str = "\
body{font-family:system-ui,sans-serif;margin:0;background:#f4f4f6;color:#1d1d22}\
main{max-width:980px;margin:0 auto;padding:1.5rem}\
header h1{margin-bottom:0.1rem}\
.headline{color:#444}\
.card{background:#fff;border-radius:8px;padding:1rem 1.25rem;margin:1rem 0;box-shadow:0 1px 3px rgba(0,0,0,0.12)}\
.card h2{margin-top:0;border-bottom:1px solid #e2e2e8;padding-bottom:0.3rem}\
table{border-collapse:collapse;width:100%;margin:0.5rem 0}\
th,td{text-align:left;padding:0.25rem 0.5rem;border-bottom:1px solid #ececf1}\
.fair{color:#167a2f;font-weight:600}\
.unfair{color:#b3261e;font-weight:600}\
.verdict.stable{color:#167a2f;font-weight:600}\
.verdict.unstable{color:#b3261e;font-weight:600}\
.note{color:#6b4f00;background:#fff6d8;padding:0.4rem 0.6rem;border-radius:4px}\
.recipe h2{color:#167a2f}\
.fairness h2{color:#1a4f9c}\
";

#[cfg(test)]
mod tests {
    use super::super::tests::sample_label;
    use super::*;

    #[test]
    fn html_is_a_complete_document() {
        let html = render_html(&sample_label());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>"));
        assert!(html.contains("<style>"));
    }

    #[test]
    fn html_has_one_card_per_widget() {
        let html = render_html(&sample_label());
        for class in [
            "ranking",
            "recipe",
            "ingredients",
            "stability",
            "fairness",
            "diversity",
        ] {
            assert!(
                html.contains(&format!("class=\"card {class}\"")),
                "missing card {class}"
            );
        }
    }

    #[test]
    fn html_escapes_special_characters() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        // FA*IR measure name with no special chars passes through unchanged.
        assert_eq!(escape("FA*IR"), "FA*IR");
    }

    #[test]
    fn html_lists_fairness_rows() {
        let html = render_html(&sample_label());
        assert!(html.contains("FA*IR"));
        assert!(html.contains("Pairwise"));
        assert!(html.contains("Proportion"));
        assert!(html.contains("p-value"));
    }
}
