//! Rendering the nutritional label.
//!
//! The original Ranking Facts is a web application whose widgets are
//! interactive charts.  This reproduction renders the identical content in
//! three formats:
//!
//! * [`render_text`] — a plain-text label for terminals, logs and the
//!   benchmark harness (the format the examples print).
//! * [`render_json`] — the full label as JSON, the interchange format the
//!   original tool's back end hands to its front-end widgets.
//! * [`render_html`] — a standalone HTML page laid out like Figure 1
//!   (six widget cards), servable by `rf-server`.

mod html;
mod json;
mod text;

pub use html::render_html;
pub use json::render_json;
pub use text::render_text;

#[cfg(test)]
mod tests {
    use crate::{LabelConfig, NutritionalLabel};
    use rf_ranking::ScoringFunction;
    use rf_table::{Column, Table};

    /// Builds a small label exercised by all three renderers.
    pub(crate) fn sample_label() -> NutritionalLabel {
        let n = 24usize;
        let names: Vec<String> = (0..n).map(|i| format!("Item{i:02}")).collect();
        let quality: Vec<f64> = (0..n).map(|i| 100.0 - 4.0 * i as f64).collect();
        let noise: Vec<f64> = (0..n).map(|i| 50.0 + (i % 3) as f64).collect();
        let group: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "A" } else { "B" }).collect();
        let table = Table::from_columns(vec![
            ("name", Column::from_strings(names)),
            ("quality", Column::from_f64(quality)),
            ("noise", Column::from_f64(noise)),
            ("group", Column::from_strings(group)),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("quality", 0.8), ("noise", 0.2)]).unwrap();
        let config = LabelConfig::new(scoring)
            .with_top_k(10)
            .with_dataset_name("sample")
            .with_sensitive_attribute("group", ["A", "B"])
            .with_diversity_attribute("group");
        NutritionalLabel::generate(&table, &config).unwrap()
    }

    #[test]
    fn all_renderers_produce_nonempty_output() {
        let label = sample_label();
        assert!(!super::render_text(&label).is_empty());
        assert!(!super::render_html(&label).is_empty());
        assert!(!super::render_json(&label).unwrap().is_empty());
    }
}
