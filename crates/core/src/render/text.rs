//! Plain-text rendering of the nutritional label.

use crate::label::NutritionalLabel;
use std::fmt::Write;

/// Renders the label as plain text, laid out like Figure 1 of the paper:
/// header, top-k ranking, then the Recipe, Ingredients, Stability, Fairness
/// and Diversity widgets.
#[must_use]
pub fn render_text(label: &NutritionalLabel) -> String {
    let mut out = String::with_capacity(4096);
    let title = label
        .dataset_name
        .as_deref()
        .unwrap_or("ranking")
        .to_string();
    let _ = writeln!(
        out,
        "==================== Ranking Facts ===================="
    );
    let _ = writeln!(out, "Dataset: {title}");
    let _ = writeln!(out, "Items ranked: {}", label.ranking.len());
    let _ = writeln!(out, "Headline: {}", label.headline());
    let _ = writeln!(out);

    // Top-k ranking.
    let _ = writeln!(out, "--- Top-{} ---", label.config.top_k);
    for row in &label.top_k_rows {
        let _ = writeln!(
            out,
            "{:>3}. {:<24} score {:.4}",
            row.rank, row.identifier, row.score
        );
    }
    let _ = writeln!(out);

    // Recipe.
    let _ = writeln!(
        out,
        "--- Recipe (normalization: {}) ---",
        label.recipe.normalization
    );
    for entry in &label.recipe.entries {
        let _ = writeln!(
            out,
            "{:<20} weight {:>6.3}  (normalized {:>6.3})",
            entry.attribute, entry.weight, entry.normalized_weight
        );
    }
    let _ = writeln!(out);

    // Detailed recipe statistics.
    let _ = writeln!(
        out,
        "--- Recipe details (top-{} vs over-all) ---",
        label.config.top_k
    );
    for detail in &label.recipe.details {
        let _ = writeln!(
            out,
            "{:<20} top-k: min {:.2} med {:.2} max {:.2} | all: min {:.2} med {:.2} max {:.2}",
            detail.attribute,
            detail.top_k.min,
            detail.top_k.median,
            detail.top_k.max,
            detail.overall.min,
            detail.overall.median,
            detail.overall.max,
        );
    }
    let _ = writeln!(out);

    // Ingredients.
    let _ = writeln!(
        out,
        "--- Ingredients (most material to the outcome; method: {}) ---",
        label.ingredients.method.as_str()
    );
    for ing in &label.ingredients.ingredients {
        let _ = writeln!(
            out,
            "{:<20} association {:>5.3}{}{}",
            ing.attribute,
            ing.rank_association,
            match ing.learned_weight {
                Some(w) => format!("  learned weight {w:>6.3}"),
                None => String::new(),
            },
            if ing.in_recipe { "  [in recipe]" } else { "" },
        );
    }
    if !label.ingredients.recipe_attributes_not_material.is_empty() {
        let _ = writeln!(
            out,
            "note: recipe attribute(s) not material to the outcome: {}",
            label.ingredients.recipe_attributes_not_material.join(", ")
        );
    }
    let _ = writeln!(out);

    // Stability.
    let _ = writeln!(out, "--- Stability ---");
    let _ = writeln!(
        out,
        "verdict: {}  (score {:.3}, threshold {:.2})",
        if label.stability.stable {
            "STABLE"
        } else {
            "UNSTABLE"
        },
        label.stability.stability_score,
        label.stability.slope.threshold,
    );
    let _ = writeln!(
        out,
        "top-{} slope {:.3} ({})   over-all slope {:.3} ({})",
        label.stability.slope.k,
        label.stability.slope.top_k.slope_magnitude,
        label.stability.slope.top_k.verdict.as_str(),
        label.stability.slope.overall.slope_magnitude,
        label.stability.slope.overall.verdict.as_str(),
    );
    for attr in &label.stability.per_attribute {
        let _ = writeln!(
            out,
            "  attribute {:<18} slope {:.3} ({})",
            attr.attribute,
            attr.slope_magnitude,
            attr.verdict.as_str()
        );
    }
    if let Some(mc) = &label.stability.monte_carlo {
        let _ = writeln!(
            out,
            "monte carlo ({} trials, data noise {:.1}%, weight noise {:.1}%): {}",
            mc.trials,
            label.config.monte_carlo.data_noise * 100.0,
            label.config.monte_carlo.weight_noise * 100.0,
            mc.verdict.as_str(),
        );
        if mc.truncated {
            let _ = writeln!(
                out,
                "  truncated by deadline: {} of {} requested trials completed",
                mc.trials, mc.trials_requested,
            );
        }
        let _ = writeln!(
            out,
            "  expected tau {:.3} (worst {:.3})   top-k overlap {:.3}   top-1 change rate {:.2}",
            mc.expected_kendall_tau,
            mc.worst_kendall_tau,
            mc.expected_top_k_overlap,
            mc.top_item_change_rate,
        );
    }
    let _ = writeln!(out);

    // Fairness.
    let _ = writeln!(
        out,
        "--- Fairness (k = {}, alpha = {}) ---",
        label.config.top_k, label.config.alpha
    );
    if label.fairness.reports.is_empty() {
        let _ = writeln!(out, "no sensitive attributes audited");
    }
    for report in &label.fairness.reports {
        let _ = writeln!(
            out,
            "{} = {} (proportion {:.2})",
            report.attribute, report.protected_value, report.protected_proportion
        );
        for outcome in report.outcomes() {
            let _ = writeln!(
                out,
                "  {:<12} {:<7} p = {:.4}",
                outcome.measure,
                outcome.verdict.as_str(),
                outcome.p_value
            );
        }
        let _ = writeln!(
            out,
            "  rND {:.3}  rKL {:.3}  rRD {:.3}",
            report.discounted.rnd, report.discounted.rkl, report.discounted.rrd
        );
    }
    let _ = writeln!(out);

    // Diversity.
    let _ = writeln!(out, "--- Diversity ---");
    if label.diversity.reports.is_empty() {
        let _ = writeln!(out, "no diversity attributes configured");
    }
    for report in &label.diversity.reports {
        let _ = writeln!(out, "{} (top-{} vs over-all)", report.attribute, report.k);
        for category in &report.overall.categories {
            let top_prop = report.top_k.proportion_of(&category.category);
            let _ = writeln!(
                out,
                "  {:<16} top-k {:>5.1}%   over-all {:>5.1}%",
                category.category,
                top_prop * 100.0,
                category.proportion * 100.0
            );
        }
        if !report.missing_from_top_k.is_empty() {
            let _ = writeln!(
                out,
                "  missing from the top-{}: {}",
                report.k,
                report.missing_from_top_k.join(", ")
            );
        }
    }
    let _ = writeln!(
        out,
        "========================================================"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::super::tests::sample_label;
    use super::*;

    #[test]
    fn text_contains_every_widget_section() {
        let text = render_text(&sample_label());
        for section in [
            "Ranking Facts",
            "--- Top-10 ---",
            "--- Recipe",
            "--- Ingredients",
            "--- Stability ---",
            "--- Fairness",
            "--- Diversity ---",
        ] {
            assert!(text.contains(section), "missing section {section}");
        }
    }

    #[test]
    fn text_lists_top_items_in_order() {
        let label = sample_label();
        let text = render_text(&label);
        let first = &label.top_k_rows[0].identifier;
        let second = &label.top_k_rows[1].identifier;
        let pos_first = text.find(first.as_str()).expect("best item listed");
        let pos_second = text.find(second.as_str()).expect("second item listed");
        assert!(pos_first < pos_second);
    }

    #[test]
    fn text_shows_fairness_verdicts_and_measures() {
        let text = render_text(&sample_label());
        assert!(text.contains("FA*IR"));
        assert!(text.contains("Pairwise"));
        assert!(text.contains("Proportion"));
        assert!(text.contains("fair"));
    }

    #[test]
    fn text_shows_diversity_proportions() {
        let text = render_text(&sample_label());
        assert!(text.contains('%'));
        assert!(text.contains("group"));
    }
}
