//! JSON rendering of the nutritional label.
//!
//! The original web tool's back end hands each widget's data to the front end
//! as JSON; this renderer produces the equivalent document for the whole
//! label, so external tooling (or the bundled `rf-server`) can consume it.

use crate::error::LabelResult;
use crate::label::NutritionalLabel;

/// Serializes the complete label as pretty-printed JSON.
///
/// # Errors
/// Serialization failures (not expected for well-formed labels).
pub fn render_json(label: &NutritionalLabel) -> LabelResult<String> {
    Ok(serde_json::to_string_pretty(label)?)
}

#[cfg(test)]
mod tests {
    use super::super::tests::sample_label;
    use super::*;

    #[test]
    fn json_is_valid_and_contains_widgets() {
        let label = sample_label();
        let json = render_json(&label).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("recipe").is_some());
        assert!(value.get("ingredients").is_some());
        assert!(value.get("stability").is_some());
        assert!(value.get("fairness").is_some());
        assert!(value.get("diversity").is_some());
        assert!(value.get("ranking").is_some());
        assert_eq!(value["dataset_name"], "sample");
    }

    #[test]
    fn json_roundtrip_is_a_fixpoint() {
        // Floating-point formatting may differ from the in-memory value by a
        // few ULPs, so exact struct equality after one round-trip is too
        // strict; instead require serialize → parse → serialize to be stable
        // and the structural fields to survive.
        let label = sample_label();
        let json = render_json(&label).unwrap();
        let parsed: crate::NutritionalLabel = serde_json::from_str(&json).unwrap();
        let json_again = render_json(&parsed).unwrap();
        assert_eq!(json, json_again);
        assert_eq!(parsed.ranking.order(), label.ranking.order());
        assert_eq!(parsed.top_k_rows.len(), label.top_k_rows.len());
        assert_eq!(parsed.fairness.reports.len(), label.fairness.reports.len());
        assert_eq!(parsed.dataset_name, label.dataset_name);
    }

    #[test]
    fn json_fairness_rows_have_p_values() {
        let label = sample_label();
        let json = render_json(&label).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let reports = value["fairness"]["reports"].as_array().unwrap();
        assert_eq!(reports.len(), 2);
        for report in reports {
            assert!(report["fair_star"]["p_value"].is_number());
            assert!(report["pairwise"]["p_value"].is_number());
            assert!(report["proportion"]["p_value"].is_number());
        }
    }
}
