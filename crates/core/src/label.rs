//! Assembling the complete nutritional label.

use crate::config::LabelConfig;
use crate::error::LabelResult;
use crate::pipeline::AnalysisPipeline;
use crate::widgets::diversity::DiversityWidget;
use crate::widgets::fairness::FairnessWidget;
use crate::widgets::ingredients::IngredientsWidget;
use crate::widgets::recipe::RecipeWidget;
use crate::widgets::stability::StabilityWidget;
use rf_ranking::Ranking;
use rf_table::{Table, Value};
use std::sync::Arc;

/// One row of the ranked output shown at the top of the label.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankedRow {
    /// 1-based rank.
    pub rank: usize,
    /// Index of the row in the input table.
    pub row_index: usize,
    /// Identifier for display: the first string column of the table if any,
    /// otherwise the row index.
    pub identifier: String,
    /// The item's score.
    pub score: f64,
}

/// The complete Ranking Facts label: the ranking plus the six widgets.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NutritionalLabel {
    /// Dataset name (from the configuration), if provided.
    pub dataset_name: Option<String>,
    /// The configuration the label was generated with.
    pub config: LabelConfig,
    /// The full ranking induced by the Recipe.
    pub ranking: Ranking,
    /// Display rows for the top-k.
    pub top_k_rows: Vec<RankedRow>,
    /// The Recipe widget.
    pub recipe: RecipeWidget,
    /// The Ingredients widget.
    pub ingredients: IngredientsWidget,
    /// The Stability widget.
    pub stability: StabilityWidget,
    /// The Fairness widget.
    pub fairness: FairnessWidget,
    /// The Diversity widget.
    pub diversity: DiversityWidget,
}

impl NutritionalLabel {
    /// Generates the nutritional label for `table` under `config`.
    ///
    /// This is the main entry point of the reproduction.  It routes through
    /// the [`AnalysisPipeline`](crate::AnalysisPipeline): the configuration
    /// is validated, the shared intermediates (ranking, normalized score
    /// matrix, protected groups) are computed once, and the six widgets are
    /// built concurrently on the shared `rf-runtime` pool.
    ///
    /// This convenience entry point clones `table` and `config` into [`Arc`]s;
    /// callers that already hold shared data (the server catalogue, the
    /// benches) should call [`AnalysisPipeline::generate`] directly and skip
    /// the copy.
    ///
    /// # Errors
    /// Configuration validation errors or any widget-construction error.
    pub fn generate(table: &Table, config: &LabelConfig) -> LabelResult<Self> {
        AnalysisPipeline::new().generate(Arc::new(table.clone()), Arc::new(config.clone()))
    }

    /// Builds display rows for the top-k items, using the first string column
    /// as the identifier when one exists.
    pub(crate) fn top_k_rows(table: &Table, ranking: &Ranking, k: usize) -> Vec<RankedRow> {
        let id_column = table
            .schema()
            .fields()
            .iter()
            .find(|f| f.column_type == rf_table::ColumnType::Str)
            .map(|f| f.name.clone());
        ranking
            .top_k(k)
            .iter()
            .map(|item| {
                let identifier = id_column
                    .as_ref()
                    .and_then(|name| table.column(name).ok())
                    .and_then(|col| col.value(item.index))
                    .map(|v| match v {
                        Value::Str(s) => s,
                        other => other.to_display(),
                    })
                    .filter(|s| !s.is_empty())
                    .unwrap_or_else(|| format!("row {}", item.index));
                RankedRow {
                    rank: item.rank,
                    row_index: item.index,
                    identifier,
                    score: item.score,
                }
            })
            .collect()
    }

    /// Renders the label as plain text (see [`crate::render::render_text`]).
    #[must_use]
    pub fn to_text(&self) -> String {
        crate::render::render_text(self)
    }

    /// Renders the label as a JSON document (see [`crate::render::render_json`]).
    ///
    /// # Errors
    /// Serialization failures.
    pub fn to_json(&self) -> LabelResult<String> {
        crate::render::render_json(self)
    }

    /// Renders the label as a standalone HTML page (see [`crate::render::render_html`]).
    #[must_use]
    pub fn to_html(&self) -> String {
        crate::render::render_html(self)
    }

    /// One-line summary of the headline verdicts, convenient for logs and
    /// benchmark output.
    #[must_use]
    pub fn headline(&self) -> String {
        let stability = if self.stability.stable {
            "stable"
        } else {
            "unstable"
        };
        let fairness = if self.fairness.reports.is_empty() {
            "no sensitive attributes audited".to_string()
        } else if self.fairness.all_fair() {
            "fair for all audited features".to_string()
        } else {
            let unfair: Vec<String> = self
                .fairness
                .unfair_features()
                .iter()
                .map(|(a, v)| format!("{a}={v}"))
                .collect();
            format!("unfair for {}", unfair.join(", "))
        };
        let diversity = if self.diversity.reports.is_empty() {
            "no diversity attributes".to_string()
        } else if self.diversity.full_coverage() {
            "all categories represented in the top-k".to_string()
        } else {
            format!(
                "categories lost in the top-k for {}",
                self.diversity.attributes_losing_categories().join(", ")
            )
        };
        format!("ranking is {stability}; {fairness}; {diversity}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    fn departments() -> Table {
        let n = 30usize;
        let names: Vec<String> = (0..n).map(|i| format!("Dept{i:02}")).collect();
        let pubs: Vec<f64> = (0..n).map(|i| 90.0 - 3.0 * i as f64).collect();
        let faculty: Vec<f64> = pubs.iter().map(|p| p * 0.9 + 10.0).collect();
        let gre: Vec<f64> = (0..n).map(|i| 158.0 + (i % 4) as f64).collect();
        let sizes: Vec<&str> = (0..n)
            .map(|i| if i < 15 { "large" } else { "small" })
            .collect();
        let regions: Vec<&str> = (0..n)
            .map(|i| match i % 5 {
                0 => "NE",
                1 => "MW",
                2 => "SA",
                3 => "SC",
                _ => "W",
            })
            .collect();
        Table::from_columns(vec![
            ("Dept", Column::from_strings(names)),
            ("PubCount", Column::from_f64(pubs)),
            ("Faculty", Column::from_f64(faculty)),
            ("GRE", Column::from_f64(gre)),
            ("DeptSizeBin", Column::from_strings(sizes)),
            ("Region", Column::from_strings(regions)),
        ])
        .unwrap()
    }

    fn config() -> LabelConfig {
        let scoring =
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .unwrap();
        LabelConfig::new(scoring)
            .with_top_k(10)
            .with_dataset_name("CS departments (synthetic)")
            .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
            .with_diversity_attribute("DeptSizeBin")
            .with_diversity_attribute("Region")
    }

    #[test]
    fn generates_complete_label() {
        let table = departments();
        let label = NutritionalLabel::generate(&table, &config()).unwrap();
        assert_eq!(label.ranking.len(), 30);
        assert_eq!(label.top_k_rows.len(), 10);
        assert_eq!(label.recipe.entries.len(), 3);
        assert!(!label.ingredients.ingredients.is_empty());
        assert_eq!(label.fairness.reports.len(), 2);
        assert_eq!(label.diversity.reports.len(), 2);
        assert_eq!(
            label.dataset_name.as_deref(),
            Some("CS departments (synthetic)")
        );
    }

    #[test]
    fn top_rows_use_string_identifier_and_are_ordered() {
        let table = departments();
        let label = NutritionalLabel::generate(&table, &config()).unwrap();
        assert!(label.top_k_rows[0].identifier.starts_with("Dept"));
        for pair in label.top_k_rows.windows(2) {
            assert!(pair[0].score >= pair[1].score);
            assert_eq!(pair[0].rank + 1, pair[1].rank);
        }
    }

    #[test]
    fn headline_mentions_key_findings() {
        let table = departments();
        let label = NutritionalLabel::generate(&table, &config()).unwrap();
        let headline = label.headline();
        assert!(headline.contains("ranking is"));
        // Small departments never reach the top-10 in this construction.
        assert!(headline.contains("unfair") || headline.contains("fair"));
        assert!(headline.contains("DeptSizeBin") || headline.contains("represented"));
    }

    #[test]
    fn invalid_config_is_rejected_before_any_work() {
        let table = departments();
        let bad = config().with_top_k(500);
        assert!(NutritionalLabel::generate(&table, &bad).is_err());
    }

    #[test]
    fn label_without_sensitive_or_diversity_attributes() {
        let table = departments();
        let scoring = ScoringFunction::from_pairs([("PubCount", 1.0)]).unwrap();
        let minimal = LabelConfig::new(scoring).with_top_k(5);
        let label = NutritionalLabel::generate(&table, &minimal).unwrap();
        assert!(label.fairness.reports.is_empty());
        assert!(label.diversity.reports.is_empty());
        assert_eq!(label.top_k_rows.len(), 5);
    }

    #[test]
    fn identifier_falls_back_to_row_index() {
        let table =
            Table::from_columns(vec![("x", Column::from_f64(vec![3.0, 1.0, 2.0]))]).unwrap();
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let config = LabelConfig::new(scoring).with_top_k(2);
        let label = NutritionalLabel::generate(&table, &config).unwrap();
        assert_eq!(label.top_k_rows[0].identifier, "row 0");
    }
}
