//! The scoring-function design view (Figure 3 of the paper).
//!
//! Before generating Ranking Facts the user designs a scoring function:
//! "the user can decide whether to work with raw data or to normalize and
//! standardize the attributes.  The system generates a preview of the data,
//! and allows the user to plot the distribution of values of each attribute
//! as a histogram. [...] at least one categorical attribute must be chosen as
//! the sensitive attribute. [...] the user selects at least one numerical
//! attribute for the scoring function, and assigns a weight to this
//! attribute.  When scoring attributes are selected, the user will preview
//! the ranking" (paper §3).
//!
//! [`DesignView`] packages exactly that information: the data preview,
//! per-attribute summaries and histograms (raw and normalized), the candidate
//! scoring and sensitive attributes, and a ranking preview for the currently
//! selected scoring function.

use crate::error::{LabelError, LabelResult};
use rf_ranking::ScoringFunction;
use rf_stats::{Histogram, Summary};
use rf_table::{column_histogram, column_summary, NormalizationMethod, Normalizer, Table};

/// Preview of one numeric attribute: raw and normalized summaries plus a
/// histogram (the plot shown for GRE in Figure 3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributePreview {
    /// Attribute name.
    pub attribute: String,
    /// Summary of the raw values.
    pub raw_summary: Summary,
    /// Summary of the normalized values (None when normalization is "raw" or
    /// undefined for this attribute, e.g. a constant column).
    pub normalized_summary: Option<Summary>,
    /// Histogram of the raw values.
    pub histogram: Histogram,
}

/// Preview of the ranking induced by a candidate scoring function.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankingPreview {
    /// Identifiers (or row indices) of the top items.
    pub top_items: Vec<String>,
    /// Their scores.
    pub top_scores: Vec<f64>,
}

/// The scoring-function design view.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignView {
    /// Plain-text preview of the first rows of the dataset.
    pub data_preview: String,
    /// Number of rows in the dataset.
    pub rows: usize,
    /// Candidate scoring attributes (numeric columns).
    pub numeric_attributes: Vec<String>,
    /// Candidate sensitive / diversity attributes (categorical columns).
    pub categorical_attributes: Vec<String>,
    /// Per-attribute previews (summaries + histograms).
    pub attribute_previews: Vec<AttributePreview>,
    /// Normalization policy the previews were computed with.
    pub normalization: String,
}

impl DesignView {
    /// Builds the design view for `table`, computing previews of every numeric
    /// attribute under the given normalization policy.
    ///
    /// `preview_rows` controls how many rows the textual data preview shows
    /// and `histogram_bins` the resolution of the attribute histograms.
    ///
    /// # Errors
    /// Returns an error for empty tables or if an attribute summary cannot be
    /// computed.
    pub fn build(
        table: &Table,
        normalization: NormalizationMethod,
        preview_rows: usize,
        histogram_bins: usize,
    ) -> LabelResult<Self> {
        if table.is_empty() {
            return Err(LabelError::InvalidConfig {
                message: "cannot design a scoring function over an empty dataset".to_string(),
            });
        }
        if histogram_bins == 0 {
            return Err(LabelError::InvalidConfig {
                message: "histogram_bins must be at least 1".to_string(),
            });
        }
        let numeric: Vec<String> = table
            .schema()
            .numeric_names()
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let categorical: Vec<String> = table
            .schema()
            .categorical_names()
            .iter()
            .map(|s| (*s).to_string())
            .collect();

        let mut previews = Vec::with_capacity(numeric.len());
        for name in &numeric {
            let raw_summary = column_summary(table, name)?;
            let histogram = column_histogram(table, name, histogram_bins)?;
            let normalized_summary = if normalization == NormalizationMethod::None {
                None
            } else {
                Normalizer::fit(table, &[name.as_str()], normalization)
                    .and_then(|norm| norm.transform_table(table))
                    .and_then(|t| column_summary(&t, name))
                    .ok()
            };
            previews.push(AttributePreview {
                attribute: name.clone(),
                raw_summary,
                normalized_summary,
                histogram,
            });
        }

        Ok(DesignView {
            data_preview: table.preview(preview_rows),
            rows: table.num_rows(),
            numeric_attributes: numeric,
            categorical_attributes: categorical,
            attribute_previews: previews,
            normalization: normalization.as_str().to_string(),
        })
    }

    /// Previews the ranking induced by a candidate scoring function:
    /// the identifiers and scores of the first `n` items.
    ///
    /// # Errors
    /// Propagates scoring errors (unknown attributes, missing values, …).
    pub fn preview_ranking(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        n: usize,
    ) -> LabelResult<RankingPreview> {
        let ranking = scoring.rank_table(table)?;
        let id_column = table
            .schema()
            .fields()
            .iter()
            .find(|f| f.column_type == rf_table::ColumnType::Str)
            .map(|f| f.name.clone());
        let top = ranking.top_k(n);
        let top_items = top
            .iter()
            .map(|item| {
                id_column
                    .as_ref()
                    .and_then(|name| table.column(name).ok())
                    .and_then(|col| col.value(item.index))
                    .map(|v| v.to_display())
                    .filter(|s| !s.is_empty())
                    .unwrap_or_else(|| format!("row {}", item.index))
            })
            .collect();
        let top_scores = top.iter().map(|item| item.score).collect();
        Ok(RankingPreview {
            top_items,
            top_scores,
        })
    }

    /// The preview of a specific attribute, if it exists.
    #[must_use]
    pub fn attribute_preview(&self, name: &str) -> Option<&AttributePreview> {
        self.attribute_previews.iter().find(|p| p.attribute == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c", "d", "e", "f"])),
            (
                "GRE",
                Column::from_f64(vec![150.0, 155.0, 160.0, 162.0, 165.0, 168.0]),
            ),
            (
                "pubs",
                Column::from_f64(vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]),
            ),
            (
                "region",
                Column::from_strings(["NE", "NE", "MW", "W", "W", "SA"]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn design_view_lists_candidates() {
        let view = DesignView::build(&table(), NormalizationMethod::MinMax, 3, 5).unwrap();
        assert_eq!(view.rows, 6);
        assert_eq!(view.numeric_attributes, vec!["GRE", "pubs"]);
        assert_eq!(view.categorical_attributes, vec!["name", "region"]);
        assert_eq!(view.attribute_previews.len(), 2);
        assert!(view.data_preview.contains("GRE"));
        assert_eq!(view.normalization, "min-max [0, 1]");
    }

    #[test]
    fn previews_include_raw_and_normalized_summaries() {
        let view = DesignView::build(&table(), NormalizationMethod::MinMax, 3, 4).unwrap();
        let gre = view.attribute_preview("GRE").unwrap();
        assert_eq!(gre.raw_summary.min, 150.0);
        assert_eq!(gre.raw_summary.max, 168.0);
        let norm = gre.normalized_summary.as_ref().unwrap();
        assert!((norm.min - 0.0).abs() < 1e-12);
        assert!((norm.max - 1.0).abs() < 1e-12);
        assert_eq!(gre.histogram.bins(), 4);
        assert!(view.attribute_preview("ghost").is_none());
    }

    #[test]
    fn raw_mode_has_no_normalized_summary() {
        let view = DesignView::build(&table(), NormalizationMethod::None, 3, 4).unwrap();
        assert!(view
            .attribute_preview("GRE")
            .unwrap()
            .normalized_summary
            .is_none());
        assert_eq!(view.normalization, "raw");
    }

    #[test]
    fn ranking_preview_shows_identifiers() {
        let t = table();
        let view = DesignView::build(&t, NormalizationMethod::MinMax, 3, 4).unwrap();
        let scoring = ScoringFunction::from_pairs([("pubs", 1.0)]).unwrap();
        let preview = view.preview_ranking(&t, &scoring, 3).unwrap();
        assert_eq!(preview.top_items, vec!["f", "e", "d"]);
        assert_eq!(preview.top_scores.len(), 3);
        assert!(preview.top_scores[0] >= preview.top_scores[1]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(DesignView::build(&Table::new(), NormalizationMethod::MinMax, 3, 4).is_err());
        assert!(DesignView::build(&table(), NormalizationMethod::MinMax, 3, 0).is_err());
        let t = table();
        let view = DesignView::build(&t, NormalizationMethod::MinMax, 3, 4).unwrap();
        let bad_scoring = ScoringFunction::from_pairs([("ghost", 1.0)]).unwrap();
        assert!(view.preview_ranking(&t, &bad_scoring, 3).is_err());
    }
}
