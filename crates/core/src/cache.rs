//! The content-addressed label cache.
//!
//! A nutritional label is a pure function of `(table, configuration)`, so a
//! repeated request for the same pair can be answered without touching the
//! analysis pipeline at all.  [`CacheKey`] names that pair by content —
//! [`Table::fingerprint`](rf_table::Table::fingerprint) ×
//! [`LabelConfig::fingerprint`](crate::LabelConfig::fingerprint) — and
//! [`LabelCache`] is the bounded LRU store the
//! [`LabelService`](crate::LabelService) fronts the pipeline with.
//!
//! The cache is bounded two ways: by **entry count** and by **resident
//! bytes**.  An entry's cost is its rendered-JSON length *plus* the
//! approximate heap footprint of the table it keeps alive
//! ([`Table::approx_heap_bytes`]) — uploaded tables are retained for hit
//! verification, so they must count against the bound or uploads could pin
//! unbounded memory behind a small-looking `bytes` figure.  (Catalog tables
//! are `Arc`-shared across their entries, so charging each entry the full
//! table over-counts them; the error is on the safe side.)  Whichever bound
//! is exceeded first evicts least-recently-used entries.  A third, optional
//! bound is **time**: [`LabelCache::with_ttl`] expires entries a fixed
//! duration after insertion (checked on hit, counted in
//! [`CacheStats::expired`]) so a steadily-touched label cannot pin its table
//! in memory forever by dodging LRU eviction.
//!
//! The fingerprints are non-cryptographic (FNV-1a), so a hit additionally
//! verifies that the stored inputs *equal* the request's table and
//! configuration before serving: a fingerprint collision — accidental or
//! crafted through the public upload endpoint — degrades to a miss instead
//! of serving another key's label.  Catalog requests share their tables by
//! `Arc`, so that verification is a pointer comparison on the common path.

use crate::config::LabelConfig;
use crate::label::NutritionalLabel;
use rf_table::Table;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Content-addressed identity of one label: the table's fingerprint paired
/// with the configuration's fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CacheKey {
    /// [`Table::fingerprint`] of the dataset.
    pub table: u64,
    /// [`LabelConfig::fingerprint`](crate::LabelConfig::fingerprint) of the
    /// configuration.
    pub config: u64,
}

impl CacheKey {
    /// Fingerprints `table` and `config` into a cache key.
    #[must_use]
    pub fn new(table: &Table, config: &LabelConfig) -> Self {
        CacheKey {
            table: table.fingerprint(),
            config: config.fingerprint(),
        }
    }
}

/// A generated label together with its rendered JSON document.
///
/// The JSON is rendered once, at insert time, so the dominant
/// `label.json` hit path is a reference-counted clone — no pipeline work, no
/// re-serialization.  HTML and text render from the label on demand.  The
/// deliberate cost of that choice: a cold request that only wants HTML still
/// pays one JSON render to keep its cache entry complete (and to give the
/// byte bound an exact size); that render is a small fraction of the
/// generation it accompanies.
#[derive(Debug, Clone)]
pub struct CachedLabel {
    /// The assembled label.
    pub label: Arc<NutritionalLabel>,
    /// The label rendered as JSON.
    pub json: Arc<String>,
}

/// Counters describing cache behaviour, snapshot by [`LabelCache::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to generate.
    pub misses: u64,
    /// Entries evicted to honour the bounds.
    pub evictions: u64,
    /// Entries dropped on lookup because they outlived the TTL.
    #[serde(default)]
    pub expired: u64,
    /// The per-entry TTL in milliseconds, if one is configured.
    #[serde(default)]
    pub ttl_millis: Option<u64>,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (rendered JSON plus retained table data).
    pub bytes: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Maximum resident bytes.
    pub max_bytes: usize,
}

#[derive(Debug)]
struct CacheEntry {
    value: CachedLabel,
    /// The exact table the entry was generated from, kept to verify hits
    /// (the label itself already carries the exact configuration).  Catalog
    /// tables are `Arc`-shared so this pins no extra memory; uploaded tables
    /// stay resident while cached.
    table: Arc<Table>,
    bytes: usize,
    last_used: u64,
    inserted_at: Instant,
}

/// A bounded, least-recently-used map from [`CacheKey`] to [`CachedLabel`].
///
/// Not internally synchronized — the [`LabelService`](crate::LabelService)
/// wraps it in a mutex and shares *that* across workers.  Recency is a
/// monotonic tick bumped on every touch; eviction removes the smallest tick
/// until both bounds hold.
#[derive(Debug)]
pub struct LabelCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    max_bytes: usize,
    /// Optional per-entry time-to-live, checked on every hit: an entry older
    /// than this serves nothing and is dropped.  `None` disables expiry.
    ttl: Option<Duration>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    expired: u64,
}

impl LabelCache {
    /// A cache bounded to `capacity` entries and `max_bytes` resident bytes
    /// (both clamped to at least one entry / one byte), with no TTL.
    #[must_use]
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        Self::with_ttl(capacity, max_bytes, None)
    }

    /// A bounded cache whose entries additionally expire `ttl` after
    /// insertion: an expired entry is dropped when its key is looked up
    /// (counting a miss plus an expiry), and every insert sweeps *all*
    /// expired entries out, so entries nobody asks about again are reclaimed
    /// by the next write instead of lingering at full LRU weight.
    ///
    /// The cache stays correct without a TTL — keys are content-addressed,
    /// so stale *content* can never be served — but deployments tune one to
    /// bound how long a rarely-touched label pins its table in memory
    /// (recency alone never ages an entry that keeps getting hit exactly
    /// often enough to dodge LRU eviction).
    #[must_use]
    pub fn with_ttl(capacity: usize, max_bytes: usize, ttl: Option<Duration>) -> Self {
        LabelCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            max_bytes: max_bytes.max(1),
            ttl,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            expired: 0,
        }
    }

    /// Looks up a label, counting a hit or miss and refreshing recency.
    ///
    /// A key match alone is not a hit: the stored table and configuration
    /// must equal the request's (`Arc` pointer equality short-circuits the
    /// table comparison for shared catalog datasets).  A mismatched match is
    /// a fingerprint collision and counts as a miss.  Under a TTL, an entry
    /// past its deadline is removed and counted (`expired`) before the miss.
    pub fn get(
        &mut self,
        key: &CacheKey,
        table: &Table,
        config: &LabelConfig,
    ) -> Option<CachedLabel> {
        self.tick += 1;
        if let (Some(ttl), Some(entry)) = (self.ttl, self.entries.get(key)) {
            if entry.inserted_at.elapsed() > ttl {
                if let Some(dead) = self.entries.remove(key) {
                    self.bytes -= dead.bytes;
                    self.expired += 1;
                }
            }
        }
        match self.entries.get_mut(key) {
            Some(entry)
                if entry.value.label.config == *config
                    && (std::ptr::eq(Arc::as_ptr(&entry.table), table)
                        || *entry.table == *table) =>
            {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a label, evicting least-recently-used entries until the
    /// bounds hold.  An entry costs its rendered JSON plus the table it
    /// retains; one whose cost alone exceeds the byte bound is not cached
    /// (it would immediately evict everything else for nothing).  Under a
    /// TTL, every insert first sweeps expired entries (whatever their key),
    /// so dead entries make room before live ones are evicted.
    pub fn insert(&mut self, key: CacheKey, table: Arc<Table>, value: CachedLabel) {
        self.insert_aged(key, table, value, Duration::ZERO);
    }

    /// [`LabelCache::insert`] for an entry that is already `age` old — the
    /// promotion path from the disk tier, whose entries carry their original
    /// fill timestamp.  Backdating `inserted_at` keeps the TTL clock honest:
    /// an entry that expired out of memory and was re-promoted from disk
    /// expires at its *original* deadline instead of winning a fresh TTL on
    /// every promotion.  If the age cannot be represented (it predates what
    /// `Instant` can go back to), the entry is served without being cached —
    /// never cached as younger than it is.
    pub fn insert_aged(
        &mut self,
        key: CacheKey,
        table: Arc<Table>,
        value: CachedLabel,
        age: Duration,
    ) {
        let Some(inserted_at) = Instant::now().checked_sub(age) else {
            return;
        };
        self.sweep_expired();
        let bytes = value.json.len() + table.approx_heap_bytes();
        if bytes > self.max_bytes {
            return;
        }
        self.tick += 1;
        if let Some(previous) = self.entries.insert(
            key,
            CacheEntry {
                value,
                table,
                bytes,
                last_used: self.tick,
                inserted_at,
            },
        ) {
            self.bytes -= previous.bytes;
        }
        self.bytes += bytes;
        while self.entries.len() > self.capacity || self.bytes > self.max_bytes {
            let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
    }

    /// Removes every entry past the TTL, whatever its key.  No-op without a
    /// TTL.
    fn sweep_expired(&mut self) {
        let Some(ttl) = self.ttl else {
            return;
        };
        let dead: Vec<CacheKey> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.inserted_at.elapsed() > ttl)
            .map(|(key, _)| *key)
            .collect();
        for key in dead {
            if let Some(entry) = self.entries.remove(&key) {
                self.bytes -= entry.bytes;
                self.expired += 1;
            }
        }
    }

    /// Drops every entry (counters keep their history).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// A snapshot of the cache counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            expired: self.expired,
            ttl_millis: self.ttl.map(|ttl| ttl.as_millis() as u64),
            entries: self.entries.len(),
            bytes: self.bytes,
            capacity: self.capacity,
            max_bytes: self.max_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisPipeline;
    use rf_ranking::ScoringFunction;
    use rf_table::Column;

    struct Fixture {
        table: Arc<Table>,
        config: LabelConfig,
        key: CacheKey,
        value: CachedLabel,
    }

    impl Fixture {
        /// The entry's accounted cost: rendered JSON plus the retained table.
        fn cost(&self) -> usize {
            self.value.json.len() + self.table.approx_heap_bytes()
        }
    }

    fn label_for(k: usize) -> Fixture {
        let n = 20usize;
        let table = Table::from_columns(vec![
            (
                "name",
                Column::from_strings((0..n).map(|i| format!("i{i}")).collect::<Vec<_>>()),
            ),
            (
                "score",
                Column::from_f64((0..n).map(|i| 40.0 - i as f64).collect()),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("score", 1.0)]).unwrap();
        let config = LabelConfig::new(scoring).with_top_k(k);
        let key = CacheKey::new(&table, &config);
        let table = Arc::new(table);
        let label = AnalysisPipeline::sequential()
            .generate(Arc::clone(&table), Arc::new(config.clone()))
            .unwrap();
        let json = label.to_json().unwrap();
        Fixture {
            table,
            config,
            key,
            value: CachedLabel {
                label: Arc::new(label),
                json: Arc::new(json),
            },
        }
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = label_for(3);
        let a_again = label_for(3);
        let b = label_for(5);
        assert_eq!(a.key, a_again.key);
        assert_ne!(a.key, b.key);
        // Same table content, different config.
        assert_eq!(a.key.config, a_again.key.config);
        assert_eq!(a.key.table, b.key.table);
    }

    #[test]
    fn hit_returns_the_inserted_label_and_counts() {
        let mut cache = LabelCache::new(4, 1 << 20);
        let f = label_for(3);
        assert!(cache.get(&f.key, &f.table, &f.config).is_none());
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        let hit = cache.get(&f.key, &f.table, &f.config).expect("warm hit");
        assert_eq!(hit.json, f.value.json);
        // A clone-equal table (different allocation) still hits.
        let rebuilt = Table::clone(&f.table);
        assert!(cache.get(&f.key, &rebuilt, &f.config).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, f.cost());
    }

    #[test]
    fn a_key_match_with_different_inputs_is_a_miss_not_a_hit() {
        // Simulate a fingerprint collision: the same CacheKey arriving with
        // a different table / config must not serve the stored label.
        let mut cache = LabelCache::new(4, 1 << 20);
        let f3 = label_for(3);
        let f5 = label_for(5);
        cache.insert(f3.key, Arc::clone(&f3.table), f3.value.clone());
        let other_table =
            Table::from_columns(vec![("score", Column::from_f64(vec![1.0, 2.0]))]).unwrap();
        assert!(
            cache.get(&f3.key, &other_table, &f3.config).is_none(),
            "colliding table must miss"
        );
        assert!(
            cache.get(&f3.key, &f3.table, &f5.config).is_none(),
            "colliding config must miss"
        );
        assert_eq!(cache.stats().misses, 2);
        // The genuine request still hits.
        assert!(cache.get(&f3.key, &f3.table, &f3.config).is_some());
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut cache = LabelCache::new(2, 1 << 20);
        let f3 = label_for(3);
        let f4 = label_for(4);
        let f5 = label_for(5);
        cache.insert(f3.key, Arc::clone(&f3.table), f3.value.clone());
        cache.insert(f4.key, Arc::clone(&f4.table), f4.value.clone());
        // Touch key3 so key4 is the LRU when key5 arrives.
        assert!(cache.get(&f3.key, &f3.table, &f3.config).is_some());
        cache.insert(f5.key, Arc::clone(&f5.table), f5.value.clone());
        assert!(
            cache.get(&f4.key, &f4.table, &f4.config).is_none(),
            "LRU entry must be evicted"
        );
        assert!(cache.get(&f3.key, &f3.table, &f3.config).is_some());
        assert!(cache.get(&f5.key, &f5.table, &f5.config).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn byte_bound_evicts_and_oversized_entries_are_skipped() {
        let f3 = label_for(3);
        let f4 = label_for(4);
        // Room for one entry (JSON + retained table) but not two.
        let mut cache = LabelCache::new(10, f3.cost() + f4.cost() / 2);
        cache.insert(f3.key, Arc::clone(&f3.table), f3.value.clone());
        cache.insert(f4.key, Arc::clone(&f4.table), f4.value.clone());
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= cache.stats().max_bytes);
        // An entry bigger than the whole bound is not cached at all.
        let mut tiny = LabelCache::new(10, 16);
        tiny.insert(f4.key, Arc::clone(&f4.table), f4.value.clone());
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn ttl_expires_entries_on_hit_and_counts_them() {
        let f = label_for(3);
        let mut cache = LabelCache::with_ttl(4, 1 << 20, Some(Duration::from_millis(40)));
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        // Young enough: a normal hit.
        assert!(cache.get(&f.key, &f.table, &f.config).is_some());
        std::thread::sleep(Duration::from_millis(60));
        // Past the TTL: dropped on lookup, counted as expired + miss.
        assert!(cache.get(&f.key, &f.table, &f.config).is_none());
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.ttl_millis, Some(40));
        // Re-inserting restarts the clock.
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        assert!(cache.get(&f.key, &f.table, &f.config).is_some());
    }

    #[test]
    fn aged_inserts_keep_the_original_ttl_clock() {
        let f = label_for(3);
        let mut cache = LabelCache::with_ttl(4, 1 << 20, Some(Duration::from_millis(50)));
        // Already 40ms old at insert (a disk promotion): it expires at the
        // original deadline, ~10ms from now — not 50ms from now.
        cache.insert_aged(
            f.key,
            Arc::clone(&f.table),
            f.value.clone(),
            Duration::from_millis(40),
        );
        assert!(cache.get(&f.key, &f.table, &f.config).is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            cache.get(&f.key, &f.table, &f.config).is_none(),
            "promotion must not extend the TTL"
        );
        assert_eq!(cache.stats().expired, 1);
        // An age already past the TTL never serves from memory at all.
        cache.insert_aged(
            f.key,
            Arc::clone(&f.table),
            f.value.clone(),
            Duration::from_millis(60),
        );
        assert!(cache.get(&f.key, &f.table, &f.config).is_none());
    }

    #[test]
    fn inserts_sweep_expired_entries_of_other_keys() {
        // An expired entry nobody looks up again must not pin its table in
        // memory: the next insert (any key) sweeps it out.
        let f3 = label_for(3);
        let f4 = label_for(4);
        let mut cache = LabelCache::with_ttl(8, 1 << 20, Some(Duration::from_millis(30)));
        cache.insert(f3.key, Arc::clone(&f3.table), f3.value.clone());
        std::thread::sleep(Duration::from_millis(50));
        cache.insert(f4.key, Arc::clone(&f4.table), f4.value.clone());
        let stats = cache.stats();
        assert_eq!(stats.expired, 1, "the stale k=3 entry was swept");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, f4.cost());
        assert!(cache.get(&f4.key, &f4.table, &f4.config).is_some());
    }

    #[test]
    fn no_ttl_means_entries_never_expire() {
        let f = label_for(3);
        let mut cache = LabelCache::new(4, 1 << 20);
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get(&f.key, &f.table, &f.config).is_some());
        assert_eq!(cache.stats().expired, 0);
        assert_eq!(cache.stats().ttl_millis, None);
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let mut cache = LabelCache::new(4, 1 << 20);
        let f = label_for(3);
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        cache.insert(f.key, Arc::clone(&f.table), f.value.clone());
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, f.cost());
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);
    }
}
