//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use rf_stats::{
    binomial_cdf, binomial_pmf, kendall_tau, mean, normal_cdf, normal_quantile, pearson, quantile,
    spearman, Histogram, LinearFit, Summary,
};

/// Strategy producing a vector of "reasonable" finite floats.
fn finite_vec(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6_f64, min_len..=max_len)
}

proptest! {
    #[test]
    fn mean_lies_between_min_and_max(values in finite_vec(1, 64)) {
        let m = mean(&values).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn summary_is_internally_consistent(values in finite_vec(2, 64)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn quantile_is_monotone_in_q(values in finite_vec(1, 32), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = quantile(&values, lo_q).unwrap();
        let hi = quantile(&values, hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-9);
    }

    #[test]
    fn pearson_bounded_and_scale_invariant(
        values in finite_vec(3, 32),
        scale in 0.1..10.0f64,
        shift in -100.0..100.0f64,
    ) {
        // Build a second series that is not constant.
        let other: Vec<f64> = values.iter().enumerate().map(|(i, v)| v * 0.5 + i as f64).collect();
        if let Ok(r) = pearson(&values, &other) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            // Correlation is invariant under positive affine transforms.
            let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
            if let Ok(r2) = pearson(&transformed, &other) {
                prop_assert!((r - r2).abs() < 1e-6, "r={} r2={}", r, r2);
            }
        }
    }

    #[test]
    fn rank_correlations_bounded(values in finite_vec(3, 24)) {
        let other: Vec<f64> = values.iter().rev().copied().collect();
        if let Ok(rho) = spearman(&values, &other) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }
        if let Ok(tau) = kendall_tau(&values, &other) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&tau));
        }
    }

    #[test]
    fn kendall_of_identical_distinct_series_is_one(values in finite_vec(3, 24)) {
        let mut values = values;
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        if values.len() >= 3 {
            let tau = kendall_tau(&values, &values).unwrap();
            prop_assert!((tau - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_fit_residual_orthogonality(values in finite_vec(3, 32)) {
        // Fit y = values against x = index; the residuals must sum to ~0.
        let x: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let fit = LinearFit::fit(&x, &values).unwrap();
        let resid_sum: f64 = x.iter().zip(values.iter())
            .map(|(&xi, &yi)| yi - fit.predict(xi))
            .sum();
        let scale = values.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(resid_sum.abs() / scale < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
    }

    #[test]
    fn normal_cdf_quantile_roundtrip(p in 0.001..0.999f64) {
        let x = normal_quantile(p).unwrap();
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn binomial_pmf_nonnegative_and_cdf_monotone(n in 1u64..200, p in 0.0..=1.0f64) {
        let k1 = n / 3;
        let k2 = 2 * n / 3;
        let pmf = binomial_pmf(k1, n, p).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&pmf));
        let c1 = binomial_cdf(k1, n, p).unwrap();
        let c2 = binomial_cdf(k2, n, p).unwrap();
        prop_assert!(c1 <= c2 + 1e-9);
        prop_assert!(binomial_cdf(n, n, p).unwrap() > 1.0 - 1e-6);
    }

    #[test]
    fn histogram_conserves_mass(values in finite_vec(1, 128), bins in 1usize..20) {
        let h = Histogram::build(&values, bins).unwrap();
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        let freq_sum: f64 = h.frequencies().iter().sum();
        prop_assert!((freq_sum - 1.0).abs() < 1e-9);
    }
}
