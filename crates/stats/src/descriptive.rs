//! Descriptive statistics: mean, variance, quantiles and summaries.
//!
//! The detailed *Recipe* and *Ingredients* widgets of the nutritional label
//! "list statistics of the attributes [...]: minimum, maximum and median
//! values at the top-10 and over-all" (paper §2.1).  [`Summary`] packages
//! exactly that set of statistics for one attribute over one slice of rows.

use crate::error::{StatsError, StatsResult};

/// Arithmetic mean of a slice.
///
/// # Errors
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFiniteInput`] if any element is NaN or infinite.
pub fn mean(values: &[f64]) -> StatsResult<f64> {
    ensure_finite(values, "mean")?;
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Sample variance (unbiased, `n - 1` denominator).
///
/// # Errors
/// Requires at least two observations.
pub fn variance(values: &[f64]) -> StatsResult<f64> {
    ensure_finite(values, "variance")?;
    if values.len() < 2 {
        return Err(StatsError::InsufficientData {
            operation: "variance",
            required: 2,
            actual: values.len(),
        });
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(ss / (values.len() - 1) as f64)
}

/// Population variance (`n` denominator).
///
/// # Errors
/// Returns an error on empty or non-finite input.
pub fn population_variance(values: &[f64]) -> StatsResult<f64> {
    ensure_finite(values, "population_variance")?;
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "population_variance",
        });
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(ss / values.len() as f64)
}

/// Sample standard deviation.
///
/// # Errors
/// Requires at least two observations.
pub fn stddev(values: &[f64]) -> StatsResult<f64> {
    variance(values).map(f64::sqrt)
}

/// Minimum of a slice.
///
/// # Errors
/// Returns an error on empty or non-finite input.
pub fn min(values: &[f64]) -> StatsResult<f64> {
    ensure_finite(values, "min")?;
    values
        .iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or(StatsError::EmptyInput { operation: "min" })
}

/// Maximum of a slice.
///
/// # Errors
/// Returns an error on empty or non-finite input.
pub fn max(values: &[f64]) -> StatsResult<f64> {
    ensure_finite(values, "max")?;
    values
        .iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or(StatsError::EmptyInput { operation: "max" })
}

/// Median (the 0.5 quantile).
///
/// # Errors
/// Returns an error on empty or non-finite input.
pub fn median(values: &[f64]) -> StatsResult<f64> {
    quantile(values, 0.5)
}

/// Linear-interpolation quantile (type-7, the default used by numpy and R).
///
/// `q` must lie in `[0, 1]`.
///
/// # Errors
/// Returns an error on empty input, non-finite input, or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> StatsResult<f64> {
    ensure_finite(values, "quantile")?;
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "quantile",
        });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidParameter {
            parameter: "q",
            message: format!("quantile level must lie in [0, 1], got {q}"),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). No validation is performed.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the rank vector of the input using average ranks for ties
/// (1-based, as is conventional for rank correlation).
///
/// # Errors
/// Returns an error on empty or non-finite input.
pub fn rank_with_ties(values: &[f64]) -> StatsResult<Vec<f64>> {
    ensure_finite(values, "rank_with_ties")?;
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "rank_with_ties",
        });
    }
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Find the extent of the tie group.
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank within [i, j] (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    Ok(ranks)
}

/// The per-attribute statistics reported by the detailed Recipe and
/// Ingredients widgets: minimum, maximum, median, mean and standard deviation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations summarized.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median value.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0.0 when fewer than two observations).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary of a slice of finite values.
    ///
    /// # Errors
    /// Returns an error on empty or non-finite input.
    pub fn of(values: &[f64]) -> StatsResult<Self> {
        ensure_finite(values, "Summary::of")?;
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                operation: "Summary::of",
            });
        }
        let sd = if values.len() >= 2 {
            stddev(values)?
        } else {
            0.0
        };
        Ok(Summary {
            count: values.len(),
            min: min(values)?,
            max: max(values)?,
            median: median(values)?,
            mean: mean(values)?,
            stddev: sd,
        })
    }

    /// Range (max − min) of the summarized values.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Validates that every element of `values` is finite.
fn ensure_finite(values: &[f64], operation: &'static str) -> StatsResult<()> {
    if values.iter().any(|v| !v.is_finite()) {
        Err(StatsError::NonFiniteInput { operation })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn mean_of_simple_values() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn mean_of_single_value() {
        assert_close(mean(&[7.25]).unwrap(), 7.25);
    }

    #[test]
    fn mean_empty_is_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput { operation: "mean" }));
    }

    #[test]
    fn mean_rejects_nan() {
        assert_eq!(
            mean(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput { operation: "mean" })
        );
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&v).unwrap(), 32.0 / 7.0);
        assert_close(population_variance(&v).unwrap(), 4.0);
    }

    #[test]
    fn variance_requires_two_points() {
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn stddev_is_sqrt_of_variance() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(stddev(&v).unwrap(), variance(&v).unwrap().sqrt());
    }

    #[test]
    fn min_max_basic() {
        let v = [3.0, -1.0, 7.5, 2.0];
        assert_close(min(&v).unwrap(), -1.0);
        assert_close(max(&v).unwrap(), 7.5);
    }

    #[test]
    fn median_odd_and_even() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_close(quantile(&v, 0.0).unwrap(), 10.0);
        assert_close(quantile(&v, 1.0).unwrap(), 40.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        // Position 0.25 * 3 = 0.75 → between 1 and 2 at 0.75.
        assert_close(quantile(&v, 0.25).unwrap(), 1.75);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn quantile_single_element() {
        assert_close(quantile(&[42.0], 0.3).unwrap(), 42.0);
    }

    #[test]
    fn ranks_without_ties() {
        let r = rank_with_ties(&[30.0, 10.0, 20.0]).unwrap();
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_use_average() {
        let r = rank_with_ties(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_all_tied() {
        let r = rank_with_ties(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn summary_reports_all_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_close(s.min, 1.0);
        assert_close(s.max, 5.0);
        assert_close(s.median, 3.0);
        assert_close(s.mean, 3.0);
        assert_close(s.range(), 4.0);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn summary_single_value_has_zero_stddev() {
        let s = Summary::of(&[9.0]).unwrap();
        assert_close(s.stddev, 0.0);
        assert_close(s.range(), 0.0);
    }

    #[test]
    fn summary_rejects_infinite() {
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_err());
    }
}
