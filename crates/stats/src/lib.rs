//! # rf-stats
//!
//! Statistics substrate for the Ranking Facts reproduction of
//! *"A Nutritional Label for Rankings"* (SIGMOD 2018).
//!
//! The original Ranking Facts system is a Python web application that leans on
//! `numpy`/`scipy`/`pandas` for every statistical computation behind its
//! widgets.  This crate re-implements, from scratch, exactly the statistical
//! machinery those widgets need:
//!
//! * [`descriptive`] — means, variances, medians, quantiles and summaries used
//!   by the detailed *Recipe* and *Ingredients* widgets ("minimum, maximum and
//!   median values at the top-10 and over-all").
//! * [`correlation`] — Pearson, Spearman and Kendall correlation used to find
//!   the attributes "most material to the ranked outcome" (*Ingredients*).
//! * [`regression`] — ordinary least squares (simple and multiple) used both
//!   for the *Ingredients* importance estimation ("the attributes with the
//!   highest learned weights") and for the *Stability* slope fit (Figure 2).
//! * [`distributions`] — normal and binomial distributions backing the
//!   fairness hypothesis tests (FA*IR, proportion test, pairwise test).
//! * [`hypothesis`] — z-tests and binomial tests producing the p-values that
//!   drive the fair/unfair verdicts of the *Fairness* widget.
//! * [`histogram`] — equi-width histograms used by the scoring-function design
//!   view (Figure 3).
//!
//! Everything is deterministic, allocation-conscious, and free of external
//! numerical dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod error;
pub mod histogram;
pub mod hypothesis;
pub mod regression;

pub use correlation::{kendall_tau, pearson, spearman};
pub use descriptive::{max, mean, median, min, quantile, stddev, variance, Summary};
pub use distributions::{
    binomial_cdf, binomial_pmf, binomial_quantile, normal_cdf, normal_pdf, normal_quantile,
};
pub use error::{StatsError, StatsResult};
pub use histogram::Histogram;
pub use hypothesis::{
    binomial_test, one_proportion_z_test, two_proportion_z_test, Alternative, TestResult,
};
pub use regression::{LinearFit, MultipleRegression};
