//! Equi-width histograms.
//!
//! The scoring-function design view (Figure 3) "allows the user to plot the
//! distribution of values of each attribute as a histogram".  The design view
//! in `rf-core` uses this module to compute the bins it renders.

use crate::error::{StatsError, StatsResult};

/// An equi-width histogram over a set of finite values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Width of each bin (0.0 when all values are identical).
    pub bin_width: f64,
    /// Number of observations that fell into each bin.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equi-width bins spanning `[min, max]` of
    /// the data.  When every value is identical the single populated bin holds
    /// all observations.
    ///
    /// # Errors
    /// Returns an error when `values` is empty, contains non-finite values, or
    /// `bins == 0`.
    pub fn build(values: &[f64], bins: usize) -> StatsResult<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                parameter: "bins",
                message: "histogram needs at least one bin".to_string(),
            });
        }
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                operation: "Histogram::build",
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput {
                operation: "Histogram::build",
            });
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; bins];
        if min == max {
            counts[0] = values.len() as u64;
            return Ok(Histogram {
                min,
                max,
                bin_width: 0.0,
                counts,
                total: values.len() as u64,
            });
        }
        let bin_width = (max - min) / bins as f64;
        for &v in values {
            let mut idx = ((v - min) / bin_width) as usize;
            // The maximum value falls into the last bin (half-open bins elsewhere).
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Ok(Histogram {
            min,
            max,
            bin_width,
            counts,
            total: values.len() as u64,
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// `[left, right)` edges of bin `i` (the last bin is closed on the right).
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let left = self.min + self.bin_width * i as f64;
        let right = if i + 1 == self.counts.len() {
            self.max
        } else {
            self.min + self.bin_width * (i + 1) as f64
        };
        (left, right)
    }

    /// Relative frequency of each bin (sums to 1.0).
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Index of the most populated bin (the first one in case of ties).
    #[must_use]
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Renders the histogram as ASCII art (one line per bin), used by the
    /// text renderer of the design view.
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar_len = ((c as f64 / max_count as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "[{lo:>10.3}, {hi:>10.3}) {:<width$} {c}\n",
                "#".repeat(bar_len),
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_all_values() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let h = Histogram::build(&values, 5).unwrap();
        assert_eq!(h.total, 10);
        assert_eq!(h.counts.iter().sum::<u64>(), 10);
        assert_eq!(h.bins(), 5);
    }

    #[test]
    fn histogram_uniform_values_spread_evenly() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::build(&values, 10).unwrap();
        for &c in &h.counts {
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn histogram_max_value_in_last_bin() {
        let values = [0.0, 10.0];
        let h = Histogram::build(&values, 4).unwrap();
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn histogram_constant_values() {
        let values = [3.0, 3.0, 3.0];
        let h = Histogram::build(&values, 5).unwrap();
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.bin_width, 0.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn histogram_empty_is_error() {
        assert!(Histogram::build(&[], 5).is_err());
    }

    #[test]
    fn histogram_zero_bins_is_error() {
        assert!(Histogram::build(&[1.0], 0).is_err());
    }

    #[test]
    fn histogram_rejects_nan() {
        assert!(Histogram::build(&[1.0, f64::NAN], 3).is_err());
    }

    #[test]
    fn frequencies_sum_to_one() {
        let values = [1.0, 1.5, 2.0, 2.5, 3.0, 5.0, 8.0];
        let h = Histogram::build(&values, 4).unwrap();
        let total: f64 = h.frequencies().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_edges_cover_range() {
        let values = [0.0, 1.0, 2.0, 3.0, 4.0];
        let h = Histogram::build(&values, 4).unwrap();
        let (first_lo, _) = h.bin_edges(0);
        let (_, last_hi) = h.bin_edges(3);
        assert_eq!(first_lo, 0.0);
        assert_eq!(last_hi, 4.0);
    }

    #[test]
    fn mode_bin_finds_heaviest() {
        let values = [1.0, 1.1, 1.2, 1.3, 9.0];
        let h = Histogram::build(&values, 4).unwrap();
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn ascii_rendering_has_one_line_per_bin() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let h = Histogram::build(&values, 3).unwrap();
        let art = h.to_ascii(20);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('#'));
    }
}
