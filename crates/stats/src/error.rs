//! Error type shared by every statistical routine in this crate.

use std::fmt;

/// Result alias used throughout `rf-stats`.
pub type StatsResult<T> = Result<T, StatsError>;

/// Errors produced by statistical routines.
///
/// The routines in this crate are used deep inside the nutritional-label
/// pipeline, so errors carry enough context to be surfaced directly in a
/// widget (e.g. "cannot compute stability slope: fewer than two data points").
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty but the computation needs at least one value.
    EmptyInput {
        /// Name of the operation that failed.
        operation: &'static str,
    },
    /// The computation requires more observations than were provided.
    InsufficientData {
        /// Name of the operation that failed.
        operation: &'static str,
        /// Number of observations required.
        required: usize,
        /// Number of observations provided.
        actual: usize,
    },
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Name of the operation that failed.
        operation: &'static str,
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. probability not in [0, 1]).
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The input contained a NaN or infinite value where a finite value is required.
    NonFiniteInput {
        /// Name of the operation that failed.
        operation: &'static str,
    },
    /// A linear system had no unique solution (singular / ill-conditioned matrix).
    SingularMatrix {
        /// Name of the operation that failed.
        operation: &'static str,
    },
    /// The variance of an input was zero where a non-degenerate spread is required.
    ZeroVariance {
        /// Name of the operation that failed.
        operation: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { operation } => {
                write!(f, "{operation}: input is empty")
            }
            StatsError::InsufficientData {
                operation,
                required,
                actual,
            } => write!(
                f,
                "{operation}: requires at least {required} observations, got {actual}"
            ),
            StatsError::LengthMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "{operation}: paired inputs have different lengths ({left} vs {right})"
            ),
            StatsError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            StatsError::NonFiniteInput { operation } => {
                write!(f, "{operation}: input contains NaN or infinite values")
            }
            StatsError::SingularMatrix { operation } => {
                write!(f, "{operation}: matrix is singular or ill-conditioned")
            }
            StatsError::ZeroVariance { operation } => {
                write!(f, "{operation}: input has zero variance")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_input() {
        let err = StatsError::EmptyInput { operation: "mean" };
        assert_eq!(err.to_string(), "mean: input is empty");
    }

    #[test]
    fn display_insufficient_data() {
        let err = StatsError::InsufficientData {
            operation: "pearson",
            required: 2,
            actual: 1,
        };
        assert!(err.to_string().contains("at least 2"));
        assert!(err.to_string().contains("got 1"));
    }

    #[test]
    fn display_length_mismatch() {
        let err = StatsError::LengthMismatch {
            operation: "pearson",
            left: 3,
            right: 5,
        };
        assert!(err.to_string().contains("3 vs 5"));
    }

    #[test]
    fn display_invalid_parameter() {
        let err = StatsError::InvalidParameter {
            parameter: "p",
            message: "must lie in [0, 1]".to_string(),
        };
        assert!(err.to_string().contains('p'));
        assert!(err.to_string().contains("[0, 1]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&StatsError::EmptyInput { operation: "x" });
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StatsError::ZeroVariance { operation: "corr" },
            StatsError::ZeroVariance { operation: "corr" }
        );
        assert_ne!(
            StatsError::ZeroVariance { operation: "corr" },
            StatsError::NonFiniteInput { operation: "corr" }
        );
    }
}
