//! Hypothesis tests behind the fair/unfair verdicts.
//!
//! "All these measures are statistical tests, and whether a result is fair is
//! determined by the computed p-value" (paper §2.3).  The three fairness
//! widgets map onto the tests implemented here:
//!
//! * **FA*IR** uses the binomial test ([`binomial_test`]) on the number of
//!   protected candidates in ranking prefixes.
//! * **Proportion** compares the share of the protected group in the top-k
//!   against its share in the full population with a two-proportion z-test
//!   ([`two_proportion_z_test`]).
//! * **Pairwise** tests whether the probability that a protected item beats a
//!   non-protected item differs from 1/2 with a one-proportion z-test
//!   ([`one_proportion_z_test`]).

use crate::distributions::{binomial_pmf, normal_cdf};
use crate::error::{StatsError, StatsResult};

/// Which tail(s) of the null distribution count as evidence against the null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Alternative {
    /// The statistic is smaller than expected under the null.
    Less,
    /// The statistic is larger than expected under the null.
    Greater,
    /// The statistic differs from the null in either direction.
    TwoSided,
}

impl Alternative {
    /// Human-readable name used in rendered labels.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Alternative::Less => "less",
            Alternative::Greater => "greater",
            Alternative::TwoSided => "two-sided",
        }
    }
}

/// Outcome of a hypothesis test: the observed statistic, its p-value, and the
/// decision at the significance level the caller supplied.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TestResult {
    /// Name of the test (e.g. `"two-proportion z-test"`).
    pub name: String,
    /// Observed test statistic (z value, or observed count for exact tests).
    pub statistic: f64,
    /// p-value of the test under the stated alternative.
    pub p_value: f64,
    /// Alternative hypothesis used.
    pub alternative: Alternative,
    /// Significance level the decision was made at.
    pub alpha: f64,
    /// `true` when the null hypothesis is rejected at level `alpha`.
    pub reject_null: bool,
}

impl TestResult {
    fn new(
        name: &'static str,
        statistic: f64,
        p_value: f64,
        alternative: Alternative,
        alpha: f64,
    ) -> Self {
        TestResult {
            name: name.to_string(),
            statistic,
            p_value,
            alternative,
            alpha,
            reject_null: p_value < alpha,
        }
    }
}

/// One-sample proportion z-test.
///
/// Tests `H0: p = p0` against the given alternative using the normal
/// approximation `z = (p̂ − p0) / sqrt(p0 (1 − p0) / n)`.
///
/// # Errors
/// Returns an error when `n == 0`, `successes > n`, `p0 ∉ (0, 1)`, or
/// `alpha ∉ (0, 1)`.
pub fn one_proportion_z_test(
    successes: u64,
    n: u64,
    p0: f64,
    alternative: Alternative,
    alpha: f64,
) -> StatsResult<TestResult> {
    validate_alpha(alpha)?;
    if n == 0 {
        return Err(StatsError::EmptyInput {
            operation: "one_proportion_z_test",
        });
    }
    if successes > n {
        return Err(StatsError::InvalidParameter {
            parameter: "successes",
            message: format!("successes ({successes}) must not exceed n ({n})"),
        });
    }
    if !(p0 > 0.0 && p0 < 1.0) {
        return Err(StatsError::InvalidParameter {
            parameter: "p0",
            message: format!("null proportion must lie strictly in (0, 1), got {p0}"),
        });
    }
    let p_hat = successes as f64 / n as f64;
    let se = (p0 * (1.0 - p0) / n as f64).sqrt();
    let z = (p_hat - p0) / se;
    let p_value = p_value_from_z(z, alternative);
    Ok(TestResult::new(
        "one-proportion z-test",
        z,
        p_value,
        alternative,
        alpha,
    ))
}

/// Two-sample proportion z-test with a pooled standard error.
///
/// Tests `H0: p1 = p2`.  In the Fairness widget, sample 1 is the top-k and
/// sample 2 is the full dataset, and the protected feature's share is compared
/// between the two.
///
/// # Errors
/// Returns an error when either sample is empty, a success count exceeds its
/// sample size, `alpha ∉ (0, 1)`, or the pooled proportion is degenerate
/// (0 or 1, which makes the z statistic undefined).
pub fn two_proportion_z_test(
    successes1: u64,
    n1: u64,
    successes2: u64,
    n2: u64,
    alternative: Alternative,
    alpha: f64,
) -> StatsResult<TestResult> {
    validate_alpha(alpha)?;
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::EmptyInput {
            operation: "two_proportion_z_test",
        });
    }
    if successes1 > n1 || successes2 > n2 {
        return Err(StatsError::InvalidParameter {
            parameter: "successes",
            message: "success count exceeds sample size".to_string(),
        });
    }
    let p1 = successes1 as f64 / n1 as f64;
    let p2 = successes2 as f64 / n2 as f64;
    let pooled = (successes1 + successes2) as f64 / (n1 + n2) as f64;
    if pooled <= 0.0 || pooled >= 1.0 {
        return Err(StatsError::ZeroVariance {
            operation: "two_proportion_z_test",
        });
    }
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    let z = (p1 - p2) / se;
    let p_value = p_value_from_z(z, alternative);
    Ok(TestResult::new(
        "two-proportion z-test",
        z,
        p_value,
        alternative,
        alpha,
    ))
}

/// Exact binomial test of `H0: p = p0` for `successes` successes out of `n`
/// trials.
///
/// For `Alternative::TwoSided` the p-value sums the probabilities of all
/// outcomes no more likely than the observed one (the standard "small-p"
/// definition, matching `scipy.stats.binomtest`).
///
/// # Errors
/// Returns an error when `successes > n`, `p0 ∉ [0, 1]`, `n == 0`, or
/// `alpha ∉ (0, 1)`.
pub fn binomial_test(
    successes: u64,
    n: u64,
    p0: f64,
    alternative: Alternative,
    alpha: f64,
) -> StatsResult<TestResult> {
    validate_alpha(alpha)?;
    if n == 0 {
        return Err(StatsError::EmptyInput {
            operation: "binomial_test",
        });
    }
    if successes > n {
        return Err(StatsError::InvalidParameter {
            parameter: "successes",
            message: format!("successes ({successes}) must not exceed n ({n})"),
        });
    }
    let p_value = match alternative {
        Alternative::Less => {
            let mut acc = 0.0;
            for k in 0..=successes {
                acc += binomial_pmf(k, n, p0)?;
            }
            acc.min(1.0)
        }
        Alternative::Greater => {
            let mut acc = 0.0;
            for k in successes..=n {
                acc += binomial_pmf(k, n, p0)?;
            }
            acc.min(1.0)
        }
        Alternative::TwoSided => {
            let observed = binomial_pmf(successes, n, p0)?;
            // Sum all outcomes with probability <= observed (with a small
            // tolerance to absorb floating-point noise).
            let mut acc = 0.0;
            for k in 0..=n {
                let pk = binomial_pmf(k, n, p0)?;
                if pk <= observed * (1.0 + 1e-7) {
                    acc += pk;
                }
            }
            acc.min(1.0)
        }
    };
    Ok(TestResult::new(
        "exact binomial test",
        successes as f64,
        p_value,
        alternative,
        alpha,
    ))
}

/// Converts a z statistic into a p-value for the requested alternative.
fn p_value_from_z(z: f64, alternative: Alternative) -> f64 {
    match alternative {
        Alternative::Less => normal_cdf(z),
        Alternative::Greater => 1.0 - normal_cdf(z),
        Alternative::TwoSided => 2.0 * (1.0 - normal_cdf(z.abs())),
    }
    .clamp(0.0, 1.0)
}

fn validate_alpha(alpha: f64) -> StatsResult<()> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter {
            parameter: "alpha",
            message: format!("significance level must lie strictly in (0, 1), got {alpha}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn alternative_names() {
        assert_eq!(Alternative::Less.as_str(), "less");
        assert_eq!(Alternative::Greater.as_str(), "greater");
        assert_eq!(Alternative::TwoSided.as_str(), "two-sided");
    }

    #[test]
    fn one_proportion_null_is_not_rejected() {
        // 50 of 100 at p0 = 0.5 → z = 0, p = 1 (two-sided).
        let r = one_proportion_z_test(50, 100, 0.5, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.statistic, 0.0, 1e-12);
        assert_close(r.p_value, 1.0, 1e-6);
        assert!(!r.reject_null);
    }

    #[test]
    fn one_proportion_strong_deviation_is_rejected() {
        // 10 of 100 at p0 = 0.5 → z = -8, overwhelmingly significant.
        let r = one_proportion_z_test(10, 100, 0.5, Alternative::Less, 0.05).unwrap();
        assert!(r.statistic < -7.0);
        assert!(r.p_value < 1e-10);
        assert!(r.reject_null);
    }

    #[test]
    fn one_proportion_greater_tail() {
        let r = one_proportion_z_test(90, 100, 0.5, Alternative::Greater, 0.05).unwrap();
        assert!(r.statistic > 7.0);
        assert!(r.reject_null);
        // The "less" alternative should NOT be rejected for the same data.
        let r2 = one_proportion_z_test(90, 100, 0.5, Alternative::Less, 0.05).unwrap();
        assert!(!r2.reject_null);
    }

    #[test]
    fn one_proportion_z_matches_hand_computation() {
        // p_hat = 0.4, p0 = 0.5, n = 100: z = (0.4-0.5)/sqrt(0.25/100) = -2.
        let r = one_proportion_z_test(40, 100, 0.5, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.statistic, -2.0, 1e-12);
        assert_close(r.p_value, 0.0455, 2e-4);
        assert!(r.reject_null);
    }

    #[test]
    fn one_proportion_invalid_inputs() {
        assert!(one_proportion_z_test(5, 0, 0.5, Alternative::Less, 0.05).is_err());
        assert!(one_proportion_z_test(11, 10, 0.5, Alternative::Less, 0.05).is_err());
        assert!(one_proportion_z_test(5, 10, 0.0, Alternative::Less, 0.05).is_err());
        assert!(one_proportion_z_test(5, 10, 0.5, Alternative::Less, 1.5).is_err());
    }

    #[test]
    fn two_proportion_equal_proportions_not_rejected() {
        let r = two_proportion_z_test(30, 100, 300, 1000, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.statistic, 0.0, 1e-12);
        assert!(!r.reject_null);
    }

    #[test]
    fn two_proportion_detects_underrepresentation() {
        // Top-k has 1/10 protected; population has 500/1000.
        let r = two_proportion_z_test(1, 10, 500, 1000, Alternative::TwoSided, 0.05).unwrap();
        assert!(r.statistic < -2.0);
        assert!(r.reject_null);
    }

    #[test]
    fn two_proportion_known_value() {
        // p1 = 0.6 (60/100), p2 = 0.5 (50/100), pooled = 0.55.
        // se = sqrt(0.55*0.45*(0.02)) ≈ 0.070356, z ≈ 1.4213.
        let r = two_proportion_z_test(60, 100, 50, 100, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.statistic, 1.4213, 1e-3);
        assert!(!r.reject_null);
    }

    #[test]
    fn two_proportion_degenerate_pooled_is_error() {
        assert!(matches!(
            two_proportion_z_test(0, 10, 0, 10, Alternative::TwoSided, 0.05),
            Err(StatsError::ZeroVariance { .. })
        ));
        assert!(matches!(
            two_proportion_z_test(10, 10, 10, 10, Alternative::TwoSided, 0.05),
            Err(StatsError::ZeroVariance { .. })
        ));
    }

    #[test]
    fn two_proportion_empty_sample_is_error() {
        assert!(two_proportion_z_test(0, 0, 5, 10, Alternative::Less, 0.05).is_err());
    }

    #[test]
    fn binomial_test_less_tail_matches_cdf() {
        // P[X <= 2] for Binomial(10, 0.5) = (1+10+45)/1024.
        let r = binomial_test(2, 10, 0.5, Alternative::Less, 0.05).unwrap();
        assert_close(r.p_value, 56.0 / 1024.0, 1e-12);
        assert!(!r.reject_null);
    }

    #[test]
    fn binomial_test_greater_tail() {
        // P[X >= 9] for Binomial(10, 0.5) = 11/1024 ≈ 0.0107.
        let r = binomial_test(9, 10, 0.5, Alternative::Greater, 0.05).unwrap();
        assert_close(r.p_value, 11.0 / 1024.0, 1e-12);
        assert!(r.reject_null);
    }

    #[test]
    fn binomial_test_two_sided_symmetric_case() {
        // Symmetric p0 = 0.5: two-sided p-value for k=2,n=10 doubles the tail.
        let r = binomial_test(2, 10, 0.5, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.p_value, 2.0 * 56.0 / 1024.0, 1e-9);
    }

    #[test]
    fn binomial_test_observed_equal_expected_p_value_one() {
        let r = binomial_test(5, 10, 0.5, Alternative::TwoSided, 0.05).unwrap();
        assert_close(r.p_value, 1.0, 1e-9);
        assert!(!r.reject_null);
    }

    #[test]
    fn binomial_test_rejects_bad_input() {
        assert!(binomial_test(11, 10, 0.5, Alternative::Less, 0.05).is_err());
        assert!(binomial_test(5, 10, 1.5, Alternative::Less, 0.05).is_err());
        assert!(binomial_test(5, 0, 0.5, Alternative::Less, 0.05).is_err());
    }

    #[test]
    fn p_values_always_in_unit_interval() {
        for succ in 0..=20u64 {
            for &alt in &[
                Alternative::Less,
                Alternative::Greater,
                Alternative::TwoSided,
            ] {
                let r = binomial_test(succ, 20, 0.3, alt, 0.05).unwrap();
                assert!((0.0..=1.0).contains(&r.p_value), "p={}", r.p_value);
                let r = one_proportion_z_test(succ, 20, 0.3, alt, 0.05).unwrap();
                assert!((0.0..=1.0).contains(&r.p_value), "p={}", r.p_value);
            }
        }
    }
}
