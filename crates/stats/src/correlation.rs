//! Correlation measures: Pearson, Spearman and Kendall.
//!
//! The *Ingredients* widget lists "attributes most material to the ranked
//! outcome, in order of importance" — associations "derived with linear models
//! or with other methods, such as rank-aware similarity" (paper §2.1).  The
//! implementation in this workspace estimates attribute importance with both
//! linear-model coefficients ([`crate::regression`]) and the rank correlations
//! defined here.

use crate::descriptive::rank_with_ties;
use crate::error::{StatsError, StatsResult};

/// Pearson product-moment correlation coefficient between two paired slices.
///
/// # Errors
/// Returns an error if the slices differ in length, have fewer than two
/// elements, contain non-finite values, or either has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> StatsResult<f64> {
    validate_pair(x, y, "pearson")?;
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return Err(StatsError::ZeroVariance {
            operation: "pearson",
        });
    }
    Ok(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Spearman rank correlation: Pearson correlation of the rank vectors, using
/// average ranks for ties.
///
/// # Errors
/// Same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> StatsResult<f64> {
    validate_pair(x, y, "spearman")?;
    let rx = rank_with_ties(x)?;
    let ry = rank_with_ties(y)?;
    pearson(&rx, &ry).map_err(|e| match e {
        StatsError::ZeroVariance { .. } => StatsError::ZeroVariance {
            operation: "spearman",
        },
        other => other,
    })
}

/// Kendall rank correlation coefficient (tau-b, which corrects for ties).
///
/// This is the measure Ranking Facts uses to compare two rankings of the same
/// items — e.g. the original ranking against a ranking computed from perturbed
/// scores in the Monte-Carlo stability estimator.
///
/// Runs in O(n²); the rankings involved (tens to a few thousand items) keep
/// this comfortably fast, and the quadratic form handles ties exactly.
///
/// # Errors
/// Returns an error if the slices differ in length, have fewer than two
/// elements, contain non-finite values, or either is entirely tied.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> StatsResult<f64> {
    validate_pair(x, y, "kendall_tau")?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Tied in both: contributes to neither numerator nor denominator.
                continue;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = concordant + discordant + ties_x + ties_y;
    let denom_x = (concordant + discordant + ties_x) as f64;
    let denom_y = (concordant + discordant + ties_y) as f64;
    if n0 == 0 || denom_x == 0.0 || denom_y == 0.0 {
        return Err(StatsError::ZeroVariance {
            operation: "kendall_tau",
        });
    }
    Ok((concordant - discordant) as f64 / (denom_x.sqrt() * denom_y.sqrt()))
}

/// Validates a pair of slices used for correlation.
fn validate_pair(x: &[f64], y: &[f64], operation: &'static str) -> StatsResult<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            operation,
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::InsufficientData {
            operation,
            required: 2,
            actual: x.len(),
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput { operation });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        assert_close(pearson(&x, &y).unwrap(), -1.0);
    }

    #[test]
    fn pearson_known_value() {
        // Anscombe-like small example with hand-computed r.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Σdxdy = 8, sqrt(Σdx²)·sqrt(Σdy²) = sqrt(10)·sqrt(10) = 10 → r = 0.8.
        assert_close(pearson(&x, &y).unwrap(), 0.8);
    }

    #[test]
    fn pearson_zero_variance_is_error() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance { .. })
        ));
    }

    #[test]
    fn pearson_length_mismatch() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn pearson_needs_two_points() {
        assert!(matches!(
            pearson(&[1.0], &[2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert_close(spearman(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn spearman_reverse_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 7.0, 5.0, 1.0];
        assert_close(spearman(&x, &y).unwrap(), -1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho > 0.9 && rho <= 1.0);
    }

    #[test]
    fn kendall_identical_rankings() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(kendall_tau(&x, &x).unwrap(), 1.0);
    }

    #[test]
    fn kendall_reversed_rankings() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_close(kendall_tau(&x, &y).unwrap(), -1.0);
    }

    #[test]
    fn kendall_known_value() {
        // Classic example: one discordant pair among 6 pairs → tau = (5-1)/6 = 0.666...
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        assert_close(kendall_tau(&x, &y).unwrap(), 4.0 / 6.0);
    }

    #[test]
    fn kendall_all_tied_is_error() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance { .. })
        ));
    }

    #[test]
    fn kendall_rejects_nan() {
        assert!(matches!(
            kendall_tau(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn correlations_are_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        assert_close(pearson(&x, &y).unwrap(), pearson(&y, &x).unwrap());
        assert_close(spearman(&x, &y).unwrap(), spearman(&y, &x).unwrap());
        assert_close(kendall_tau(&x, &y).unwrap(), kendall_tau(&y, &x).unwrap());
    }
}
