//! Probability distributions used by the fairness hypothesis tests.
//!
//! * The **normal distribution** backs the z-tests of the proportion and
//!   pairwise fairness measures and the normal approximation used in FA*IR's
//!   p-value computation.
//! * The **binomial distribution** is the heart of FA*IR's ranked group
//!   fairness test: the number of protected candidates in a prefix of length
//!   `k` drawn from a population with protected proportion `p` is modelled as
//!   `Binomial(k, p)`.
//!
//! The normal CDF uses the Abramowitz–Stegun 7.1.26 complementary-error-
//! function approximation (|error| < 1.5e-7) and the quantile uses the
//! Acklam rational approximation refined with one Halley step, which is more
//! than accurate enough for the p-value thresholds (0.01–0.1) used by the
//! label.

use crate::error::{StatsError, StatsResult};

/// Probability density of the standard normal distribution at `x`.
#[must_use]
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution function of the standard normal distribution.
///
/// Uses the Abramowitz–Stegun approximation of erfc; absolute error below
/// 1.5e-7 across the real line.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    // Φ(x) = 0.5 * erfc(-x / sqrt(2))
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function via Abramowitz–Stegun 7.1.26.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Horner evaluation of the A&S polynomial.
    let poly = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        poly
    } else {
        2.0 - poly
    }
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// # Errors
/// Returns an error unless `p` lies strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> StatsResult<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidParameter {
            parameter: "p",
            message: format!("quantile level must lie in (0, 1), got {p}"),
        });
    }
    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Probability mass function of `Binomial(n, p)` at `k`.
///
/// Computed in log space to stay accurate for large `n`.
///
/// # Errors
/// Returns an error unless `p ∈ [0, 1]` and `k ≤ n`.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> StatsResult<f64> {
    validate_binomial(n, p)?;
    if k > n {
        return Err(StatsError::InvalidParameter {
            parameter: "k",
            message: format!("k ({k}) must not exceed n ({n})"),
        });
    }
    if p == 0.0 {
        return Ok(if k == 0 { 1.0 } else { 0.0 });
    }
    if p == 1.0 {
        return Ok(if k == n { 1.0 } else { 0.0 });
    }
    let log_pmf = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    Ok(log_pmf.exp())
}

/// Cumulative distribution function of `Binomial(n, p)`: `P[X ≤ k]`.
///
/// # Errors
/// Returns an error unless `p ∈ [0, 1]`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> StatsResult<f64> {
    validate_binomial(n, p)?;
    if k >= n {
        return Ok(1.0);
    }
    let mut acc = 0.0;
    for i in 0..=k {
        acc += binomial_pmf(i, n, p)?;
    }
    Ok(acc.min(1.0))
}

/// Smallest `k` such that `P[X ≤ k] ≥ q` for `X ~ Binomial(n, p)` — the
/// binomial quantile function.  FA*IR uses the lower `α` quantile to derive
/// the minimum number of protected candidates required in each ranking prefix.
///
/// # Errors
/// Returns an error unless `p ∈ [0, 1]` and `q ∈ [0, 1]`.
pub fn binomial_quantile(q: f64, n: u64, p: f64) -> StatsResult<u64> {
    validate_binomial(n, p)?;
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidParameter {
            parameter: "q",
            message: format!("quantile level must lie in [0, 1], got {q}"),
        });
    }
    if q == 0.0 {
        return Ok(0);
    }
    let mut acc = 0.0;
    for k in 0..=n {
        acc += binomial_pmf(k, n, p)?;
        if acc >= q - 1e-12 {
            return Ok(k);
        }
    }
    Ok(n)
}

/// Natural log of the binomial coefficient `C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` using Stirling's series for large `n` and a direct sum
/// for small `n`.
fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    // Stirling series with three correction terms.
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

fn validate_binomial(_n: u64, p: f64) -> StatsResult<()> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::InvalidParameter {
            parameter: "p",
            message: format!("success probability must lie in [0, 1], got {p}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn normal_pdf_at_zero() {
        assert_close(normal_pdf(0.0), 0.3989422804014327, 1e-12);
    }

    #[test]
    fn normal_pdf_symmetric() {
        assert_close(normal_pdf(1.3), normal_pdf(-1.3), 1e-15);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-6);
        assert_close(normal_cdf(1.0), 0.8413447460685429, 1e-6);
        assert_close(normal_cdf(-1.0), 0.15865525393145707, 1e-6);
        assert_close(normal_cdf(1.959_963_985), 0.975, 1e-6);
        assert_close(normal_cdf(-2.575_829_304), 0.005, 1e-6);
    }

    #[test]
    fn normal_cdf_extremes() {
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 0.000001);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let c = normal_cdf(x);
            assert!(c >= prev);
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[
            0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999,
        ] {
            let x = normal_quantile(p).unwrap();
            assert_close(normal_cdf(x), p, 1e-7);
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        assert_close(normal_quantile(0.5).unwrap(), 0.0, 1e-6);
        assert_close(normal_quantile(0.975).unwrap(), 1.959_963_985, 1e-6);
        assert_close(normal_quantile(0.05).unwrap(), -1.644_853_627, 1e-6);
    }

    #[test]
    fn normal_quantile_rejects_bounds() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn binomial_pmf_small_case() {
        // Binomial(4, 0.5): pmf(2) = 6/16.
        assert_close(binomial_pmf(2, 4, 0.5).unwrap(), 0.375, 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 30;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, p).unwrap()).sum();
        assert_close(total, 1.0, 1e-9);
    }

    #[test]
    fn binomial_pmf_degenerate_p() {
        assert_close(binomial_pmf(0, 10, 0.0).unwrap(), 1.0, 1e-15);
        assert_close(binomial_pmf(3, 10, 0.0).unwrap(), 0.0, 1e-15);
        assert_close(binomial_pmf(10, 10, 1.0).unwrap(), 1.0, 1e-15);
        assert_close(binomial_pmf(9, 10, 1.0).unwrap(), 0.0, 1e-15);
    }

    #[test]
    fn binomial_pmf_k_greater_than_n_is_error() {
        assert!(binomial_pmf(11, 10, 0.5).is_err());
    }

    #[test]
    fn binomial_pmf_invalid_p_is_error() {
        assert!(binomial_pmf(1, 10, 1.5).is_err());
        assert!(binomial_pmf(1, 10, -0.1).is_err());
    }

    #[test]
    fn binomial_cdf_matches_sum() {
        // Binomial(10, 0.4): P[X <= 3] ≈ 0.3822806016.
        assert_close(binomial_cdf(3, 10, 0.4).unwrap(), 0.382_280_601_6, 1e-9);
    }

    #[test]
    fn binomial_cdf_at_n_is_one() {
        assert_close(binomial_cdf(10, 10, 0.7).unwrap(), 1.0, 1e-12);
        assert_close(binomial_cdf(25, 10, 0.7).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn binomial_quantile_basics() {
        // For Binomial(10, 0.5): P[X <= 1] ≈ 0.0107, P[X <= 2] ≈ 0.0547.
        assert_eq!(binomial_quantile(0.05, 10, 0.5).unwrap(), 2);
        assert_eq!(binomial_quantile(0.01, 10, 0.5).unwrap(), 1);
        assert_eq!(binomial_quantile(1.0, 10, 0.5).unwrap(), 10);
        assert_eq!(binomial_quantile(0.0, 10, 0.5).unwrap(), 0);
    }

    #[test]
    fn binomial_quantile_is_fa_star_ir_table() {
        // Table 1 of the FA*IR paper (Zehlike et al. 2017): for p = 0.5 and
        // alpha = 0.1, the minimum number of protected elements in a prefix of
        // size k is floor of the alpha-quantile; spot-check a few positions:
        // k = 4 -> 1, k = 8 -> 2, k = 15 -> 5.
        assert_eq!(binomial_quantile(0.1, 4, 0.5).unwrap(), 1);
        assert_eq!(binomial_quantile(0.1, 8, 0.5).unwrap(), 2);
        assert_eq!(binomial_quantile(0.1, 15, 0.5).unwrap(), 5);
    }

    #[test]
    fn ln_factorial_consistency_small_large() {
        // The Stirling branch must agree with the direct branch at the cut-over.
        let direct: f64 = (2..=255u64).map(|i| (i as f64).ln()).sum();
        assert_close(ln_factorial(255), direct, 1e-9);
        let direct256: f64 = (2..=256u64).map(|i| (i as f64).ln()).sum();
        assert_close(ln_factorial(256), direct256, 1e-6);
    }

    #[test]
    fn large_n_binomial_is_finite_and_normalized() {
        let n = 5000;
        let p = 0.37;
        let pmf_mode = binomial_pmf((n as f64 * p) as u64, n, p).unwrap();
        assert!(pmf_mode.is_finite() && pmf_mode > 0.0);
        let cdf_all = binomial_cdf(n, n, p).unwrap();
        assert_close(cdf_all, 1.0, 1e-9);
    }
}
