//! Ordinary least squares regression.
//!
//! Two widgets of the nutritional label rest on least squares:
//!
//! * The *Stability* widget (Figure 2) fits a straight line to the sorted
//!   score distribution and reports its **slope** as the stability score —
//!   "the stability of the ranking is quantified as the slope of the line
//!   that is fit to the score distribution, at the top-10 and over-all".
//!   That is [`LinearFit`].
//! * The *Ingredients* widget can estimate attribute importance as "the
//!   attributes with the highest learned weights" of a linear model relating
//!   attribute values to the ranking outcome.  That is
//!   [`MultipleRegression`], solved through the normal equations with
//!   Gaussian elimination and partial pivoting.

use crate::error::{StatsError, StatsResult};

/// Result of a simple linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearFit {
    /// Estimated slope.
    pub slope: f64,
    /// Estimated intercept.
    pub intercept: f64,
    /// Coefficient of determination R².  1.0 when the fit is exact; 0.0 when
    /// the model explains nothing beyond the mean (clamped at 0).
    pub r_squared: f64,
    /// Number of observations used in the fit.
    pub n: usize,
}

impl LinearFit {
    /// Fits `y ≈ slope · x + intercept` by least squares.
    ///
    /// # Errors
    /// Returns an error if the inputs differ in length, contain fewer than two
    /// points, contain non-finite values, or `x` has zero variance.
    pub fn fit(x: &[f64], y: &[f64]) -> StatsResult<Self> {
        if x.len() != y.len() {
            return Err(StatsError::LengthMismatch {
                operation: "LinearFit::fit",
                left: x.len(),
                right: y.len(),
            });
        }
        if x.len() < 2 {
            return Err(StatsError::InsufficientData {
                operation: "LinearFit::fit",
                required: 2,
                actual: x.len(),
            });
        }
        if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput {
                operation: "LinearFit::fit",
            });
        }
        let n = x.len() as f64;
        let mean_x = x.iter().sum::<f64>() / n;
        let mean_y = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&xi, &yi) in x.iter().zip(y.iter()) {
            sxx += (xi - mean_x) * (xi - mean_x);
            sxy += (xi - mean_x) * (yi - mean_y);
        }
        if sxx == 0.0 {
            return Err(StatsError::ZeroVariance {
                operation: "LinearFit::fit",
            });
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R² = 1 − SS_res / SS_tot; define it as 1.0 when y is constant (the
        // line reproduces y exactly in that case).
        let ss_tot: f64 = y.iter().map(|yi| (yi - mean_y) * (yi - mean_y)).sum();
        let ss_res: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&xi, &yi)| {
                let pred = slope * xi + intercept;
                (yi - pred) * (yi - pred)
            })
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            (1.0 - ss_res / ss_tot).max(0.0)
        };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            n: x.len(),
        })
    }

    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Multiple linear regression `y ≈ Xβ` (with an implicit intercept column),
/// solved through the normal equations.
///
/// Attribute-importance estimation standardizes the design columns first so
/// that the magnitudes of the coefficients are comparable across attributes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultipleRegression {
    /// Coefficients for each design column, in input order (excluding the intercept).
    pub coefficients: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Coefficient of determination R² (clamped to [0, 1]).
    pub r_squared: f64,
    /// Number of observations used in the fit.
    pub n: usize,
}

impl MultipleRegression {
    /// Fits `y ≈ β₀ + Σ βⱼ xⱼ` by ordinary least squares.
    ///
    /// `columns` is a slice of design columns (each of length `y.len()`).
    ///
    /// # Errors
    /// Returns an error on shape mismatch, insufficient observations
    /// (requires `n > columns.len() + 1` is *not* enforced strictly, but at
    /// least `columns.len() + 1` observations are needed), non-finite input,
    /// or a singular normal-equation matrix (e.g. perfectly collinear columns).
    pub fn fit(columns: &[Vec<f64>], y: &[f64]) -> StatsResult<Self> {
        let p = columns.len();
        let n = y.len();
        if p == 0 {
            return Err(StatsError::EmptyInput {
                operation: "MultipleRegression::fit",
            });
        }
        for col in columns {
            if col.len() != n {
                return Err(StatsError::LengthMismatch {
                    operation: "MultipleRegression::fit",
                    left: col.len(),
                    right: n,
                });
            }
        }
        if n < p + 1 {
            return Err(StatsError::InsufficientData {
                operation: "MultipleRegression::fit",
                required: p + 1,
                actual: n,
            });
        }
        if y.iter().any(|v| !v.is_finite()) || columns.iter().flatten().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput {
                operation: "MultipleRegression::fit",
            });
        }

        // Build the (p+1) x (p+1) normal-equations system  (XᵀX) β = Xᵀy
        // where X has an implicit leading column of ones.
        let dim = p + 1;
        let mut xtx = vec![vec![0.0; dim]; dim];
        let mut xty = vec![0.0; dim];
        for row in 0..n {
            // Design row: [1, x1, x2, ..., xp].
            let mut design = Vec::with_capacity(dim);
            design.push(1.0);
            for col in columns {
                design.push(col[row]);
            }
            for i in 0..dim {
                xty[i] += design[i] * y[row];
                for j in 0..dim {
                    xtx[i][j] += design[i] * design[j];
                }
            }
        }

        let beta = solve_linear_system(&mut xtx, &mut xty)?;

        // Goodness of fit.
        let mean_y = y.iter().sum::<f64>() / n as f64;
        let mut ss_tot = 0.0;
        let mut ss_res = 0.0;
        for row in 0..n {
            let mut pred = beta[0];
            for (j, col) in columns.iter().enumerate() {
                pred += beta[j + 1] * col[row];
            }
            ss_tot += (y[row] - mean_y) * (y[row] - mean_y);
            ss_res += (y[row] - pred) * (y[row] - pred);
        }
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        };

        Ok(MultipleRegression {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            r_squared,
            n,
        })
    }

    /// Predicted value for one observation given its attribute values
    /// (in the same order as the design columns passed to [`fit`](Self::fit)).
    ///
    /// # Errors
    /// Returns an error if `x` does not have one value per coefficient.
    pub fn predict(&self, x: &[f64]) -> StatsResult<f64> {
        if x.len() != self.coefficients.len() {
            return Err(StatsError::LengthMismatch {
                operation: "MultipleRegression::predict",
                left: x.len(),
                right: self.coefficients.len(),
            });
        }
        Ok(self.intercept
            + self
                .coefficients
                .iter()
                .zip(x.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>())
    }
}

/// Solves `A x = b` in place with Gaussian elimination and partial pivoting.
///
/// `a` and `b` are consumed as scratch space.
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> StatsResult<Vec<f64>> {
    let n = b.len();
    debug_assert_eq!(a.len(), n);
    for col in 0..n {
        // Partial pivoting: find the row with the largest absolute value in this column.
        let mut pivot_row = col;
        let mut pivot_val = a[col][col].abs();
        for (row, a_row) in a.iter().enumerate().skip(col + 1) {
            if a_row[col].abs() > pivot_val {
                pivot_val = a_row[col].abs();
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return Err(StatsError::SingularMatrix {
                operation: "solve_linear_system",
            });
        }
        if pivot_row != col {
            a.swap(col, pivot_row);
            b.swap(col, pivot_row);
        }
        // Eliminate below the pivot.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // Split the rows to update `row` while reading pivot row `col`.
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row_slice = &pivot_rows[col];
            for (k, value) in rest[0].iter_mut().enumerate().take(n).skip(col) {
                *value -= factor * pivot_row_slice[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-8, "{a} != {b}");
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert_close(fit.slope, 2.0);
        assert_close(fit.intercept, 1.0);
        assert_close(fit.r_squared, 1.0);
        assert_eq!(fit.n, 4);
    }

    #[test]
    fn linear_fit_noisy_line_has_sub_unit_r_squared() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.slope > 0.9 && fit.slope < 1.1);
        assert!(fit.r_squared > 0.97 && fit.r_squared < 1.0);
    }

    #[test]
    fn linear_fit_constant_y_has_zero_slope() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert_close(fit.slope, 0.0);
        assert_close(fit.intercept, 5.0);
        assert_close(fit.r_squared, 1.0);
    }

    #[test]
    fn linear_fit_constant_x_is_error() {
        assert!(matches!(
            LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance { .. })
        ));
    }

    #[test]
    fn linear_fit_predict() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert_close(fit.predict(3.0), 6.0);
    }

    #[test]
    fn linear_fit_length_mismatch() {
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0, 3.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn linear_fit_rejects_nan() {
        assert!(matches!(
            LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn multiple_regression_recovers_exact_coefficients() {
        // y = 1 + 2*x1 - 3*x2, noiseless.
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x2 = vec![0.5, 1.5, 1.0, 3.0, 2.0, 4.0];
        let y: Vec<f64> = x1
            .iter()
            .zip(x2.iter())
            .map(|(a, b)| 1.0 + 2.0 * a - 3.0 * b)
            .collect();
        let fit = MultipleRegression::fit(&[x1, x2], &y).unwrap();
        assert_close(fit.intercept, 1.0);
        assert_close(fit.coefficients[0], 2.0);
        assert_close(fit.coefficients[1], -3.0);
        assert_close(fit.r_squared, 1.0);
    }

    #[test]
    fn multiple_regression_single_column_matches_simple() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = vec![2.1, 3.9, 6.2, 8.0, 9.8];
        let simple = LinearFit::fit(&x, &y).unwrap();
        let multi = MultipleRegression::fit(&[x], &y).unwrap();
        assert_close(simple.slope, multi.coefficients[0]);
        assert_close(simple.intercept, multi.intercept);
    }

    #[test]
    fn multiple_regression_collinear_columns_is_singular() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let x2 = vec![2.0, 4.0, 6.0, 8.0]; // exactly 2 * x1
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(
            MultipleRegression::fit(&[x1, x2], &y),
            Err(StatsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn multiple_regression_insufficient_rows() {
        let x1 = vec![1.0, 2.0];
        let x2 = vec![3.0, 4.0];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            MultipleRegression::fit(&[x1, x2], &y),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn multiple_regression_predict_roundtrip() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2 = vec![5.0, 3.0, 8.0, 1.0, 9.0];
        let y: Vec<f64> = x1
            .iter()
            .zip(x2.iter())
            .map(|(a, b)| 0.5 + 1.5 * a + 0.25 * b)
            .collect();
        let fit = MultipleRegression::fit(&[x1, x2], &y).unwrap();
        assert_close(fit.predict(&[2.0, 3.0]).unwrap(), 0.5 + 3.0 + 0.75);
    }

    #[test]
    fn multiple_regression_predict_wrong_arity() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let fit = MultipleRegression::fit(&[x1], &y).unwrap();
        assert!(fit.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn multiple_regression_empty_design_is_error() {
        assert!(matches!(
            MultipleRegression::fit(&[], &[1.0, 2.0]),
            Err(StatsError::EmptyInput { .. })
        ));
    }
}
