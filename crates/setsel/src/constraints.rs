//! Per-category floor and ceiling constraints.
//!
//! The EDBT 2018 formulation attaches to every category `g` of the grouping
//! attribute a **floor** `ℓ_g` (select at least this many items of `g`) and a
//! **ceiling** `u_g` (select at most this many).  Fairness constraints are
//! floors on protected categories; diversity constraints are ceilings that
//! stop any one category from crowding out the rest.

use crate::error::{SetSelError, SetSelResult};
use crate::items::{category_counts, Candidate};

/// Floor and ceiling for one category.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GroupConstraint {
    /// Category of the grouping attribute.
    pub category: String,
    /// Minimum number of selected items from this category.
    pub floor: usize,
    /// Maximum number of selected items from this category.
    pub ceiling: usize,
}

impl GroupConstraint {
    /// Creates a constraint.
    ///
    /// # Errors
    /// Returns an error when the floor exceeds the ceiling or the ceiling is
    /// zero (a category that may never be selected should simply be filtered
    /// out of the candidates instead).
    pub fn new(category: impl Into<String>, floor: usize, ceiling: usize) -> SetSelResult<Self> {
        let category = category.into();
        if ceiling == 0 {
            return Err(SetSelError::InvalidConstraint {
                category,
                message: "ceiling must be at least 1".to_string(),
            });
        }
        if floor > ceiling {
            return Err(SetSelError::InvalidConstraint {
                category,
                message: format!("floor {floor} exceeds ceiling {ceiling}"),
            });
        }
        Ok(GroupConstraint {
            category,
            floor,
            ceiling,
        })
    }

    /// A pure fairness constraint: at least `floor`, no upper bound (the
    /// ceiling is set to `usize::MAX` and later clamped to `k`).
    ///
    /// # Errors
    /// Never fails for `floor ≥ 0`; kept fallible for interface symmetry.
    pub fn at_least(category: impl Into<String>, floor: usize) -> SetSelResult<Self> {
        GroupConstraint::new(category, floor, usize::MAX)
    }

    /// A pure diversity constraint: at most `ceiling`, no lower bound.
    ///
    /// # Errors
    /// Returns an error when `ceiling` is zero.
    pub fn at_most(category: impl Into<String>, ceiling: usize) -> SetSelResult<Self> {
        GroupConstraint::new(category, 0, ceiling)
    }
}

/// A set of per-category constraints plus the selection size `k`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConstraintSet {
    /// Selection size.
    pub k: usize,
    constraints: Vec<GroupConstraint>,
}

impl ConstraintSet {
    /// Creates a constraint set for selections of size `k`.
    ///
    /// Categories without an explicit constraint are unconstrained
    /// (floor 0, ceiling `k`).
    ///
    /// # Errors
    /// Returns an error when `k` is zero, a category appears twice, or the
    /// floors alone already exceed `k`.
    pub fn new(k: usize, constraints: Vec<GroupConstraint>) -> SetSelResult<Self> {
        if k == 0 {
            return Err(SetSelError::InvalidK { k, n: 0 });
        }
        for (i, c) in constraints.iter().enumerate() {
            if constraints[..i].iter().any(|p| p.category == c.category) {
                return Err(SetSelError::InvalidConstraint {
                    category: c.category.clone(),
                    message: "category is constrained more than once".to_string(),
                });
            }
        }
        let floor_sum: usize = constraints.iter().map(|c| c.floor).sum();
        if floor_sum > k {
            return Err(SetSelError::Infeasible {
                message: format!("floors add up to {floor_sum} but only {k} items are selected"),
            });
        }
        Ok(ConstraintSet { k, constraints })
    }

    /// A constraint set with no per-category bounds (plain top-k selection).
    ///
    /// # Errors
    /// Returns an error when `k` is zero.
    pub fn unconstrained(k: usize) -> SetSelResult<Self> {
        ConstraintSet::new(k, Vec::new())
    }

    /// The explicit per-category constraints.
    #[must_use]
    pub fn constraints(&self) -> &[GroupConstraint] {
        &self.constraints
    }

    /// Floor for `category` (0 when unconstrained).
    #[must_use]
    pub fn floor(&self, category: &str) -> usize {
        self.constraints
            .iter()
            .find(|c| c.category == category)
            .map_or(0, |c| c.floor)
    }

    /// Ceiling for `category`, clamped to `k` (`k` when unconstrained).
    #[must_use]
    pub fn ceiling(&self, category: &str) -> usize {
        self.constraints
            .iter()
            .find(|c| c.category == category)
            .map_or(self.k, |c| c.ceiling.min(self.k))
    }

    /// Checks that *some* selection of size `k` from `candidates` can satisfy
    /// every floor and ceiling.
    ///
    /// Feasibility requires: every floor is backed by enough candidates of
    /// that category, the floors fit within `k`, and the ceilings leave
    /// enough room to reach `k` at all.
    ///
    /// # Errors
    /// Returns [`SetSelError::Infeasible`] describing the first violated
    /// requirement, or [`SetSelError::InvalidK`] when the pool is smaller
    /// than `k`.
    pub fn check_feasible(&self, candidates: &[Candidate]) -> SetSelResult<()> {
        if candidates.len() < self.k {
            return Err(SetSelError::InvalidK {
                k: self.k,
                n: candidates.len(),
            });
        }
        let counts = category_counts(candidates);
        let count_of = |category: &str| -> usize {
            counts
                .iter()
                .find(|(c, _)| c == category)
                .map_or(0, |(_, n)| *n)
        };
        for constraint in &self.constraints {
            let available = count_of(&constraint.category);
            if available < constraint.floor {
                return Err(SetSelError::Infeasible {
                    message: format!(
                        "category `{}` must contribute at least {} items but only {} \
                         candidates exist",
                        constraint.category, constraint.floor, available
                    ),
                });
            }
        }
        // Ceilings must leave room to fill k positions: the capacity of every
        // category (ceiling for constrained, full count for unconstrained)
        // must add up to at least k.
        let capacity: usize = counts
            .iter()
            .map(|(category, count)| self.ceiling(category).min(*count))
            .sum();
        if capacity < self.k {
            return Err(SetSelError::Infeasible {
                message: format!(
                    "ceilings cap the selection at {capacity} items but k = {}",
                    self.k
                ),
            });
        }
        Ok(())
    }

    /// Whether a concrete selection satisfies every floor and ceiling and has
    /// exactly `k` items.
    #[must_use]
    pub fn is_satisfied_by(&self, selection: &[Candidate]) -> bool {
        if selection.len() != self.k {
            return false;
        }
        let counts = category_counts(selection);
        // Ceilings for every selected category.
        for (category, count) in &counts {
            if *count > self.ceiling(category) {
                return false;
            }
        }
        // Floors, including categories absent from the selection.
        for constraint in &self.constraints {
            let selected = counts
                .iter()
                .find(|(c, _)| c == &constraint.category)
                .map_or(0, |(_, n)| *n);
            if selected < constraint.floor {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(index: usize, utility: f64, category: &str) -> Candidate {
        Candidate::new(index, utility, category).unwrap()
    }

    #[test]
    fn group_constraint_validation() {
        assert!(GroupConstraint::new("a", 2, 1).is_err());
        assert!(GroupConstraint::new("a", 0, 0).is_err());
        assert!(GroupConstraint::new("a", 1, 1).is_ok());
        let c = GroupConstraint::at_least("p", 3).unwrap();
        assert_eq!(c.floor, 3);
        assert_eq!(c.ceiling, usize::MAX);
        let c = GroupConstraint::at_most("q", 2).unwrap();
        assert_eq!(c.floor, 0);
        assert_eq!(c.ceiling, 2);
        assert!(GroupConstraint::at_most("q", 0).is_err());
    }

    #[test]
    fn constraint_set_rejects_inconsistencies() {
        assert!(ConstraintSet::new(0, vec![]).is_err());
        let duplicated = vec![
            GroupConstraint::at_least("a", 1).unwrap(),
            GroupConstraint::at_most("a", 2).unwrap(),
        ];
        assert!(matches!(
            ConstraintSet::new(5, duplicated),
            Err(SetSelError::InvalidConstraint { .. })
        ));
        let too_many_floors = vec![
            GroupConstraint::at_least("a", 3).unwrap(),
            GroupConstraint::at_least("b", 3).unwrap(),
        ];
        assert!(matches!(
            ConstraintSet::new(5, too_many_floors),
            Err(SetSelError::Infeasible { .. })
        ));
    }

    #[test]
    fn floors_and_ceilings_default_sensibly() {
        let set = ConstraintSet::new(
            4,
            vec![
                GroupConstraint::new("a", 1, 2).unwrap(),
                GroupConstraint::at_least("b", 1).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(set.floor("a"), 1);
        assert_eq!(set.ceiling("a"), 2);
        // at_least ceilings are clamped to k.
        assert_eq!(set.ceiling("b"), 4);
        // Unknown categories are unconstrained.
        assert_eq!(set.floor("zzz"), 0);
        assert_eq!(set.ceiling("zzz"), 4);
        assert_eq!(set.constraints().len(), 2);
    }

    #[test]
    fn feasibility_checks_pool_size_floors_and_ceilings() {
        let pool = vec![
            candidate(0, 5.0, "a"),
            candidate(1, 4.0, "a"),
            candidate(2, 3.0, "b"),
            candidate(3, 2.0, "b"),
        ];
        // Pool smaller than k.
        let set = ConstraintSet::unconstrained(5).unwrap();
        assert!(matches!(
            set.check_feasible(&pool),
            Err(SetSelError::InvalidK { .. })
        ));
        // Floor higher than the number of candidates in the category.
        let set = ConstraintSet::new(3, vec![GroupConstraint::at_least("b", 3).unwrap()]).unwrap();
        assert!(matches!(
            set.check_feasible(&pool),
            Err(SetSelError::Infeasible { .. })
        ));
        // Ceilings too tight to ever reach k.
        let set = ConstraintSet::new(
            4,
            vec![
                GroupConstraint::at_most("a", 1).unwrap(),
                GroupConstraint::at_most("b", 1).unwrap(),
            ],
        )
        .unwrap();
        assert!(matches!(
            set.check_feasible(&pool),
            Err(SetSelError::Infeasible { .. })
        ));
        // A satisfiable configuration.
        let set = ConstraintSet::new(
            3,
            vec![
                GroupConstraint::at_least("b", 1).unwrap(),
                GroupConstraint::at_most("a", 2).unwrap(),
            ],
        )
        .unwrap();
        assert!(set.check_feasible(&pool).is_ok());
    }

    #[test]
    fn satisfaction_checks_size_floors_and_ceilings() {
        let set = ConstraintSet::new(
            3,
            vec![
                GroupConstraint::at_least("b", 1).unwrap(),
                GroupConstraint::at_most("a", 2).unwrap(),
            ],
        )
        .unwrap();
        let good = vec![
            candidate(0, 5.0, "a"),
            candidate(1, 4.0, "a"),
            candidate(2, 3.0, "b"),
        ];
        assert!(set.is_satisfied_by(&good));
        // Wrong size.
        assert!(!set.is_satisfied_by(&good[..2]));
        // Floor violated.
        let no_b = vec![
            candidate(0, 5.0, "a"),
            candidate(1, 4.0, "a"),
            candidate(4, 1.0, "c"),
        ];
        assert!(!set.is_satisfied_by(&no_b));
        // Ceiling violated.
        let all_a = vec![
            candidate(0, 5.0, "a"),
            candidate(1, 4.0, "a"),
            candidate(5, 3.5, "a"),
        ];
        assert!(!set.is_satisfied_by(&all_a));
    }
}
