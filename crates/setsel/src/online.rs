//! Online (streaming, irrevocable) constrained selection.
//!
//! Candidates arrive one at a time; each must be accepted or rejected on the
//! spot and decisions cannot be revisited — the secretary setting of the
//! EDBT 2018 paper.  The selector knows the stream length and the per-category
//! composition (how many candidates of each category will arrive — the
//! paper's "known statistics, unknown order" assumption) but not the
//! utilities or arrival order of future candidates.
//!
//! Two strategies are provided:
//!
//! * [`OnlineStrategy::Greedy`] — accept every admissible candidate until the
//!   quota is full.  Simple, constraint-satisfying, but utility-blind: early
//!   mediocre candidates crowd out later excellent ones.
//! * [`OnlineStrategy::Warmup`] — the secretary-style strategy: observe a
//!   fraction of the stream without (voluntarily) accepting, derive a
//!   per-category utility threshold from the observations, then accept
//!   candidates that beat their category threshold.  The threshold for
//!   category `g` is the `t_g`-th best utility observed for `g`, where `t_g`
//!   is the number of `g`-items the selector expects to pick overall (its
//!   floor plus a composition-proportional share of the unreserved slots,
//!   capped by its ceiling) — the multiple-choice generalization of the
//!   classic best-seen-so-far secretary threshold.
//!
//! Both strategies share the same safety net: a candidate is **force-accepted**
//! when rejecting it would make a floor unsatisfiable or leave too few future
//! candidates to fill all `k` positions, and **force-rejected** when its
//! category ceiling is reached or accepting it would eat a slot earmarked for
//! an unmet floor.  As a result every run on a feasible stream returns exactly
//! `k` items satisfying all constraints; only the achieved utility varies.

use crate::constraints::ConstraintSet;
use crate::error::{SetSelError, SetSelResult};
use crate::items::Candidate;
use crate::offline::Selection;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Decision strategy of the online selector.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OnlineStrategy {
    /// Accept every admissible candidate until `k` are selected.
    Greedy,
    /// Observe `warmup_fraction` of the stream, learn per-category utility
    /// thresholds, then accept only above-threshold candidates (plus the
    /// forced accepts required to stay feasible).
    Warmup {
        /// Fraction of the stream observed before accepting voluntarily.
        /// The classic secretary argument suggests `1/e ≈ 0.37`.
        warmup_fraction: f64,
    },
}

impl OnlineStrategy {
    /// The classic secretary warm-up of `1/e` of the stream.
    #[must_use]
    pub fn secretary() -> Self {
        OnlineStrategy::Warmup {
            warmup_fraction: 1.0 / std::f64::consts::E,
        }
    }
}

/// Per-category bookkeeping used during a run.
#[derive(Debug, Clone)]
struct CategoryState {
    category: String,
    selected: usize,
    total_in_stream: usize,
    remaining_in_stream: usize,
    observed_utilities: Vec<f64>,
    threshold: f64,
}

impl CategoryState {
    /// Sets the acceptance threshold from the warm-up observations: the
    /// `target`-th best utility seen for this category (the worst seen when
    /// fewer than `target` were observed, "accept anything" when none were).
    fn finalize_threshold(&mut self, target: usize) {
        if self.observed_utilities.is_empty() {
            self.threshold = f64::NEG_INFINITY;
            return;
        }
        let mut sorted = self.observed_utilities.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let rank = target.max(1).min(sorted.len());
        self.threshold = sorted[rank - 1];
    }
}

/// The online selector: constraints plus a decision strategy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OnlineSelector {
    /// The floors, ceilings and selection size to enforce.
    pub constraints: ConstraintSet,
    /// The decision strategy.
    pub strategy: OnlineStrategy,
}

impl OnlineSelector {
    /// Creates a selector.
    ///
    /// # Errors
    /// Returns an error when the warm-up fraction lies outside `[0, 1)`.
    pub fn new(constraints: ConstraintSet, strategy: OnlineStrategy) -> SetSelResult<Self> {
        if let OnlineStrategy::Warmup { warmup_fraction } = strategy {
            if !(0.0..1.0).contains(&warmup_fraction) {
                return Err(SetSelError::InvalidParameter {
                    parameter: "warmup_fraction",
                    message: format!("must lie in [0, 1), got {warmup_fraction}"),
                });
            }
        }
        Ok(OnlineSelector {
            constraints,
            strategy,
        })
    }

    /// Runs the selector over `stream` in the given arrival order.
    ///
    /// # Errors
    /// Returns an error when the stream (as a whole) cannot satisfy the
    /// constraints, so that no online strategy could succeed either.
    pub fn run(&self, stream: &[Candidate]) -> SetSelResult<Selection> {
        self.constraints.check_feasible(stream)?;
        let k = self.constraints.k;
        let n = stream.len();
        let warmup_len = match self.strategy {
            OnlineStrategy::Greedy => 0,
            OnlineStrategy::Warmup { warmup_fraction } => {
                // Never let the warm-up swallow the whole stream.
                ((n as f64 * warmup_fraction).floor() as usize).min(n.saturating_sub(k))
            }
        };

        // Per-category state, seeded with the stream composition.
        let mut states: Vec<CategoryState> = Vec::new();
        for candidate in stream {
            match states.iter_mut().find(|s| s.category == candidate.category) {
                Some(state) => {
                    state.total_in_stream += 1;
                    state.remaining_in_stream += 1;
                }
                None => states.push(CategoryState {
                    category: candidate.category.clone(),
                    selected: 0,
                    total_in_stream: 1,
                    remaining_in_stream: 1,
                    observed_utilities: Vec::new(),
                    threshold: f64::NEG_INFINITY,
                }),
            }
        }

        // How many items the selector expects to take from each category: its
        // floor plus a composition-proportional share of the unreserved slots,
        // capped by its ceiling.  This is the `t_g` of the threshold rule.
        let floor_sum: usize = states
            .iter()
            .map(|s| self.constraints.floor(&s.category))
            .sum();
        let free_budget = k.saturating_sub(floor_sum);
        let targets: Vec<usize> = states
            .iter()
            .map(|s| {
                let share =
                    (free_budget as f64 * s.total_in_stream as f64 / n as f64).round() as usize;
                (self.constraints.floor(&s.category) + share)
                    .min(self.constraints.ceiling(&s.category))
                    .max(1)
            })
            .collect();

        let mut selected: Vec<Candidate> = Vec::with_capacity(k);
        let mut forced = 0usize;
        let mut thresholds_ready = warmup_len == 0;

        for (position, candidate) in stream.iter().enumerate() {
            if selected.len() == k {
                break;
            }
            // End of the warm-up: freeze the per-category thresholds.
            if !thresholds_ready && position >= warmup_len {
                for (state, &target) in states.iter_mut().zip(targets.iter()) {
                    state.finalize_threshold(target);
                }
                thresholds_ready = true;
            }

            let state_index = states
                .iter()
                .position(|s| s.category == candidate.category)
                .expect("every stream category was registered");

            // This candidate is no longer "remaining" whatever we decide.
            states[state_index].remaining_in_stream -= 1;

            // Warm-up observation.
            if position < warmup_len {
                states[state_index]
                    .observed_utilities
                    .push(candidate.utility);
            }

            let ceiling = self.constraints.ceiling(&candidate.category);
            if states[state_index].selected >= ceiling {
                continue; // Hard reject: ceiling reached.
            }

            // Outstanding floor deficits.
            let deficit_of = |s: &CategoryState| {
                self.constraints
                    .floor(&s.category)
                    .saturating_sub(s.selected)
            };
            let total_deficit: usize = states.iter().map(deficit_of).sum();
            let own_deficit = deficit_of(&states[state_index]);
            let open_slots = k - selected.len();
            let free_slots = open_slots - total_deficit;

            // Accepting a candidate of a non-deficit category must not eat a
            // slot earmarked for an unmet floor.
            let admissible = own_deficit > 0 || free_slots > 0;
            if !admissible {
                continue;
            }

            // Forced accept 1: rejecting would leave too few candidates of
            // this category to meet its floor.
            let forced_floor =
                own_deficit > 0 && states[state_index].remaining_in_stream < own_deficit;

            // Forced accept 2: rejecting would leave too little admissible
            // capacity in the rest of the stream to fill all open slots.
            let capacity_after: usize = states
                .iter()
                .map(|s| {
                    let headroom = self.constraints.ceiling(&s.category) - s.selected;
                    s.remaining_in_stream.min(headroom)
                })
                .sum();
            let forced_capacity = capacity_after < open_slots;

            let voluntary = if position < warmup_len {
                false
            } else {
                match self.strategy {
                    OnlineStrategy::Greedy => true,
                    OnlineStrategy::Warmup { .. } => {
                        let threshold = states[state_index].threshold;
                        threshold == f64::NEG_INFINITY || candidate.utility >= threshold
                    }
                }
            };

            if forced_floor || forced_capacity || voluntary {
                if forced_floor || forced_capacity {
                    forced += 1;
                }
                states[state_index].selected += 1;
                selected.push(candidate.clone());
            }
        }

        debug_assert_eq!(
            selected.len(),
            k,
            "forced accepts guarantee a feasible stream fills all k positions"
        );
        Ok(Selection::from_run(selected, forced))
    }

    /// Runs the selector over `candidates` presented in a uniformly random
    /// arrival order (deterministic for a given `seed`) — the random-order
    /// secretary assumption of the paper's analysis.
    ///
    /// # Errors
    /// Same as [`OnlineSelector::run`].
    pub fn run_shuffled(&self, candidates: &[Candidate], seed: u64) -> SetSelResult<Selection> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut stream = candidates.to_vec();
        stream.shuffle(&mut rng);
        self.run(&stream)
    }
}

impl Selection {
    /// Builds a [`Selection`] from an online run (crate-internal).
    pub(crate) fn from_run(items: Vec<Candidate>, forced: usize) -> Self {
        let mut selection = Selection {
            items,
            total_utility: 0.0,
            category_counts: Vec::new(),
            forced_by_floors: forced,
        };
        selection.total_utility = crate::items::total_utility(&selection.items);
        selection.category_counts = crate::items::category_counts(&selection.items);
        selection.items.sort_by(|a, b| {
            b.utility
                .partial_cmp(&a.utility)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.index.cmp(&b.index))
        });
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::GroupConstraint;

    fn candidate(index: usize, utility: f64, category: &str) -> Candidate {
        Candidate::new(index, utility, category).unwrap()
    }

    /// 12 candidates, two categories; "b" is systematically weaker.
    fn pool() -> Vec<Candidate> {
        let mut pool = Vec::new();
        for i in 0..8 {
            pool.push(candidate(i, 100.0 - i as f64, "a"));
        }
        for i in 8..12 {
            pool.push(candidate(i, 50.0 - i as f64, "b"));
        }
        pool
    }

    fn constraints() -> ConstraintSet {
        ConstraintSet::new(
            6,
            vec![
                GroupConstraint::at_least("b", 2).unwrap(),
                GroupConstraint::at_most("a", 4).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn warmup_fraction_is_validated() {
        let c = ConstraintSet::unconstrained(2).unwrap();
        assert!(OnlineSelector::new(
            c.clone(),
            OnlineStrategy::Warmup {
                warmup_fraction: 1.0
            }
        )
        .is_err());
        assert!(OnlineSelector::new(
            c.clone(),
            OnlineStrategy::Warmup {
                warmup_fraction: -0.1
            }
        )
        .is_err());
        assert!(OnlineSelector::new(c, OnlineStrategy::secretary()).is_ok());
    }

    #[test]
    fn greedy_takes_the_earliest_admissible_candidates() {
        let selector = OnlineSelector::new(
            ConstraintSet::unconstrained(3).unwrap(),
            OnlineStrategy::Greedy,
        )
        .unwrap();
        let stream = vec![
            candidate(0, 1.0, "a"),
            candidate(1, 2.0, "a"),
            candidate(2, 99.0, "a"),
            candidate(3, 98.0, "a"),
        ];
        let selection = selector.run(&stream).unwrap();
        // Greedy grabs the first three regardless of the better late arrivals.
        let mut indices = selection.indices();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn every_run_satisfies_the_constraints() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        for seed in 0..25 {
            let selection = selector.run_shuffled(&pool(), seed).unwrap();
            assert!(
                selector.constraints.is_satisfied_by(&selection.items),
                "constraints violated for seed {seed}: {:?}",
                selection.category_counts
            );
            assert_eq!(selection.items.len(), 6);
        }
    }

    #[test]
    fn greedy_also_always_satisfies_the_constraints() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::Greedy).unwrap();
        for seed in 0..25 {
            let selection = selector.run_shuffled(&pool(), seed).unwrap();
            assert!(selector.constraints.is_satisfied_by(&selection.items));
        }
    }

    #[test]
    fn online_never_beats_offline() {
        let offline = crate::offline::offline_select(&pool(), &constraints()).unwrap();
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        for seed in 0..25 {
            let online = selector.run_shuffled(&pool(), seed).unwrap();
            assert!(online.total_utility <= offline.total_utility + 1e-12);
        }
    }

    #[test]
    fn warmup_beats_greedy_on_adversarially_ordered_streams() {
        // Stream that starts with the weakest candidates: greedy fills up on
        // them, the warm-up strategy learns to wait.
        let mut stream = pool();
        stream.sort_by(|a, b| a.utility.partial_cmp(&b.utility).unwrap());
        let constraints = ConstraintSet::unconstrained(4).unwrap();
        let greedy = OnlineSelector::new(constraints.clone(), OnlineStrategy::Greedy)
            .unwrap()
            .run(&stream)
            .unwrap();
        let warmup = OnlineSelector::new(constraints, OnlineStrategy::secretary())
            .unwrap()
            .run(&stream)
            .unwrap();
        assert!(warmup.total_utility > greedy.total_utility);
    }

    #[test]
    fn floors_are_met_even_when_protected_items_arrive_last() {
        // All "b" candidates arrive at the very end of the stream.
        let mut stream: Vec<Candidate> = pool().into_iter().filter(|c| c.category == "a").collect();
        stream.extend(pool().into_iter().filter(|c| c.category == "b"));
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        let selection = selector.run(&stream).unwrap();
        assert!(selector.constraints.is_satisfied_by(&selection.items));
        let b_count = selection
            .category_counts
            .iter()
            .find(|(c, _)| c == "b")
            .map_or(0, |(_, n)| *n);
        // The floor is met even though every protected candidate arrived after
        // the warm-up and after most of the non-protected candidates.
        assert!(b_count >= 2);
        assert_eq!(selection.items.len(), 6);
    }

    #[test]
    fn ceilings_are_respected_even_when_one_category_floods_the_stream() {
        // Only the ceiling keeps "a" from taking everything.
        let selector = OnlineSelector::new(
            ConstraintSet::new(4, vec![GroupConstraint::at_most("a", 2).unwrap()]).unwrap(),
            OnlineStrategy::Greedy,
        )
        .unwrap();
        let selection = selector.run(&pool()).unwrap();
        let a_count = selection
            .category_counts
            .iter()
            .find(|(c, _)| c == "a")
            .map_or(0, |(_, n)| *n);
        assert!(a_count <= 2);
        assert_eq!(selection.items.len(), 4);
    }

    #[test]
    fn infeasible_streams_are_rejected_up_front() {
        let selector = OnlineSelector::new(
            ConstraintSet::new(4, vec![GroupConstraint::at_least("zzz", 1).unwrap()]).unwrap(),
            OnlineStrategy::Greedy,
        )
        .unwrap();
        assert!(matches!(
            selector.run(&pool()),
            Err(SetSelError::Infeasible { .. })
        ));
    }

    #[test]
    fn shuffled_runs_are_deterministic_per_seed() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        let a = selector.run_shuffled(&pool(), 9).unwrap();
        let b = selector.run_shuffled(&pool(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_equal_to_stream_length_selects_everything_feasible() {
        let stream = vec![
            candidate(0, 3.0, "a"),
            candidate(1, 2.0, "b"),
            candidate(2, 1.0, "a"),
        ];
        let selector = OnlineSelector::new(
            ConstraintSet::unconstrained(3).unwrap(),
            OnlineStrategy::secretary(),
        )
        .unwrap();
        let selection = selector.run(&stream).unwrap();
        assert_eq!(selection.items.len(), 3);
        assert_eq!(selection.total_utility, 6.0);
    }
}
