//! Offline (full-information) constrained selection.
//!
//! With all candidates known up front, the floor-first greedy is optimal for
//! additive utility: any feasible selection must contain at least `ℓ_g`
//! items of every constrained category, and swapping any of them for a
//! higher-utility item of the same category preserves feasibility, so the
//! floors may as well be filled with each category's best candidates.  The
//! remaining positions then form a partition-matroid problem (per-category
//! ceilings), for which plain greedy by utility is optimal.
//!
//! The offline optimum is the baseline the online strategies of [`crate::online`]
//! are measured against, exactly as in the EDBT 2018 evaluation.

use crate::constraints::ConstraintSet;
use crate::error::SetSelResult;
use crate::items::{category_counts, total_utility, Candidate};

/// A completed selection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Selection {
    /// The selected candidates, highest utility first.
    pub items: Vec<Candidate>,
    /// Sum of the selected utilities.
    pub total_utility: f64,
    /// Number of selected items per category (first-appearance order).
    pub category_counts: Vec<(String, usize)>,
    /// How many selected items were taken purely to satisfy a floor (i.e.
    /// they would not have made the cut on utility alone).
    pub forced_by_floors: usize,
}

impl Selection {
    fn from_items(mut items: Vec<Candidate>, forced_by_floors: usize) -> Self {
        items.sort_by(|a, b| {
            b.utility
                .partial_cmp(&a.utility)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.index.cmp(&b.index))
        });
        let total_utility = total_utility(&items);
        let category_counts = category_counts(&items);
        Selection {
            items,
            total_utility,
            category_counts,
            forced_by_floors,
        }
    }

    /// Row indices of the selected items, highest utility first.
    #[must_use]
    pub fn indices(&self) -> Vec<usize> {
        self.items.iter().map(|c| c.index).collect()
    }
}

/// Selects the utility-maximizing set of `constraints.k` candidates that
/// satisfies every floor and ceiling.
///
/// # Errors
/// Returns an error when the constraint set is infeasible for `candidates`
/// or a candidate carries a non-finite utility.
pub fn offline_select(
    candidates: &[Candidate],
    constraints: &ConstraintSet,
) -> SetSelResult<Selection> {
    constraints.check_feasible(candidates)?;

    // Candidate positions sorted by utility, best first (stable on index so
    // results are deterministic under ties).
    let mut by_utility: Vec<usize> = (0..candidates.len()).collect();
    by_utility.sort_by(|&a, &b| {
        candidates[b]
            .utility
            .partial_cmp(&candidates[a].utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| candidates[a].index.cmp(&candidates[b].index))
    });

    let mut taken = vec![false; candidates.len()];
    let mut selected: Vec<Candidate> = Vec::with_capacity(constraints.k);
    let mut per_category: Vec<(String, usize)> = Vec::new();
    let bump = |per_category: &mut Vec<(String, usize)>, category: &str| match per_category
        .iter_mut()
        .find(|(c, _)| c == category)
    {
        Some((_, n)) => *n += 1,
        None => per_category.push((category.to_string(), 1)),
    };

    // Phase 1: fill every floor with that category's best candidates.
    for constraint in constraints.constraints() {
        if constraint.floor == 0 {
            continue;
        }
        let mut needed = constraint.floor;
        for &pos in &by_utility {
            if needed == 0 {
                break;
            }
            if !taken[pos] && candidates[pos].category == constraint.category {
                taken[pos] = true;
                selected.push(candidates[pos].clone());
                bump(&mut per_category, &constraint.category);
                needed -= 1;
            }
        }
        debug_assert_eq!(needed, 0, "feasibility check guarantees enough candidates");
    }

    // How many floor picks would *not* have been selected by pure top-k:
    // count the floor picks outside the unconstrained top-k prefix.
    let unconstrained_top_k: Vec<usize> = by_utility
        .iter()
        .take(constraints.k)
        .map(|&pos| candidates[pos].index)
        .collect();
    let forced_by_floors = selected
        .iter()
        .filter(|c| !unconstrained_top_k.contains(&c.index))
        .count();

    // Phase 2: fill the remaining positions greedily, respecting ceilings.
    for &pos in &by_utility {
        if selected.len() == constraints.k {
            break;
        }
        if taken[pos] {
            continue;
        }
        let category = &candidates[pos].category;
        let current = per_category
            .iter()
            .find(|(c, _)| c == category)
            .map_or(0, |(_, n)| *n);
        if current >= constraints.ceiling(category) {
            continue;
        }
        taken[pos] = true;
        selected.push(candidates[pos].clone());
        bump(&mut per_category, category);
    }

    debug_assert_eq!(
        selected.len(),
        constraints.k,
        "feasibility check guarantees the ceilings leave room to reach k"
    );
    Ok(Selection::from_items(selected, forced_by_floors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::GroupConstraint;

    fn candidate(index: usize, utility: f64, category: &str) -> Candidate {
        Candidate::new(index, utility, category).unwrap()
    }

    /// A pool where category "b" has clearly weaker candidates.
    fn pool() -> Vec<Candidate> {
        vec![
            candidate(0, 10.0, "a"),
            candidate(1, 9.0, "a"),
            candidate(2, 8.0, "a"),
            candidate(3, 7.0, "a"),
            candidate(4, 3.0, "b"),
            candidate(5, 2.0, "b"),
            candidate(6, 1.0, "b"),
        ]
    }

    #[test]
    fn unconstrained_selection_is_plain_top_k() {
        let constraints = ConstraintSet::unconstrained(3).unwrap();
        let selection = offline_select(&pool(), &constraints).unwrap();
        assert_eq!(selection.indices(), vec![0, 1, 2]);
        assert_eq!(selection.total_utility, 27.0);
        assert_eq!(selection.forced_by_floors, 0);
        assert!(constraints.is_satisfied_by(&selection.items));
    }

    #[test]
    fn floors_pull_in_weaker_category_members() {
        let constraints =
            ConstraintSet::new(4, vec![GroupConstraint::at_least("b", 2).unwrap()]).unwrap();
        let selection = offline_select(&pool(), &constraints).unwrap();
        assert!(constraints.is_satisfied_by(&selection.items));
        // Best two of "b" (indices 4, 5) plus best two of "a" (0, 1).
        let mut indices = selection.indices();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 4, 5]);
        assert_eq!(selection.total_utility, 10.0 + 9.0 + 3.0 + 2.0);
        assert_eq!(selection.forced_by_floors, 2);
    }

    #[test]
    fn ceilings_cap_the_dominant_category() {
        let constraints =
            ConstraintSet::new(4, vec![GroupConstraint::at_most("a", 2).unwrap()]).unwrap();
        let selection = offline_select(&pool(), &constraints).unwrap();
        assert!(constraints.is_satisfied_by(&selection.items));
        let a_count = selection
            .category_counts
            .iter()
            .find(|(c, _)| c == "a")
            .map_or(0, |(_, n)| *n);
        assert_eq!(a_count, 2);
        // Top two of "a" plus top two of "b".
        assert_eq!(selection.total_utility, 10.0 + 9.0 + 3.0 + 2.0);
    }

    #[test]
    fn floors_and_ceilings_combine() {
        let constraints = ConstraintSet::new(
            5,
            vec![
                GroupConstraint::new("a", 1, 3).unwrap(),
                GroupConstraint::new("b", 2, 3).unwrap(),
            ],
        )
        .unwrap();
        let selection = offline_select(&pool(), &constraints).unwrap();
        assert!(constraints.is_satisfied_by(&selection.items));
        assert_eq!(selection.items.len(), 5);
        // 3 of "a" (10, 9, 8) + 2 of "b" (3, 2) is the best feasible mix.
        assert_eq!(selection.total_utility, 32.0);
    }

    #[test]
    fn infeasible_configurations_are_rejected() {
        let constraints =
            ConstraintSet::new(4, vec![GroupConstraint::at_least("b", 4).unwrap()]).unwrap();
        assert!(offline_select(&pool(), &constraints).is_err());
        let constraints = ConstraintSet::unconstrained(20).unwrap();
        assert!(offline_select(&pool(), &constraints).is_err());
    }

    #[test]
    fn ties_are_broken_deterministically_by_index() {
        let tied = vec![
            candidate(3, 1.0, "a"),
            candidate(1, 1.0, "a"),
            candidate(2, 1.0, "a"),
        ];
        let constraints = ConstraintSet::unconstrained(2).unwrap();
        let selection = offline_select(&tied, &constraints).unwrap();
        assert_eq!(selection.indices(), vec![1, 2]);
    }

    /// Exhaustive check against brute force on a small pool: the greedy
    /// selection has the maximum achievable utility among all feasible sets.
    #[test]
    fn greedy_matches_brute_force_optimum() {
        let pool = vec![
            candidate(0, 9.0, "a"),
            candidate(1, 8.5, "b"),
            candidate(2, 7.0, "a"),
            candidate(3, 6.5, "c"),
            candidate(4, 6.0, "b"),
            candidate(5, 2.0, "c"),
            candidate(6, 1.5, "a"),
        ];
        let constraints = ConstraintSet::new(
            4,
            vec![
                GroupConstraint::at_least("c", 1).unwrap(),
                GroupConstraint::at_most("a", 2).unwrap(),
            ],
        )
        .unwrap();
        let greedy = offline_select(&pool, &constraints).unwrap();

        // Brute force over all 4-subsets.
        let n = pool.len();
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != constraints.k {
                continue;
            }
            let subset: Vec<Candidate> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| pool[i].clone())
                .collect();
            if constraints.is_satisfied_by(&subset) {
                best = best.max(total_utility(&subset));
            }
        }
        assert!((greedy.total_utility - best).abs() < 1e-12);
    }
}
