//! Error type for constrained set selection.

use std::fmt;

/// Result alias used throughout `rf-setsel`.
pub type SetSelResult<T> = Result<T, SetSelError>;

/// Errors produced while building constraints or running a selection.
#[derive(Debug, Clone, PartialEq)]
pub enum SetSelError {
    /// The requested selection size is zero or exceeds the candidate pool.
    InvalidK {
        /// Requested selection size.
        k: usize,
        /// Number of candidates available.
        n: usize,
    },
    /// A constraint is internally inconsistent (floor above ceiling, zero
    /// ceiling, duplicate category).
    InvalidConstraint {
        /// Category the constraint refers to.
        category: String,
        /// What is wrong with it.
        message: String,
    },
    /// The constraint set cannot be satisfied by any selection of size `k`
    /// from the given candidates.
    Infeasible {
        /// Why no feasible selection exists.
        message: String,
    },
    /// A candidate's utility is NaN or infinite.
    NonFiniteUtility {
        /// Index of the offending candidate.
        index: usize,
    },
    /// A parameter lies outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Constraint description.
        message: String,
    },
    /// An underlying table error while building candidates.
    Table(rf_table::TableError),
}

impl fmt::Display for SetSelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetSelError::InvalidK { k, n } => {
                write!(f, "cannot select k={k} items from a pool of {n} candidates")
            }
            SetSelError::InvalidConstraint { category, message } => {
                write!(f, "invalid constraint for category `{category}`: {message}")
            }
            SetSelError::Infeasible { message } => {
                write!(f, "no feasible selection exists: {message}")
            }
            SetSelError::NonFiniteUtility { index } => {
                write!(f, "candidate {index} has a non-finite utility")
            }
            SetSelError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            SetSelError::Table(err) => write!(f, "table error: {err}"),
        }
    }
}

impl std::error::Error for SetSelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SetSelError::Table(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_table::TableError> for SetSelError {
    fn from(err: rf_table::TableError) -> Self {
        SetSelError::Table(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SetSelError::InvalidK { k: 5, n: 3 };
        assert!(e.to_string().contains("k=5"));
        let e = SetSelError::InvalidConstraint {
            category: "small".to_string(),
            message: "floor 4 exceeds ceiling 2".to_string(),
        };
        assert!(e.to_string().contains("small"));
        assert!(e.to_string().contains("floor 4"));
        let e = SetSelError::Infeasible {
            message: "floors add up to 12 but k = 10".to_string(),
        };
        assert!(e.to_string().contains("feasible"));
        let e = SetSelError::NonFiniteUtility { index: 7 };
        assert!(e.to_string().contains('7'));
        let e = SetSelError::InvalidParameter {
            parameter: "warmup_fraction",
            message: "must lie in (0, 1)".to_string(),
        };
        assert!(e.to_string().contains("warmup_fraction"));
    }

    #[test]
    fn table_error_converts_and_sources() {
        let e: SetSelError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(matches!(e, SetSelError::Table(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = SetSelError::InvalidK { k: 1, n: 0 };
        assert!(std::error::Error::source(&e).is_none());
    }
}
