//! Candidates: the items a constrained selection chooses among.

use crate::error::{SetSelError, SetSelResult};
use rf_table::Table;

/// One selectable item: a row index, a utility score, and the category of
/// the sensitive / diversity attribute it belongs to.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Candidate {
    /// Index of the item in its source table (or stream position for purely
    /// synthetic candidates).
    pub index: usize,
    /// The item's utility (score); higher is better.
    pub utility: f64,
    /// Category of the grouping attribute (e.g. `"small"`, `"NE"`).
    pub category: String,
}

impl Candidate {
    /// Creates a candidate.
    ///
    /// # Errors
    /// Returns an error when the utility is NaN or infinite.
    pub fn new(index: usize, utility: f64, category: impl Into<String>) -> SetSelResult<Self> {
        if !utility.is_finite() {
            return Err(SetSelError::NonFiniteUtility { index });
        }
        Ok(Candidate {
            index,
            utility,
            category: category.into(),
        })
    }

    /// Builds the candidate pool from a table: `utility_column` supplies the
    /// scores and `category_column` the group labels.
    ///
    /// Rows with a missing category or a missing utility are skipped (they
    /// cannot participate in a constrained selection), mirroring how the
    /// nutritional label handles missing sensitive-attribute values.
    ///
    /// # Errors
    /// Returns an error when either column does not exist / has the wrong
    /// role, when every row is skipped, or when a present utility is
    /// non-finite.
    pub fn from_table(
        table: &Table,
        utility_column: &str,
        category_column: &str,
    ) -> SetSelResult<Vec<Self>> {
        let utilities = table.numeric_column_options(utility_column)?;
        let categories = table.categorical_column(category_column)?;
        let mut candidates = Vec::with_capacity(table.num_rows());
        for (index, (utility, category)) in utilities.iter().zip(categories.iter()).enumerate() {
            let (Some(utility), Some(category)) = (utility, category) else {
                continue;
            };
            candidates.push(Candidate::new(index, *utility, category.clone())?);
        }
        if candidates.is_empty() {
            return Err(SetSelError::InvalidParameter {
                parameter: "candidates",
                message: format!(
                    "no rows have both a `{utility_column}` utility and a \
                     `{category_column}` category"
                ),
            });
        }
        Ok(candidates)
    }
}

/// Total utility of a set of candidates.
#[must_use]
pub fn total_utility(candidates: &[Candidate]) -> f64 {
    candidates.iter().map(|c| c.utility).sum()
}

/// Counts candidates per category, in first-appearance order.
#[must_use]
pub fn category_counts(candidates: &[Candidate]) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for candidate in candidates {
        match counts.iter_mut().find(|(c, _)| c == &candidate.category) {
            Some((_, count)) => *count += 1,
            None => counts.push((candidate.category.clone(), 1)),
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    #[test]
    fn new_rejects_non_finite_utility() {
        assert!(Candidate::new(0, f64::NAN, "a").is_err());
        assert!(Candidate::new(0, f64::INFINITY, "a").is_err());
        assert!(Candidate::new(0, 1.5, "a").is_ok());
    }

    #[test]
    fn from_table_builds_candidates_and_skips_missing() {
        let table = Table::from_columns(vec![
            (
                "score",
                Column::Float(vec![Some(3.0), None, Some(1.0), Some(2.0)]),
            ),
            (
                "group",
                Column::Str(vec![
                    Some("a".to_string()),
                    Some("a".to_string()),
                    None,
                    Some("b".to_string()),
                ]),
            ),
        ])
        .unwrap();
        let candidates = Candidate::from_table(&table, "score", "group").unwrap();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0].index, 0);
        assert_eq!(candidates[1].index, 3);
        assert_eq!(candidates[1].category, "b");
        assert_eq!(total_utility(&candidates), 5.0);
    }

    #[test]
    fn from_table_requires_existing_columns() {
        let table = Table::from_columns(vec![("score", Column::from_f64(vec![1.0, 2.0]))]).unwrap();
        assert!(Candidate::from_table(&table, "score", "ghost").is_err());
        assert!(Candidate::from_table(&table, "ghost", "score").is_err());
    }

    #[test]
    fn from_table_rejects_fully_missing_data() {
        let table = Table::from_columns(vec![
            ("score", Column::Float(vec![None, None])),
            (
                "group",
                Column::Str(vec![Some("a".to_string()), Some("b".to_string())]),
            ),
        ])
        .unwrap();
        assert!(matches!(
            Candidate::from_table(&table, "score", "group"),
            Err(SetSelError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn category_counts_preserve_first_appearance_order() {
        let candidates = vec![
            Candidate::new(0, 1.0, "b").unwrap(),
            Candidate::new(1, 2.0, "a").unwrap(),
            Candidate::new(2, 3.0, "b").unwrap(),
        ];
        assert_eq!(
            category_counts(&candidates),
            vec![("b".to_string(), 2), ("a".to_string(), 1)]
        );
    }
}
