//! # rf-setsel — online set selection with fairness and diversity constraints
//!
//! A from-scratch implementation of *"Online Set Selection with Fairness and
//! Diversity Constraints"* (Stoyanovich, Yang & Jagadish, EDBT 2018), the
//! authors' companion work that the nutritional-label paper cites as the
//! technical basis of its fairness and diversity widgets (§1, reference
//! [11]).
//!
//! The problem: select exactly `k` items, each belonging to one category of a
//! sensitive or diversity attribute, so that total utility (score) is
//! maximized **subject to per-category floors and ceilings** — "at least
//! ℓ_g and at most u_g items of group g".  Two settings are covered:
//!
//! * **offline** ([`offline`]): all candidates are known up front.  The
//!   greedy floor-first / best-fill algorithm is optimal for additive utility
//!   and is the baseline every online strategy is compared against.
//! * **online** ([`online`]): candidates arrive one at a time in random order
//!   and each accept/reject decision is irrevocable (the secretary setting).
//!   The warm-up strategy observes a prefix of the stream, learns a
//!   per-category utility threshold, and then accepts above-threshold
//!   candidates while reserving enough remaining positions to meet every
//!   floor.
//!
//! [`metrics`] evaluates an online run against the offline optimum (utility
//! ratio, constraint satisfaction) and estimates the expected ratio over many
//! random arrival orders — the experiment design of the EDBT paper.
//!
//! The crate speaks the same [`rf_table::Table`] substrate as the rest of the
//! workspace: [`items::Candidate::from_table`] builds the candidate pool from
//! a utility column and a categorical attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod error;
pub mod items;
pub mod metrics;
pub mod offline;
pub mod online;

pub use constraints::{ConstraintSet, GroupConstraint};
pub use error::{SetSelError, SetSelResult};
pub use items::Candidate;
pub use metrics::{evaluate_online, expected_utility_ratio, OnlineEvaluation, RatioSummary};
pub use offline::{offline_select, Selection};
pub use online::{OnlineSelector, OnlineStrategy};
