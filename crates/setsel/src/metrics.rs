//! Evaluating online selections against the offline optimum.
//!
//! The EDBT 2018 evaluation reports, for each strategy and constraint
//! setting, the ratio of the utility achieved online to the offline optimum
//! and whether the constraints were met.  [`evaluate_online`] computes that
//! comparison for one run; [`expected_utility_ratio`] averages it over many
//! uniformly random arrival orders (the random-order secretary assumption).

use crate::constraints::ConstraintSet;
use crate::error::{SetSelError, SetSelResult};
use crate::items::Candidate;
use crate::offline::{offline_select, Selection};
use crate::online::OnlineSelector;

/// Comparison of one online run against the offline optimum.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OnlineEvaluation {
    /// The online selection being evaluated.
    pub online: Selection,
    /// The offline optimum for the same candidates and constraints.
    pub offline: Selection,
    /// `online.total_utility / offline.total_utility` (1.0 when the offline
    /// optimum has zero utility).
    pub utility_ratio: f64,
    /// Whether the online selection satisfies every floor and ceiling.
    pub constraints_satisfied: bool,
    /// Fraction of the offline optimum's members that the online run also
    /// selected.
    pub overlap_with_offline: f64,
}

/// Evaluates an online `selection` of `candidates` under `constraints`.
///
/// # Errors
/// Returns an error when the offline optimum cannot be computed (infeasible
/// constraints).
pub fn evaluate_online(
    candidates: &[Candidate],
    constraints: &ConstraintSet,
    online: Selection,
) -> SetSelResult<OnlineEvaluation> {
    let offline = offline_select(candidates, constraints)?;
    let utility_ratio = if offline.total_utility.abs() < f64::EPSILON {
        1.0
    } else {
        online.total_utility / offline.total_utility
    };
    let offline_indices = offline.indices();
    let shared = online
        .items
        .iter()
        .filter(|c| offline_indices.contains(&c.index))
        .count();
    let overlap_with_offline = shared as f64 / offline_indices.len() as f64;
    let constraints_satisfied = constraints.is_satisfied_by(&online.items);
    Ok(OnlineEvaluation {
        online,
        offline,
        utility_ratio,
        constraints_satisfied,
        overlap_with_offline,
    })
}

/// Summary of the utility ratio over many random arrival orders.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatioSummary {
    /// Number of simulated arrival orders.
    pub runs: usize,
    /// Mean utility ratio.
    pub mean: f64,
    /// Standard deviation of the ratio.
    pub std_dev: f64,
    /// Worst observed ratio.
    pub min: f64,
    /// Best observed ratio.
    pub max: f64,
    /// Fraction of runs in which every constraint was satisfied (1.0 by
    /// construction for feasible streams; reported as a safety check).
    pub constraint_satisfaction_rate: f64,
}

/// Estimates the expected online/offline utility ratio of `selector` over
/// `runs` uniformly random arrival orders of `candidates`.
///
/// # Errors
/// Returns an error when `runs` is zero or the constraints are infeasible for
/// the candidate pool.
pub fn expected_utility_ratio(
    candidates: &[Candidate],
    selector: &OnlineSelector,
    runs: usize,
    seed: u64,
) -> SetSelResult<RatioSummary> {
    if runs == 0 {
        return Err(SetSelError::InvalidParameter {
            parameter: "runs",
            message: "at least one simulated arrival order is required".to_string(),
        });
    }
    let offline = offline_select(candidates, &selector.constraints)?;
    let mut ratios = Vec::with_capacity(runs);
    let mut satisfied = 0usize;
    for run in 0..runs {
        let online = selector.run_shuffled(candidates, seed.wrapping_add(run as u64))?;
        if selector.constraints.is_satisfied_by(&online.items) {
            satisfied += 1;
        }
        let ratio = if offline.total_utility.abs() < f64::EPSILON {
            1.0
        } else {
            online.total_utility / offline.total_utility
        };
        ratios.push(ratio);
    }
    let n = ratios.len() as f64;
    let mean = ratios.iter().sum::<f64>() / n;
    let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    Ok(RatioSummary {
        runs,
        mean,
        std_dev: var.sqrt(),
        min: ratios.iter().copied().fold(f64::INFINITY, f64::min),
        max: ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        constraint_satisfaction_rate: satisfied as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::GroupConstraint;
    use crate::online::OnlineStrategy;

    fn candidate(index: usize, utility: f64, category: &str) -> Candidate {
        Candidate::new(index, utility, category).unwrap()
    }

    fn pool() -> Vec<Candidate> {
        let mut pool = Vec::new();
        for i in 0..12 {
            pool.push(candidate(i, 100.0 - 3.0 * i as f64, "a"));
        }
        for i in 12..20 {
            pool.push(candidate(i, 60.0 - 2.0 * i as f64, "b"));
        }
        pool
    }

    fn constraints() -> ConstraintSet {
        ConstraintSet::new(
            8,
            vec![
                GroupConstraint::at_least("b", 3).unwrap(),
                GroupConstraint::at_most("a", 6).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn evaluation_compares_against_offline() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        let online = selector.run_shuffled(&pool(), 5).unwrap();
        let eval = evaluate_online(&pool(), &constraints(), online).unwrap();
        assert!(eval.utility_ratio > 0.0 && eval.utility_ratio <= 1.0 + 1e-12);
        assert!(eval.constraints_satisfied);
        assert!((0.0..=1.0).contains(&eval.overlap_with_offline));
        assert_eq!(eval.offline.items.len(), 8);
    }

    #[test]
    fn offline_selection_evaluates_to_ratio_one() {
        let offline = offline_select(&pool(), &constraints()).unwrap();
        let eval = evaluate_online(&pool(), &constraints(), offline).unwrap();
        assert!((eval.utility_ratio - 1.0).abs() < 1e-12);
        assert!((eval.overlap_with_offline - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_ratio_summary_is_coherent() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        let summary = expected_utility_ratio(&pool(), &selector, 30, 7).unwrap();
        assert_eq!(summary.runs, 30);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
        assert!(summary.max <= 1.0 + 1e-12);
        assert!(summary.mean > 0.5, "secretary strategy should not collapse");
        assert!((summary.constraint_satisfaction_rate - 1.0).abs() < 1e-12);
        assert!(summary.std_dev >= 0.0);
    }

    #[test]
    fn warmup_outperforms_greedy_in_expectation() {
        let greedy = OnlineSelector::new(constraints(), OnlineStrategy::Greedy).unwrap();
        let warmup = OnlineSelector::new(constraints(), OnlineStrategy::secretary()).unwrap();
        let greedy_summary = expected_utility_ratio(&pool(), &greedy, 40, 11).unwrap();
        let warmup_summary = expected_utility_ratio(&pool(), &warmup, 40, 11).unwrap();
        assert!(
            warmup_summary.mean > greedy_summary.mean,
            "warm-up {:.3} should beat greedy {:.3}",
            warmup_summary.mean,
            greedy_summary.mean
        );
    }

    #[test]
    fn zero_runs_is_an_error() {
        let selector = OnlineSelector::new(constraints(), OnlineStrategy::Greedy).unwrap();
        assert!(expected_utility_ratio(&pool(), &selector, 0, 1).is_err());
    }

    #[test]
    fn infeasible_constraints_propagate() {
        let infeasible =
            ConstraintSet::new(8, vec![GroupConstraint::at_least("missing", 1).unwrap()]).unwrap();
        let selector = OnlineSelector::new(infeasible.clone(), OnlineStrategy::Greedy).unwrap();
        assert!(expected_utility_ratio(&pool(), &selector, 5, 1).is_err());
        let online = Selection {
            items: vec![],
            total_utility: 0.0,
            category_counts: vec![],
            forced_by_floors: 0,
        };
        assert!(evaluate_online(&pool(), &infeasible, online).is_err());
    }
}
