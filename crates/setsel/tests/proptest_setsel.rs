//! Property-based tests for constrained set selection.
//!
//! The invariants mirror the guarantees the EDBT 2018 algorithms are designed
//! around: feasibility implies every run (offline or online, any arrival
//! order) returns exactly `k` items satisfying all floors and ceilings, and
//! no online strategy ever beats the offline optimum.

use proptest::prelude::*;
use rf_setsel::{
    offline_select, Candidate, ConstraintSet, GroupConstraint, OnlineSelector, OnlineStrategy,
};

const CATEGORIES: [&str; 3] = ["a", "b", "c"];

/// A random candidate pool over up to three categories.
fn candidate_pool() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec((0usize..3, 0.0f64..100.0), 6..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(index, (cat, utility))| {
                Candidate::new(index, utility, CATEGORIES[cat]).expect("finite utility")
            })
            .collect()
    })
}

/// Constraints that are feasible for `pool` by construction: every floor is
/// at most the category's population (capped at 2) and every ceiling at
/// least the floor.
fn feasible_constraints(pool: &[Candidate], k: usize) -> ConstraintSet {
    let count = |cat: &str| pool.iter().filter(|c| c.category == cat).count();
    let mut constraints = Vec::new();
    let mut floor_budget = k;
    for cat in CATEGORIES {
        let available = count(cat);
        if available == 0 {
            continue;
        }
        let floor = available.min(2).min(floor_budget);
        floor_budget -= floor;
        // A generous ceiling keeps the set feasible while still being a real
        // constraint for larger categories.
        let ceiling = (available.max(floor)).min(k.max(floor.max(1)));
        constraints.push(GroupConstraint::new(cat, floor, ceiling.max(1)).expect("valid bounds"));
    }
    ConstraintSet::new(k, constraints).expect("constraints are consistent by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn offline_selection_is_feasible_and_sized(pool in candidate_pool(), k_frac in 0.2f64..0.9) {
        let k = ((pool.len() as f64 * k_frac) as usize).clamp(1, pool.len());
        let constraints = feasible_constraints(&pool, k);
        prop_assume!(constraints.check_feasible(&pool).is_ok());
        let selection = offline_select(&pool, &constraints).unwrap();
        prop_assert_eq!(selection.items.len(), k);
        prop_assert!(constraints.is_satisfied_by(&selection.items));
        // Total utility equals the sum of the parts.
        let sum: f64 = selection.items.iter().map(|c| c.utility).sum();
        prop_assert!((sum - selection.total_utility).abs() < 1e-9);
        // No candidate is selected twice.
        let mut indices = selection.indices();
        indices.sort_unstable();
        indices.dedup();
        prop_assert_eq!(indices.len(), k);
    }

    #[test]
    fn unconstrained_offline_is_plain_top_k(pool in candidate_pool(), k_frac in 0.1f64..0.9) {
        let k = ((pool.len() as f64 * k_frac) as usize).clamp(1, pool.len());
        let constraints = ConstraintSet::unconstrained(k).unwrap();
        let selection = offline_select(&pool, &constraints).unwrap();
        let mut utilities: Vec<f64> = pool.iter().map(|c| c.utility).collect();
        utilities.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let best: f64 = utilities[..k].iter().sum();
        prop_assert!((selection.total_utility - best).abs() < 1e-9);
    }

    #[test]
    fn online_runs_are_feasible_and_never_beat_offline(
        pool in candidate_pool(),
        k_frac in 0.2f64..0.8,
        seed in 0u64..1000,
        warmup in 0.0f64..0.9,
    ) {
        let k = ((pool.len() as f64 * k_frac) as usize).clamp(1, pool.len());
        let constraints = feasible_constraints(&pool, k);
        prop_assume!(constraints.check_feasible(&pool).is_ok());
        let offline = offline_select(&pool, &constraints).unwrap();
        for strategy in [
            OnlineStrategy::Greedy,
            OnlineStrategy::Warmup { warmup_fraction: warmup },
        ] {
            let selector = OnlineSelector::new(constraints.clone(), strategy).unwrap();
            let online = selector.run_shuffled(&pool, seed).unwrap();
            prop_assert_eq!(online.items.len(), k);
            prop_assert!(constraints.is_satisfied_by(&online.items));
            prop_assert!(online.total_utility <= offline.total_utility + 1e-9);
        }
    }

    #[test]
    fn online_is_deterministic_for_a_seed(pool in candidate_pool(), seed in 0u64..500) {
        let k = (pool.len() / 2).max(1);
        let constraints = feasible_constraints(&pool, k);
        prop_assume!(constraints.check_feasible(&pool).is_ok());
        let selector =
            OnlineSelector::new(constraints, OnlineStrategy::secretary()).unwrap();
        let a = selector.run_shuffled(&pool, seed).unwrap();
        let b = selector.run_shuffled(&pool, seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
