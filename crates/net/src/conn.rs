//! The per-connection state machine and its backpressure-aware write buffer.
//!
//! A [`Connection`] owns a nonblocking [`TcpStream`] plus an incremental
//! [`HttpParser`].  The reactor drives it with readiness events; the
//! connection never blocks and never does protocol work beyond framing:
//!
//! ```text
//!            readable                       complete request
//!   Reading ───────────► parser.feed(…) ───────────────────► InFlight
//!      ▲                                                        │
//!      │ flushed, keep-alive                                    │ completion
//!      │ (pipelined bytes re-polled)                            ▼
//!   (close if `Connection: close`) ◄──────────────────────── Writing
//!                                         flushed
//! ```
//!
//! Writes are buffered and chunked: a response body can be a shared
//! `Arc<String>` (the label cache's rendered JSON) so a thousand concurrent
//! downloads of the same label stream from one allocation.  `on_writable`
//! writes until the socket would block, then parks until the next
//! writability event — a slow reader holds exactly its own buffer, never a
//! worker thread.

use crate::parser::{HttpParser, ParseError, ParseEvent, ParsedRequest};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A response body ready for streaming.
#[derive(Debug, Clone)]
pub enum ResponseBody {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// A body shared with the label cache (zero-copy fan-out).
    Shared(Arc<String>),
}

impl ResponseBody {
    /// The body bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            ResponseBody::Owned(bytes) => bytes,
            ResponseBody::Shared(text) => text.as_bytes(),
        }
    }

    /// Body length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// `true` when the body is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }
}

/// A serialized response: pre-rendered head bytes plus the body.
#[derive(Debug, Clone)]
pub struct OutboundResponse {
    /// Status line and headers, including the terminating blank line.
    pub head: Vec<u8>,
    /// The body to stream after the head.
    pub body: ResponseBody,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

/// One queued write: a chunk of bytes and how far into it we are.
#[derive(Debug)]
struct WriteChunk {
    data: ResponseBody,
    written: usize,
}

/// Connection lifecycle states (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A complete request was handed to the dispatcher; the socket is quiet.
    InFlight,
    /// Streaming a response.
    Writing,
}

/// What a readability event amounted to.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Bytes consumed, no complete request yet.
    NeedMore,
    /// One complete request — dispatch it.
    Request(ParsedRequest),
    /// The bytes cannot be a valid request — answer 400 and close.
    BadRequest(ParseError),
    /// The peer closed (EOF) or the socket errored.
    Disconnected,
}

/// What a writability event amounted to.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Everything flushed.
    Flushed,
    /// The socket filled up; wait for the next writability event.
    Pending,
    /// The peer vanished mid-write.
    Disconnected,
}

/// One client connection owned by the reactor.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    parser: HttpParser,
    state: ConnState,
    out: VecDeque<WriteChunk>,
    close_after_write: bool,
}

impl Connection {
    /// Wraps an accepted stream (placed into nonblocking mode).
    ///
    /// # Errors
    /// `set_nonblocking` errno.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        // Responses go out as a head chunk plus a (possibly shared) body
        // chunk; Nagle would hold the second write hostage to the client's
        // delayed ACK (~40ms per response).  Latency wins over packet count
        // for an interactive API.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: HttpParser::new(),
            state: ConnState::Reading,
            out: VecDeque::new(),
            close_after_write: false,
        })
    }

    /// The underlying stream (for poller registration).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// `true` once the connection must close when its buffer drains.
    #[must_use]
    pub fn closing(&self) -> bool {
        self.close_after_write
    }

    /// `true` while a request is partially received (see
    /// [`HttpParser::mid_request`]).
    #[must_use]
    pub fn mid_request(&self) -> bool {
        self.parser.mid_request()
    }

    /// Marks the in-flight request as dispatched.
    pub fn mark_in_flight(&mut self) {
        self.state = ConnState::InFlight;
    }

    /// Reads until the socket would block, feeding the parser.  Returns at
    /// the first complete request — surplus bytes wait in the parser.
    pub fn on_readable(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(n) => match self.parser.feed(&chunk[..n]) {
                    Ok(ParseEvent::Request(request)) => return ReadOutcome::Request(request),
                    Ok(ParseEvent::NeedMore) => {}
                    Err(err) => return ReadOutcome::BadRequest(err),
                },
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    return ReadOutcome::NeedMore
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }

    /// Polls the parser for a pipelined request that arrived with earlier
    /// bytes (called after a response flushes on a keep-alive connection).
    pub fn poll_buffered_request(&mut self) -> ReadOutcome {
        match self.parser.poll() {
            Ok(ParseEvent::Request(request)) => ReadOutcome::Request(request),
            Ok(ParseEvent::NeedMore) => ReadOutcome::NeedMore,
            Err(err) => ReadOutcome::BadRequest(err),
        }
    }

    /// Queues a response for streaming and moves to [`ConnState::Writing`].
    pub fn enqueue_response(&mut self, response: OutboundResponse) {
        self.out.push_back(WriteChunk {
            data: ResponseBody::Owned(response.head),
            written: 0,
        });
        if !response.body.is_empty() {
            self.out.push_back(WriteChunk {
                data: response.body,
                written: 0,
            });
        }
        if !response.keep_alive {
            self.close_after_write = true;
        }
        self.state = ConnState::Writing;
    }

    /// Writes buffered chunks until done or the socket would block.
    pub fn on_writable(&mut self) -> WriteOutcome {
        while let Some(chunk) = self.out.front_mut() {
            let bytes = chunk.data.as_bytes();
            while chunk.written < bytes.len() {
                match self.stream.write(&bytes[chunk.written..]) {
                    Ok(0) => return WriteOutcome::Disconnected,
                    Ok(n) => chunk.written += n,
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                        return WriteOutcome::Pending
                    }
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return WriteOutcome::Disconnected,
                }
            }
            self.out.pop_front();
        }
        if self.state == ConnState::Writing {
            self.state = ConnState::Reading;
        }
        WriteOutcome::Flushed
    }

    /// Bytes still queued for this connection (its backpressure debt).
    #[must_use]
    pub fn pending_write_bytes(&self) -> usize {
        self.out
            .iter()
            .map(|chunk| chunk.data.len() - chunk.written)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (Connection::new(server).expect("conn"), client)
    }

    fn wait_for_request(conn: &mut Connection) -> ParsedRequest {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match conn.on_readable() {
                ReadOutcome::Request(req) => return req,
                ReadOutcome::NeedMore => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn reads_a_request_and_streams_a_shared_body() {
        let (mut conn, mut client) = pair();
        client
            .write_all(b"GET /x HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let request = wait_for_request(&mut conn);
        assert_eq!(request.target, "/x");
        conn.mark_in_flight();
        assert_eq!(conn.state(), ConnState::InFlight);

        let body = Arc::new("shared-body".to_string());
        conn.enqueue_response(OutboundResponse {
            head: b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n".to_vec(),
            body: ResponseBody::Shared(Arc::clone(&body)),
            keep_alive: true,
        });
        assert_eq!(conn.state(), ConnState::Writing);
        assert!(conn.pending_write_bytes() > 11);
        assert_eq!(conn.on_writable(), WriteOutcome::Flushed);
        assert_eq!(conn.state(), ConnState::Reading);
        assert!(!conn.closing());

        let mut buf = vec![0u8; 1024];
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let n = client.read(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.ends_with("shared-body"));
    }

    #[test]
    fn close_response_marks_the_connection_closing() {
        let (mut conn, _client) = pair();
        conn.enqueue_response(OutboundResponse {
            head: b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n".to_vec(),
            body: ResponseBody::Owned(Vec::new()),
            keep_alive: false,
        });
        assert!(conn.closing());
    }

    #[test]
    fn slow_reader_backpressure_parks_in_pending() {
        let (mut conn, client) = pair();
        // A body far larger than the combined socket buffers.
        let big = vec![b'x'; 8 * 1024 * 1024];
        conn.enqueue_response(OutboundResponse {
            head: format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", big.len()).into_bytes(),
            body: ResponseBody::Owned(big),
            keep_alive: true,
        });
        // The client is not reading, so the kernel buffer fills and the
        // connection parks with debt instead of blocking.
        assert_eq!(conn.on_writable(), WriteOutcome::Pending);
        let parked = conn.pending_write_bytes();
        assert!(parked > 0);
        // Still pending on a second poke without the client draining.
        assert_eq!(conn.on_writable(), WriteOutcome::Pending);

        // Drain client-side; the connection now finishes.
        let mut reader = client;
        reader
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let drain = std::thread::spawn(move || {
            let mut total = 0usize;
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                match reader.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match conn.on_writable() {
                WriteOutcome::Flushed => break,
                WriteOutcome::Pending => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                WriteOutcome::Disconnected => panic!("client vanished"),
            }
        }
        assert_eq!(conn.pending_write_bytes(), 0);
        drop(conn); // Close the server side so the drain thread sees EOF.
        assert!(drain.join().expect("drain") > parked);
    }

    #[test]
    fn disconnect_mid_write_is_reported_not_fatal() {
        let (mut conn, client) = pair();
        drop(client);
        let big = vec![b'x'; 8 * 1024 * 1024];
        conn.enqueue_response(OutboundResponse {
            head: b"HTTP/1.1 200 OK\r\n\r\n".to_vec(),
            body: ResponseBody::Owned(big),
            keep_alive: false,
        });
        // The first writes may land in the kernel buffer; keep pushing until
        // the RST surfaces.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match conn.on_writable() {
                WriteOutcome::Disconnected => break,
                WriteOutcome::Flushed => {
                    // Everything fit in the kernel buffer before the RST
                    // arrived; queue more until the error surfaces.
                    conn.enqueue_response(OutboundResponse {
                        head: b"x".to_vec(),
                        body: ResponseBody::Owned(vec![b'x'; 1024 * 1024]),
                        keep_alive: false,
                    });
                    assert!(std::time::Instant::now() < deadline, "timed out");
                }
                WriteOutcome::Pending => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }

    #[test]
    fn malformed_bytes_surface_as_bad_request() {
        let (mut conn, mut client) = pair();
        client.write_all(b"BREW\r\n\r\n").expect("write");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match conn.on_readable() {
                ReadOutcome::BadRequest(err) => {
                    assert_eq!(err, ParseError::BadRequestLine);
                    break;
                }
                ReadOutcome::NeedMore => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
