//! The self-wake channel: how worker threads get the reactor's attention.
//!
//! The reactor thread spends its life inside `epoll_wait`.  When a label
//! generation finishes on the CPU pool, the worker cannot touch the
//! connection (all socket state is owned by the reactor thread); instead it
//! pushes the finished response onto the [`Completions`] queue and signals
//! the reactor's eventfd, which is registered in the same epoll set as the
//! sockets.  The reactor wakes, drains the queue, and resumes streaming.

use crate::conn::OutboundResponse;
use crate::sys::EventFd;
use std::io;
use std::os::fd::RawFd;
use std::sync::{Arc, Mutex};

/// A cloneable handle that wakes the reactor from any thread.
#[derive(Debug, Clone)]
pub struct Waker {
    eventfd: Arc<EventFd>,
}

impl Waker {
    /// Creates the waker and its eventfd.
    ///
    /// # Errors
    /// The `eventfd` errno.
    pub fn new() -> io::Result<Self> {
        Ok(Waker {
            eventfd: Arc::new(EventFd::new()?),
        })
    }

    /// Wakes the reactor.  Cheap, nonblocking, callable from any thread.
    pub fn wake(&self) {
        self.eventfd.signal();
    }

    /// Consumes pending wakeups (reactor-side, after `epoll_wait` returns).
    pub fn drain(&self) {
        self.eventfd.drain();
    }

    /// The eventfd to register with the poller.
    #[must_use]
    pub fn as_raw_fd(&self) -> RawFd {
        self.eventfd.as_raw_fd()
    }
}

/// A finished response on its way back to the reactor.
#[derive(Debug)]
pub struct Completion {
    /// The connection the response belongs to.
    pub conn_id: u64,
    /// The response to stream.
    pub response: OutboundResponse,
}

/// The multi-producer completion queue between pool workers and the reactor.
///
/// `complete` pushes and wakes; the reactor drains with `take_all` once per
/// loop iteration.  Completions for connections that died in the meantime
/// are dropped by the reactor (the id is never reused), which is exactly the
/// "client disconnected mid-generation" path.
#[derive(Debug, Clone)]
pub struct Completions {
    queue: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
}

impl Completions {
    /// A queue that signals `waker` on every completion.
    #[must_use]
    pub fn new(waker: Waker) -> Self {
        Completions {
            queue: Arc::new(Mutex::new(Vec::new())),
            waker,
        }
    }

    /// Queues a finished response and wakes the reactor.
    pub fn complete(&self, conn_id: u64, response: OutboundResponse) {
        self.queue
            .lock()
            .expect("completion queue lock")
            .push(Completion { conn_id, response });
        self.waker.wake();
    }

    /// Drains every queued completion (reactor-side).
    #[must_use]
    pub fn take_all(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue lock"))
    }

    /// The waker completions signal through.
    #[must_use]
    pub fn waker(&self) -> &Waker {
        &self.waker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::ResponseBody;
    use crate::poller::{Interest, Poller};

    #[test]
    fn wake_makes_the_eventfd_readable_and_drain_resets_it() {
        let waker = Waker::new().expect("waker");
        let mut poller = Poller::new().expect("poller");
        poller
            .register_raw(waker.as_raw_fd(), Interest::READABLE, 1)
            .expect("register");

        assert!(poller.wait(0).expect("wait").is_empty());
        waker.wake();
        waker.wake(); // Coalesces: still one readable event.
        let events = poller.wait(1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        waker.drain();
        assert!(poller.wait(0).expect("wait").is_empty());
    }

    #[test]
    fn completions_queue_is_fifo_and_wakes() {
        let waker = Waker::new().expect("waker");
        let completions = Completions::new(waker.clone());
        let from_thread = completions.clone();
        std::thread::spawn(move || {
            for i in 0..3u64 {
                from_thread.complete(
                    i,
                    OutboundResponse {
                        head: vec![b'h'],
                        body: ResponseBody::Owned(vec![b'b']),
                        keep_alive: false,
                    },
                );
            }
        })
        .join()
        .expect("producer");

        let drained = completions.take_all();
        assert_eq!(
            drained.iter().map(|c| c.conn_id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(completions.take_all().is_empty());

        let mut poller = Poller::new().expect("poller");
        poller
            .register_raw(waker.as_raw_fd(), Interest::READABLE, 9)
            .expect("register");
        let events = poller.wait(0).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 9 && e.readable),
            "completions must leave the waker signalled"
        );
    }
}
