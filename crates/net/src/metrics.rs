//! Per-reactor counters and torn-read-safe aggregation.
//!
//! Each [`Reactor`](crate::Reactor) owns one [`ReactorMetrics`]; the server
//! keeps a clone of every reactor's `Arc` and rolls them up into `/stats`.
//! The counters are plain relaxed atomics — cheap enough for the accept
//! path — but the *snapshot* discipline makes the rollup safe: only the
//! monotonic `accepted` and `closed` totals are stored, and a snapshot
//! reads `closed` **before** `accepted`.  A close can only follow the
//! accept that opened the connection, so the closed value a snapshot sees
//! can never exceed the accepted value it reads afterwards — deriving
//! `active = accepted − closed` therefore never yields `active > accepted`
//! (or an underflow), no matter how the scrape interleaves with the
//! reactors.  Storing `active` directly would not have that property: a
//! scrape between the increment and decrement of two reactors could report
//! more active connections than were ever accepted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters for one reactor shard.  All methods are callable from any
/// thread.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    /// Connections accepted (monotonic).
    accepted: AtomicU64,
    /// Connections fully closed (monotonic; `active` is derived).
    closed: AtomicU64,
    /// Requests handed to [`Dispatch::dispatch`](crate::Dispatch::dispatch).
    dispatched: AtomicU64,
    /// Responses delivered back through the completion channel.
    completions: AtomicU64,
    /// Connections refused with a `503` at the connection cap.
    shed_connections: AtomicU64,
    /// Requests refused with a `503` by admission control.
    shed_requests: AtomicU64,
}

impl ReactorMetrics {
    /// A fresh, all-zero counter block.
    #[must_use]
    pub fn new() -> Self {
        ReactorMetrics::default()
    }

    /// Records an accepted connection.
    pub fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.  Must follow the matching
    /// [`on_accepted`](ReactorMetrics::on_accepted) — the reactor only
    /// closes connections it tracked.
    pub fn on_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request handed to the application.
    pub fn on_dispatched(&self) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response delivered through the completion channel.
    pub fn on_completion(&self) {
        self.completions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection refused at the connection cap.
    pub fn on_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused by admission control.
    pub fn on_shed_request(&self) {
        self.shed_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent point-in-time view.  Reads `closed` before `accepted`
    /// (see the module docs), so `active ≤ accepted` holds in every
    /// snapshot even while the reactor is mid-accept or mid-close.
    #[must_use]
    pub fn snapshot(&self) -> ReactorSnapshot {
        let closed = self.closed.load(Ordering::Acquire);
        let accepted = self.accepted.load(Ordering::Acquire);
        ReactorSnapshot {
            accepted,
            active: accepted.saturating_sub(closed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters for one reactor (or a sum over several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections currently open (derived: accepted − closed).
    pub active: u64,
    /// Requests handed to the application.
    pub dispatched: u64,
    /// Responses delivered back through the completion channel.
    pub completions: u64,
    /// Connections refused with a `503` at the connection cap.
    pub shed_connections: u64,
    /// Requests refused with a `503` by admission control.
    pub shed_requests: u64,
}

impl ReactorSnapshot {
    /// Component-wise sum — used when rolling shards up into totals.
    #[must_use]
    pub fn merged(self, other: ReactorSnapshot) -> ReactorSnapshot {
        ReactorSnapshot {
            accepted: self.accepted + other.accepted,
            active: self.active + other.active,
            dispatched: self.dispatched + other.dispatched,
            completions: self.completions + other.completions,
            shed_connections: self.shed_connections + other.shed_connections,
            shed_requests: self.shed_requests + other.shed_requests,
        }
    }
}

/// Snapshots every shard and sums them.  Each per-shard snapshot satisfies
/// `active ≤ accepted` on its own, so the sum does too — a scrape landing
/// mid-rollup sees each shard either before or after its latest accept,
/// never a torn `active > accepted` state.
#[must_use]
pub fn aggregate(shards: &[Arc<ReactorMetrics>]) -> (Vec<ReactorSnapshot>, ReactorSnapshot) {
    let snapshots: Vec<ReactorSnapshot> = shards.iter().map(|m| m.snapshot()).collect();
    let totals = snapshots
        .iter()
        .copied()
        .fold(ReactorSnapshot::default(), ReactorSnapshot::merged);
    (snapshots, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn snapshot_counts_what_was_recorded() {
        let metrics = ReactorMetrics::new();
        for _ in 0..5 {
            metrics.on_accepted();
        }
        metrics.on_closed();
        metrics.on_dispatched();
        metrics.on_dispatched();
        metrics.on_completion();
        metrics.on_shed_connection();
        metrics.on_shed_request();
        let snap = metrics.snapshot();
        assert_eq!(snap.accepted, 5);
        assert_eq!(snap.active, 4);
        assert_eq!(snap.dispatched, 2);
        assert_eq!(snap.completions, 1);
        assert_eq!(snap.shed_connections, 1);
        assert_eq!(snap.shed_requests, 1);
    }

    #[test]
    fn active_never_exceeds_accepted_under_concurrent_churn() {
        // Two shards churning accept/close as fast as they can while the
        // main thread scrapes: every aggregate must satisfy the invariant
        // the /stats endpoint advertises.
        let shards: Vec<Arc<ReactorMetrics>> =
            (0..2).map(|_| Arc::new(ReactorMetrics::new())).collect();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        shard.on_accepted();
                        shard.on_dispatched();
                        shard.on_completion();
                        shard.on_closed();
                    }
                })
            })
            .collect();

        for _ in 0..10_000 {
            let (snapshots, totals) = aggregate(&shards);
            for snap in &snapshots {
                assert!(
                    snap.active <= snap.accepted,
                    "torn per-shard snapshot: {snap:?}"
                );
            }
            assert!(
                totals.active <= totals.accepted,
                "torn aggregate: {totals:?}"
            );
            // Each writer holds at most one connection open at a time.
            assert!(totals.active <= snapshots.len() as u64, "{totals:?}");
        }

        stop.store(true, Ordering::Relaxed);
        for writer in writers {
            writer.join().expect("writer");
        }
    }

    #[test]
    fn merged_sums_component_wise() {
        let a = ReactorSnapshot {
            accepted: 3,
            active: 1,
            dispatched: 5,
            completions: 4,
            shed_connections: 0,
            shed_requests: 2,
        };
        let b = ReactorSnapshot {
            accepted: 7,
            active: 2,
            dispatched: 6,
            completions: 6,
            shed_connections: 1,
            shed_requests: 0,
        };
        let sum = a.merged(b);
        assert_eq!(sum.accepted, 10);
        assert_eq!(sum.active, 3);
        assert_eq!(sum.dispatched, 11);
        assert_eq!(sum.completions, 10);
        assert_eq!(sum.shed_connections, 1);
        assert_eq!(sum.shed_requests, 2);
    }
}
