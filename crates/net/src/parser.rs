//! Incremental HTTP/1.x request parsing.
//!
//! [`HttpParser`] is a push parser: the reactor feeds it whatever bytes a
//! nonblocking read produced — half a request line, three requests at once —
//! and it emits at most one complete [`ParsedRequest`] per poll, keeping any
//! surplus bytes buffered for the next (pipelined) request on the same
//! keep-alive connection.
//!
//! It is deliberately protocol-generic: methods are uninterpreted tokens and
//! the target is an opaque string, so the crate stays free of application
//! types.  `rf-server` converts a [`ParsedRequest`] into its routed `Request`
//! (method enum, split query parameters).

use std::collections::HashMap;

/// Default cap on the request head (request line + headers): 16 KiB.
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on the request body: 8 MiB (the demo accepts CSV uploads).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// How much buffer capacity an idle parser may keep between requests.
const PARSER_BUF_RETAIN_BYTES: usize = 64 * 1024;

/// HTTP protocol version of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// HTTP/1.0 — connections close by default.
    Http10,
    /// HTTP/1.1 — connections are persistent by default.
    Http11,
}

/// One fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The method token, verbatim (e.g. `GET`).
    pub method: String,
    /// The request target, verbatim (path plus optional query string).
    pub target: String,
    /// Protocol version.
    pub version: HttpVersion,
    /// Headers with lower-cased names; later duplicates overwrite earlier.
    pub headers: HashMap<String, String>,
    /// Raw body bytes (empty when the request has no `Content-Length`).
    pub body: Vec<u8>,
}

impl ParsedRequest {
    /// A header value by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Whether the connection should stay open after the response,
    /// per HTTP/1.x defaults and the `Connection` header.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection").map(str::to_ascii_lowercase);
        match self.version {
            HttpVersion::Http11 => connection.as_deref() != Some("close"),
            HttpVersion::Http10 => connection.as_deref() == Some("keep-alive"),
        }
    }
}

/// Why a byte stream is not a valid request.  Any of these ends the
/// connection with a `400` after flushing — the stream position is
/// unrecoverable once framing is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// The version token is not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
    /// The head is not valid UTF-8.
    BadEncoding,
    /// A `Content-Length` value is not a number.
    BadContentLength,
    /// The request declares a `Transfer-Encoding`.  Chunked framing is not
    /// implemented, and silently treating such a body as zero-length would
    /// desync the keep-alive stream: the chunk bytes would be reinterpreted
    /// as the next pipelined request (the request-smuggling pattern).
    /// Refusing the request — and closing, as for every framing error — is
    /// the only safe answer.
    UnsupportedTransferEncoding,
    /// The head grew past the configured cap without terminating.
    HeadTooLarge,
    /// The declared body length exceeds the configured cap.
    BodyTooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadVersion => write!(f, "unsupported HTTP version"),
            ParseError::BadEncoding => write!(f, "request head is not UTF-8"),
            ParseError::BadContentLength => write!(f, "malformed Content-Length"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported (use Content-Length)")
            }
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for ParseError {}

/// What one parser poll produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEvent {
    /// The buffered bytes do not yet form a complete request.
    NeedMore,
    /// One complete request; surplus bytes stay buffered for the next one.
    Request(ParsedRequest),
}

#[derive(Debug)]
enum ParseState {
    /// Accumulating the request line and headers.
    Head,
    /// Head parsed; accumulating `remaining` more body bytes.
    Body {
        head: Box<HeadFields>,
        remaining: usize,
    },
}

#[derive(Debug)]
struct HeadFields {
    method: String,
    target: String,
    version: HttpVersion,
    headers: HashMap<String, String>,
}

/// The per-connection HTTP request state machine.
///
/// Split and partial reads are the normal case: `feed` may be called with a
/// single byte at a time and the parser advances exactly as it would on a
/// whole request (asserted by the unit tests below).  After an `Err`, the
/// parser is poisoned for its connection — framing is lost, so the caller
/// must close after writing its error response.
#[derive(Debug)]
pub struct HttpParser {
    buf: Vec<u8>,
    state: ParseState,
    max_head_bytes: usize,
    max_body_bytes: usize,
}

impl Default for HttpParser {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpParser {
    /// A parser with the default head/body caps.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_HEAD_BYTES, DEFAULT_MAX_BODY_BYTES)
    }

    /// A parser with explicit head/body byte caps.
    #[must_use]
    pub fn with_limits(max_head_bytes: usize, max_body_bytes: usize) -> Self {
        HttpParser {
            buf: Vec::new(),
            state: ParseState::Head,
            max_head_bytes,
            max_body_bytes,
        }
    }

    /// Number of buffered, not-yet-consumed bytes (pipelined input).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// `true` while a request is partially received — head bytes buffered,
    /// or a parsed head still waiting for body bytes.  What the reactor's
    /// request-progress deadline keys on: a client may idle between
    /// requests for the idle timeout, but once it starts one it must finish
    /// within the deadline (the slow-loris drip defence).
    #[must_use]
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty() || matches!(self.state, ParseState::Body { .. })
    }

    /// Appends freshly read bytes and polls for a complete request.
    ///
    /// # Errors
    /// A [`ParseError`] when the buffered bytes cannot be a valid request.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<ParseEvent, ParseError> {
        self.buf.extend_from_slice(bytes);
        self.poll()
    }

    /// Polls the buffered bytes for a complete request without new input —
    /// how a keep-alive connection picks up a pipelined request after
    /// flushing the previous response.
    ///
    /// # Errors
    /// A [`ParseError`] when the buffered bytes cannot be a valid request.
    pub fn poll(&mut self) -> Result<ParseEvent, ParseError> {
        if let ParseState::Head = self.state {
            let Some(head_end) = find_head_end(&self.buf) else {
                if self.buf.len() > self.max_head_bytes {
                    return Err(ParseError::HeadTooLarge);
                }
                return Ok(ParseEvent::NeedMore);
            };
            if head_end > self.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            let head = parse_head(&self.buf[..head_end])?;
            if head.headers.contains_key("transfer-encoding") {
                return Err(ParseError::UnsupportedTransferEncoding);
            }
            let remaining = match head.headers.get("content-length") {
                Some(raw) => {
                    let length: usize = raw.parse().map_err(|_| ParseError::BadContentLength)?;
                    if length > self.max_body_bytes {
                        return Err(ParseError::BodyTooLarge);
                    }
                    length
                }
                None => 0,
            };
            self.buf.drain(..head_end);
            self.state = ParseState::Body {
                head: Box::new(head),
                remaining,
            };
        }

        let ParseState::Body { remaining, .. } = &self.state else {
            return Ok(ParseEvent::NeedMore);
        };
        if self.buf.len() < *remaining {
            return Ok(ParseEvent::NeedMore);
        }
        let ParseState::Body { head, remaining } =
            std::mem::replace(&mut self.state, ParseState::Head)
        else {
            unreachable!("state checked above");
        };
        let body: Vec<u8> = self.buf.drain(..remaining).collect();
        // A large upload leaves its capacity behind in this buffer, which
        // lives as long as the keep-alive connection does; without the
        // shrink, N idle connections that each once POSTed the maximum
        // body would pin N × 8 MiB of empty buffers.
        if self.buf.capacity() > PARSER_BUF_RETAIN_BYTES {
            self.buf
                .shrink_to(PARSER_BUF_RETAIN_BYTES.max(self.buf.len()));
        }
        Ok(ParseEvent::Request(ParsedRequest {
            method: head.method,
            target: head.target,
            version: head.version,
            headers: head.headers,
            body,
        }))
    }
}

/// Index one past the head-terminating blank line, or `None` while the head
/// is still incomplete.  Lines end in `\n`, with an optional `\r` before it
/// (same tolerance as a `BufRead::read_line` + `trim_end` parser).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, byte) in buf.iter().enumerate() {
        if *byte != b'\n' {
            continue;
        }
        let mut line_end = i;
        if line_end > line_start && buf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        if line_end == line_start {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

/// Parses the request line and headers out of a complete head.
fn parse_head(head: &[u8]) -> Result<HeadFields, ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| ParseError::BadEncoding)?;
    let mut lines = text.lines().filter(|line| !line.is_empty());
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() || method.is_empty() {
        return Err(ParseError::BadRequestLine);
    }
    let version = match version {
        "HTTP/1.1" => HttpVersion::Http11,
        "HTTP/1.0" => HttpVersion::Http10,
        _ => return Err(ParseError::BadVersion),
    };
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok(HeadFields {
        method: method.to_string(),
        target: target.to_string(),
        version,
        headers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_whole(raw: &str) -> ParsedRequest {
        let mut parser = HttpParser::new();
        match parser.feed(raw.as_bytes()) {
            Ok(ParseEvent::Request(req)) => req,
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_complete_get() {
        let req = parse_whole("GET /stats?x=1 HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats?x=1");
        assert_eq!(req.version, HttpVersion::Http11);
        assert_eq!(req.header("host"), Some("test"));
        assert_eq!(req.header("Host"), Some("test"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_byte_by_byte_exactly_like_one_feed() {
        let raw = "POST /labels?k=3 HTTP/1.1\r\nContent-Length: 8\r\nHost: t\r\n\r\nab,cd\n1,";
        let whole = parse_whole(raw);
        let mut parser = HttpParser::new();
        let mut split = None;
        for byte in raw.as_bytes() {
            match parser.feed(std::slice::from_ref(byte)).expect("valid") {
                ParseEvent::NeedMore => {}
                ParseEvent::Request(req) => split = Some(req),
            }
        }
        assert_eq!(split.expect("complete by the last byte"), whole);
    }

    #[test]
    fn parses_across_arbitrary_split_points() {
        let raw = "POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        for split in 1..raw.len() {
            let (a, b) = raw.split_at(split);
            let mut parser = HttpParser::new();
            let first = parser.feed(a.as_bytes()).expect("valid prefix");
            let req = match first {
                ParseEvent::Request(req) => req,
                ParseEvent::NeedMore => match parser.feed(b.as_bytes()).expect("valid") {
                    ParseEvent::Request(req) => req,
                    ParseEvent::NeedMore => panic!("incomplete at split {split}"),
                },
            };
            assert_eq!(req.body, b"hello", "split {split}");
            assert_eq!(req.target, "/x");
        }
    }

    #[test]
    fn split_inside_the_line_terminator_still_parses() {
        let mut parser = HttpParser::new();
        assert_eq!(
            parser.feed(b"GET / HTTP/1.1\r").unwrap(),
            ParseEvent::NeedMore
        );
        assert_eq!(
            parser.feed(b"\nHost: t\r\n\r").unwrap(),
            ParseEvent::NeedMore
        );
        let ParseEvent::Request(req) = parser.feed(b"\n").unwrap() else {
            panic!("complete");
        };
        assert_eq!(req.method, "GET");
    }

    #[test]
    fn pipelined_requests_emit_one_at_a_time() {
        let mut parser = HttpParser::new();
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseEvent::Request(first) = parser.feed(raw.as_bytes()).unwrap() else {
            panic!("first request complete");
        };
        assert_eq!(first.target, "/a");
        assert!(parser.buffered() > 0, "second request stays buffered");
        let ParseEvent::Request(second) = parser.poll().unwrap() else {
            panic!("second request complete");
        };
        assert_eq!(second.target, "/b");
        assert!(!second.keep_alive());
        assert_eq!(parser.buffered(), 0);
        assert_eq!(parser.poll().unwrap(), ParseEvent::NeedMore);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse_whole("GET /x HTTP/1.0\nConnection: keep-alive\n\n");
        assert_eq!(req.version, HttpVersion::Http10);
        assert!(req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close_and_http11_honours_close() {
        assert!(!parse_whole("GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(parse_whole("GET / HTTP/1.1\r\n\r\n").keep_alive());
        assert!(!parse_whole("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(!parse_whole("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").keep_alive());
    }

    #[test]
    fn rejects_malformed_heads() {
        let cases: &[(&str, ParseError)] = &[
            ("GET\r\n\r\n", ParseError::BadRequestLine),
            ("GET /\r\n\r\n", ParseError::BadRequestLine),
            ("GET / HTTP/1.1 extra\r\n\r\n", ParseError::BadRequestLine),
            ("GET / HTTP/2.0\r\n\r\n", ParseError::BadVersion),
            (
                "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
                ParseError::BadContentLength,
            ),
            // Chunked framing is unimplemented; accepting it as bodyless
            // would let the chunk bytes smuggle in as a pipelined request.
            (
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
                ParseError::UnsupportedTransferEncoding,
            ),
        ];
        for (raw, expected) in cases {
            let mut parser = HttpParser::new();
            assert_eq!(parser.feed(raw.as_bytes()), Err(*expected), "input {raw:?}");
        }
    }

    #[test]
    fn enforces_head_and_body_caps() {
        let mut parser = HttpParser::with_limits(64, 16);
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert_eq!(parser.feed(long.as_bytes()), Err(ParseError::HeadTooLarge));

        // An unterminated head past the cap is rejected without waiting for
        // more input — a slow-drip attacker cannot grow the buffer forever.
        let mut parser = HttpParser::with_limits(64, 16);
        assert_eq!(
            parser.feed("GET /aaaa".repeat(20).as_bytes()),
            Err(ParseError::HeadTooLarge)
        );

        let mut parser = HttpParser::with_limits(64, 16);
        assert_eq!(
            parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            Err(ParseError::BodyTooLarge)
        );
    }

    #[test]
    fn buffer_capacity_shrinks_after_a_large_body() {
        let mut parser = HttpParser::new();
        let body = vec![b'x'; 4 * 1024 * 1024];
        let head = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());
        assert_eq!(parser.feed(head.as_bytes()).unwrap(), ParseEvent::NeedMore);
        let ParseEvent::Request(request) = parser.feed(&body).unwrap() else {
            panic!("complete");
        };
        assert_eq!(request.body.len(), body.len());
        assert!(
            parser.buf.capacity() <= PARSER_BUF_RETAIN_BYTES,
            "idle keep-alive parsers must not retain megabyte buffers \
             (capacity: {})",
            parser.buf.capacity()
        );
    }

    #[test]
    fn body_split_across_feeds() {
        let mut parser = HttpParser::new();
        assert_eq!(
            parser
                .feed(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345")
                .unwrap(),
            ParseEvent::NeedMore
        );
        let ParseEvent::Request(req) = parser.feed(b"6789X").unwrap() else {
            panic!("complete");
        };
        assert_eq!(req.body, b"123456789X");
    }
}
