//! # rf-net — an epoll-based event-driven I/O reactor
//!
//! The Ranking Facts system is a *web tool*: labels are generated
//! server-side and served to browsers, so serving capacity is part of the
//! reproduction's north star.  The original blocking design burned one pool
//! worker per connection — a handful of idle keep-alive clients pinned the
//! whole pool while the CPU sat idle.  This crate decouples connections from
//! workers:
//!
//! ```text
//!  clients ──► accept ──► reactor thread (epoll) ──► rf_runtime::ThreadPool
//!                           ▲      │  parse FSM            │ label generation
//!                           │      └── Dispatch ───────────┘
//!                           └──────── eventfd wake ◄── Completions
//! ```
//!
//! * [`sys`] — the only `unsafe` in the workspace: raw `epoll`/`eventfd`/
//!   socket bindings (Linux-only, no external dependencies), including
//!   [`sys::listen_reuseport`] for `SO_REUSEPORT` shard listeners.
//! * [`metrics`] — per-reactor counters
//!   ([`ReactorMetrics`](metrics::ReactorMetrics)) with torn-read-safe
//!   aggregation across shards.
//! * [`poller`] — level-triggered readiness polling with tokens and
//!   [`Interest`](poller::Interest) masks.
//! * [`wake`] — the self-wake channel: a [`Completions`](wake::Completions)
//!   queue plus an eventfd [`Waker`](wake::Waker) registered in the same
//!   epoll set as the sockets.
//! * [`parser`] — an incremental HTTP/1.x request parser that is fed
//!   whatever bytes a nonblocking read produced.
//! * [`conn`] — per-connection state machines with buffered,
//!   backpressure-aware response streaming (bodies can be `Arc`-shared with
//!   the label cache).
//! * [`reactor`] — the event loop: all socket I/O on one thread, CPU work
//!   dispatched through [`Dispatch`](reactor::Dispatch), responses returned
//!   through [`Responder`](reactor::Responder).
//! * [`client`] — the one blocking helper: reads a single response off a
//!   keep-alive stream, for tests, benches, and smoke checks.
//!
//! The crate knows nothing about datasets or labels; `rf-server` supplies
//! the `Dispatch` implementation that routes requests and schedules label
//! generation on the shared runtime pool.

#![warn(missing_docs)]
// `sys` is the workspace's single FFI seam; everything above it is safe.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod conn;
pub mod metrics;
pub mod parser;
pub mod poller;
pub mod reactor;
pub mod sys;
pub mod wake;

pub use client::{read_one_response, ClientResponse};
pub use conn::{ConnState, Connection, OutboundResponse, ReadOutcome, ResponseBody, WriteOutcome};
pub use metrics::{aggregate, ReactorMetrics, ReactorSnapshot};
pub use parser::{HttpParser, HttpVersion, ParseError, ParseEvent, ParsedRequest};
pub use poller::{Event, Interest, Poller};
pub use reactor::{Dispatch, Reactor, ReactorConfig, ReactorObservability, Responder};
pub use sys::listen_reuseport;
pub use wake::{Completion, Completions, Waker};
