//! Raw Linux syscall bindings for epoll and eventfd.
//!
//! The workspace policy is "no external dependencies" (crates.io is
//! unreachable from the build environment), so instead of the `libc` crate
//! this module declares the handful of C functions the reactor needs
//! directly — they resolve against the libc that `std` already links.  This
//! is the only module in the workspace that contains `unsafe`; everything
//! above it works with the safe [`Epoll`] and [`EventFd`] wrappers.
//!
//! Linux-only by design (the reactor is the Linux deployment path; the
//! blocking fallback server never left `rf-server`'s git history).

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::FromRawFd;
use std::os::raw::{c_int, c_uint, c_void};

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

/// `EPOLL_CTL_ADD`.
const EPOLL_CTL_ADD: c_int = 1;
/// `EPOLL_CTL_DEL`.
const EPOLL_CTL_DEL: c_int = 2;
/// `EPOLL_CTL_MOD`.
const EPOLL_CTL_MOD: c_int = 3;

/// Readability (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writability (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (== `O_CLOEXEC`).
const CLOEXEC: c_int = 0o2000000;
/// `EFD_NONBLOCK` (== `O_NONBLOCK`).
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`.  On x86-64 the kernel ABI packs it to
/// 12 bytes; other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready/interest bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-chosen token identifying the registration.
    pub data: u64,
}

impl EpollEvent {
    /// An event with the given interest mask and token.
    #[must_use]
    pub fn new(events: u32, data: u64) -> Self {
        EpollEvent { events, data }
    }
}

/// Converts a `-1`-on-error C return into an `io::Result`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

impl Epoll {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    /// The `epoll_create1` errno.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = cvt(unsafe { epoll_create1(CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Registers `fd` with the given interest mask and token.
    ///
    /// # Errors
    /// The `epoll_ctl` errno (e.g. `EEXIST` for a duplicate registration).
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces the interest mask for an already-registered `fd`.
    ///
    /// # Errors
    /// The `epoll_ctl` errno (e.g. `ENOENT` for an unknown fd).
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest list.
    ///
    /// # Errors
    /// The `epoll_ctl` errno.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent::new(events, token);
        // SAFETY: `event` is a valid `EpollEvent` living for the duration of
        // the call; for `EPOLL_CTL_DEL` the kernel ignores the pointer (and
        // we still pass a valid one for pre-2.6.9 semantics).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Waits for events, retrying on `EINTR`.  `timeout_ms < 0` blocks
    /// indefinitely.  Returns the number of events written into `events`.
    ///
    /// # Errors
    /// The `epoll_wait` errno (other than `EINTR`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
            // SAFETY: `events` is a valid, writable buffer of `capacity`
            // `EpollEvent`s; the kernel writes at most that many.
            let ret = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, timeout_ms) };
            match cvt(ret) {
                Ok(count) => return Ok(count as usize),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this struct owns; double-close is
        // impossible because drop runs once.
        let _ = unsafe { close(self.fd) };
    }
}

/// An owned eventfd used as a cross-thread wakeup signal; closed on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: c_int,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    ///
    /// # Errors
    /// The `eventfd` errno.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = cvt(unsafe { eventfd(0, CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    #[must_use]
    pub fn as_raw_fd(&self) -> i32 {
        self.fd
    }

    /// Adds 1 to the eventfd counter, making it readable.  Safe to call from
    /// any thread; a full counter (`EAGAIN`) already guarantees a pending
    /// wakeup, so that error is ignored.
    pub fn signal(&self) {
        let value: u64 = 1;
        // SAFETY: `value` lives for the duration of the call and the length
        // matches its size.
        let _ = unsafe {
            write(
                self.fd,
                std::ptr::addr_of!(value).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Resets the counter to 0 (consumes all pending wakeups).
    pub fn drain(&self) {
        let mut value: u64 = 0;
        // SAFETY: `value` is a valid writable 8-byte buffer.  The fd is
        // nonblocking, so the read returns immediately either way.
        let _ = unsafe {
            read(
                self.fd,
                std::ptr::addr_of_mut!(value).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this struct owns.
        let _ = unsafe { close(self.fd) };
    }
}

/// `AF_INET`.
const AF_INET: c_int = 2;
/// `AF_INET6`.
const AF_INET6: c_int = 10;
/// `SOCK_STREAM`.
const SOCK_STREAM: c_int = 1;
/// `SOCK_CLOEXEC` (== `O_CLOEXEC` on Linux).
const SOCK_CLOEXEC: c_int = CLOEXEC;
/// `SOL_SOCKET`.
const SOL_SOCKET: c_int = 1;
/// `SO_REUSEADDR`.
const SO_REUSEADDR: c_int = 2;
/// `SO_REUSEPORT`.
const SO_REUSEPORT: c_int = 15;
/// Accept backlog for reuseport listeners (same as std's default).
const LISTEN_BACKLOG: c_int = 128;

/// The kernel's `struct sockaddr_in` (IPv4).
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    /// Big-endian port.
    sin_port: u16,
    /// Big-endian address.
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// The kernel's `struct sockaddr_in6` (IPv6).
#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    /// Big-endian port.
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// An fd that is closed on drop unless released — keeps the socket from
/// leaking on any early-return path below.
struct OwnedFd(c_int);

impl OwnedFd {
    fn release(self) -> c_int {
        let fd = self.0;
        std::mem::forget(self);
        fd
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: `self.0` is an fd this struct owns.
        let _ = unsafe { close(self.0) };
    }
}

/// Binds a `TcpListener` with `SO_REUSEPORT` (and `SO_REUSEADDR`) set
/// before `bind`, so several listeners can share one address and the kernel
/// balances accepts across them.  `std::net::TcpListener::bind` offers no
/// pre-bind hook, hence the raw socket path; the returned listener is an
/// ordinary `std` listener and is nonblocking-agnostic (the reactor sets
/// nonblocking itself).
///
/// # Errors
/// Any errno from `socket`/`setsockopt`/`bind`/`listen`.
pub fn listen_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers involved; the return value is checked.
    let fd = OwnedFd(cvt(unsafe {
        socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0)
    })?);
    let one: c_int = 1;
    for option in [SO_REUSEADDR, SO_REUSEPORT] {
        // SAFETY: `one` lives for the duration of the call and the length
        // matches its size.
        cvt(unsafe {
            setsockopt(
                fd.0,
                SOL_SOCKET,
                option,
                std::ptr::addr_of!(one).cast::<c_void>(),
                std::mem::size_of::<c_int>() as u32,
            )
        })?;
    }
    match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from(*v4.ip()).to_be(),
                sin_zero: [0; 8],
            };
            // SAFETY: `raw` is a valid `sockaddr_in` living for the call
            // and the length matches its size.
            cvt(unsafe {
                bind(
                    fd.0,
                    std::ptr::addr_of!(raw).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: `raw` is a valid `sockaddr_in6` living for the call
            // and the length matches its size.
            cvt(unsafe {
                bind(
                    fd.0,
                    std::ptr::addr_of!(raw).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    // SAFETY: no pointers involved; the return value is checked.
    cvt(unsafe { listen(fd.0, LISTEN_BACKLOG) })?;
    // SAFETY: `fd` is a freshly created, bound, listening TCP socket whose
    // sole ownership transfers to the `TcpListener`.
    Ok(unsafe { TcpListener::from_raw_fd(fd.release()) })
}
