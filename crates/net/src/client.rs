//! A minimal blocking HTTP client helper.
//!
//! The reactor is nonblocking end to end, but everything that *talks to* it
//! — unit tests, integration tests, benches, smoke scripts — wants the
//! opposite: a dead-simple blocking read of exactly one response.  Keeping
//! the one correct implementation here stops the head-scan/`Content-Length`
//! dance from being copy-pasted into every test module.

use std::io::{self, Read};

/// One response read off a blocking stream: the raw head (request line +
/// headers + terminating blank line) and the body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status line and headers, verbatim, including the final `\r\n\r\n`.
    pub head: String,
    /// Exactly `Content-Length` body bytes (empty when the header is absent).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The status code parsed out of the status line.
    #[must_use]
    pub fn status(&self) -> Option<u16> {
        self.head.split_whitespace().nth(1)?.parse().ok()
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads exactly one HTTP response (head, then `Content-Length` body bytes)
/// from a blocking stream.  Suitable for keep-alive connections: nothing
/// past the response is consumed.
///
/// # Errors
/// I/O errors from the stream, or `InvalidData` for a head that is not
/// UTF-8 or declares a non-numeric `Content-Length`.
pub fn read_one_response<R: Read>(stream: &mut R) -> io::Result<ClientResponse> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?;
    let length: usize = match head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
    {
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?,
        None => 0,
    };
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok(ClientResponse { head, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_one_response_and_leaves_the_rest() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhelloHTTP/1.1 404 ...";
        let mut stream: &[u8] = raw;
        let response = read_one_response(&mut stream).expect("response");
        assert_eq!(response.status(), Some(200));
        assert_eq!(response.body_text(), "hello");
        assert!(response.head.ends_with("\r\n\r\n"));
        // The next response's bytes are untouched on the stream.
        assert!(stream.starts_with(b"HTTP/1.1 404"));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let mut stream: &[u8] = b"HTTP/1.1 204 No Content\r\n\r\n";
        let response = read_one_response(&mut stream).expect("response");
        assert_eq!(response.status(), Some(204));
        assert!(response.body.is_empty());
    }

    #[test]
    fn bad_content_length_is_invalid_data() {
        let mut stream: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: soup\r\n\r\n";
        let err = read_one_response(&mut stream).expect_err("invalid");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
