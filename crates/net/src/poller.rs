//! Readiness polling over [`sys::Epoll`].
//!
//! [`Poller`] owns the epoll instance and translates between the reactor's
//! vocabulary (tokens, [`Interest`]) and the raw event bitmasks.  It is
//! level-triggered: an event keeps firing while the condition holds, so the
//! reactor never needs to drain a socket in one pass to stay correct.

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Neither readability nor writability — errors and aborts only
    /// (epoll always reports `EPOLLERR`/`EPOLLHUP`), used while a request
    /// is in flight and the connection should stay quiet.  An *orderly*
    /// peer half-close is deliberately not watched here: the reactor
    /// notices it on the next read or write instead.  Watching `EPOLLRDHUP`
    /// with an otherwise-empty mask would let one half-closed client spin
    /// the level-triggered event loop at full CPU for as long as its
    /// request generates.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut mask = 0;
        if self.readable {
            // RDHUP rides along with read interest so EOF wakes the
            // reactor; it is consumed by the read(0) → close path, which
            // is what keeps a level-triggered loop from re-firing on it.
            mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or the peer half-closed: reads won't block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup: the connection is beyond saving.
    pub closed: bool,
}

/// The reactor's readiness source.
#[derive(Debug)]
pub struct Poller {
    epoll: sys::Epoll,
    events: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates the poller.
    ///
    /// # Errors
    /// `epoll_create1` errno.
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            epoll: sys::Epoll::new()?,
            events: vec![sys::EpollEvent::new(0, 0); 256],
        })
    }

    /// Registers an fd under `token` with the given interest.
    ///
    /// # Errors
    /// `epoll_ctl` errno.
    pub fn register(&self, fd: &impl AsRawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.epoll.add(fd.as_raw_fd(), interest.mask(), token)
    }

    /// Updates the interest of a registered fd.
    ///
    /// # Errors
    /// `epoll_ctl` errno.
    pub fn reregister(&self, fd: &impl AsRawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.epoll.modify(fd.as_raw_fd(), interest.mask(), token)
    }

    /// Removes a registration.  Kernel-side cleanup also happens when the fd
    /// closes; this keeps the interest list tidy when a connection is closed
    /// while its fd is still open (e.g. handed back to the caller).
    ///
    /// # Errors
    /// `epoll_ctl` errno.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.epoll.delete(fd.as_raw_fd())
    }

    /// Registers a raw fd (the wake eventfd, which is not an `AsRawFd` type).
    ///
    /// # Errors
    /// `epoll_ctl` errno.
    pub fn register_raw(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.epoll.add(fd, interest.mask(), token)
    }

    /// Waits up to `timeout_ms` (negative: forever) and returns the ready
    /// events.
    ///
    /// # Errors
    /// `epoll_wait` errno (`EINTR` is retried internally).
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<Vec<Event>> {
        let count = self.epoll.wait(&mut self.events, timeout_ms)?;
        Ok(self.events[..count]
            .iter()
            .map(|raw| {
                let bits = raw.events;
                Event {
                    token: raw.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn reports_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(&server, Interest::READABLE, 7)
            .expect("register");

        // Nothing to read yet.
        let events = poller.wait(0).expect("wait");
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").expect("write");
        let events = poller.wait(1000).expect("wait");
        let event = events.iter().find(|e| e.token == 7).expect("event");
        assert!(event.readable);
        assert!(!event.writable);

        // A fresh socket is immediately writable once interest includes it.
        poller
            .reregister(
                &server,
                Interest {
                    readable: true,
                    writable: true,
                },
                7,
            )
            .expect("reregister");
        let events = poller.wait(1000).expect("wait");
        let event = events.iter().find(|e| e.token == 7).expect("event");
        assert!(event.writable);

        poller.deregister(&server).expect("deregister");
        client.write_all(b"more").expect("write");
        let events = poller.wait(10).expect("wait");
        assert!(events.iter().all(|e| e.token != 7));
    }

    #[test]
    fn quiet_interest_ignores_orderly_close_until_rearmed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(&server, Interest::NONE, 3)
            .expect("register");
        drop(client);
        // An orderly FIN must NOT fire a quiet registration — otherwise a
        // half-closed client would busy-spin the level-triggered loop while
        // its request is in flight.
        let events = poller.wait(100).expect("wait");
        assert!(
            events.iter().all(|e| e.token != 3),
            "orderly close must stay invisible under Interest::NONE"
        );
        // Rearming read interest surfaces the EOF immediately.
        poller
            .reregister(&server, Interest::READABLE, 3)
            .expect("reregister");
        let events = poller.wait(1000).expect("wait");
        let event = events.iter().find(|e| e.token == 3).expect("event");
        assert!(event.readable, "EOF is readable once read interest is back");
    }
}
