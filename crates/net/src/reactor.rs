//! The event loop: one thread multiplexing every connection.
//!
//! The [`Reactor`] owns the listener, the [`Poller`], the wake channel, and
//! every [`Connection`].  All socket I/O happens here; CPU work leaves
//! through [`Dispatch::dispatch`] (the label server hands it to the
//! `rf_runtime::ThreadPool`) and returns through the [`Completions`] queue
//! plus the eventfd waker.  Idle keep-alive connections therefore cost one
//! epoll registration and a parser buffer — no thread, no pool worker.
//!
//! Per-connection failures (malformed requests, mid-write disconnects,
//! handler panics) only ever close that one connection: the accept loop and
//! the other registrations are untouched, and closing a connection both
//! deregisters it and retires its token, so completions for dead
//! connections are dropped instead of reaching a stranger.

use crate::conn::{
    ConnState, Connection, OutboundResponse, ReadOutcome, ResponseBody, WriteOutcome,
};
use crate::metrics::ReactorMetrics;
use crate::parser::ParsedRequest;
use crate::poller::{Interest, Poller};
use crate::wake::{Completions, Waker};
use rf_obs::{RequestId, RequestSpan, Stage, StageHistograms, TraceRing};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Token of the accept socket.
const TOKEN_LISTENER: u64 = 0;
/// Token of the wake eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection.  Tokens increase monotonically and
/// are never reused, so a completion can never be delivered to a different
/// connection than the one that dispatched it.
const TOKEN_FIRST_CONN: u64 = 2;

/// How long `epoll_wait` sleeps between shutdown-flag checks.
const SHUTDOWN_POLL_MS: i32 = 50;

/// Application hook: called on the reactor thread with each complete
/// request.  Implementations must not block — hand the work to a pool and
/// answer through the [`Responder`], from any thread, when done.
pub trait Dispatch: Send + Sync + 'static {
    /// Handles one parsed request.  The [`Responder`] is one-shot; dropping
    /// it unanswered makes the reactor send a 500 and close, so a panicking
    /// handler can never strand its connection.
    fn dispatch(&self, request: ParsedRequest, responder: Responder);
}

/// The one-shot reply handle for a dispatched request.
#[derive(Debug)]
pub struct Responder {
    completions: Completions,
    metrics: Arc<ReactorMetrics>,
    conn_id: u64,
    keep_alive: bool,
    sent: bool,
    span: Arc<RequestSpan>,
}

impl Responder {
    /// The request's live span (`shard:seq` id plus per-stage timing slots).
    /// Handlers record worker-side stages into it from any thread; the
    /// reactor finishes it when the response flushes.
    #[must_use]
    pub fn span(&self) -> &Arc<RequestSpan> {
        &self.span
    }

    /// Whether the request's protocol version and `Connection` header allow
    /// the connection to stay open — the handler echoes this into the head
    /// it builds.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Sends the response back to the reactor and wakes it.
    pub fn send(mut self, response: OutboundResponse) {
        self.sent = true;
        self.completions.complete(self.conn_id, response);
    }

    /// Refuses the request with a canned `503` + `Retry-After` — the
    /// admission-control path.  Unlike the connection-cap `503`, a shed
    /// request keeps its keep-alive connection open: the client paid for
    /// the handshake and should retry on the same socket after the hinted
    /// backoff.  Bumps the reactor's shed-request counter.
    pub fn shed(mut self, retry_after_secs: u64) {
        self.sent = true;
        self.metrics.on_shed_request();
        let keep_alive = self.keep_alive;
        self.completions
            .complete(self.conn_id, shed_response(retry_after_secs, keep_alive));
    }

    /// A clone of the reactor's waker — for belt-and-braces completion
    /// notification (e.g. `rf_runtime::ThreadPool::execute_notify`), so the
    /// reactor re-checks its completion queue after every job no matter how
    /// the job ended.
    #[must_use]
    pub fn waker(&self) -> Waker {
        self.completions.waker().clone()
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if !self.sent {
            // The handler died (panicked, or was dropped with its pool):
            // fail this connection, and only this connection, loudly.
            self.completions
                .complete(self.conn_id, internal_error_response());
        }
    }
}

/// The canned `400` for bytes that never were a request.
fn bad_request_response(message: &str) -> OutboundResponse {
    plain_response(400, "Bad Request", message)
}

/// The canned `500` for handlers that vanished without answering.
fn internal_error_response() -> OutboundResponse {
    plain_response(500, "Internal Server Error", "request handler failed")
}

/// The canned `503` for connections over the configured cap.
fn unavailable_response() -> OutboundResponse {
    plain_response(503, "Service Unavailable", "connection limit reached")
}

/// The canned `503` for requests refused by admission control.  Carries a
/// `Retry-After` hint and, unlike the connection-cap refusal, keeps the
/// connection open when the client asked for keep-alive.
fn shed_response(retry_after_secs: u64, keep_alive: bool) -> OutboundResponse {
    let body = "server overloaded; retry after backoff";
    OutboundResponse {
        head: format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )
        .into_bytes(),
        body: ResponseBody::Owned(body.as_bytes().to_vec()),
        keep_alive,
    }
}

/// Splices an `X-Request-Id` header into a finished response head.  Every
/// head built by handlers or the canned responders ends with the blank line
/// (`\r\n\r\n`); the header goes right before it, leaving the body — and the
/// byte-identical label contract — untouched.
fn splice_request_id(head: &mut Vec<u8>, id: RequestId) {
    if head.ends_with(b"\r\n\r\n") {
        let insert_at = head.len() - 2;
        let header = format!("X-Request-Id: {id}\r\n");
        head.splice(insert_at..insert_at, header.into_bytes());
    }
}

fn plain_response(code: u16, reason: &str, body: &str) -> OutboundResponse {
    OutboundResponse {
        head: format!(
            "HTTP/1.1 {code} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .into_bytes(),
        body: ResponseBody::Owned(body.as_bytes().to_vec()),
        keep_alive: false,
    }
}

/// Reactor tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Maximum simultaneously open connections; excess accepts are answered
    /// with a synchronous `503` and closed.
    pub max_connections: usize,
    /// How long a connection may sit without socket activity before it is
    /// closed — bounds both idle keep-alive clients (between requests) and
    /// stalled readers (mid-response).  Without it, `max_connections`
    /// permanently parked clients would lock every new client out.
    pub idle_timeout: std::time::Duration,
    /// How long a *started* request may take to arrive completely.  Unlike
    /// the idle timeout, dripping one byte at a time does not reset this
    /// clock (the slow-loris defence).
    pub request_deadline: std::time::Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 4096,
            idle_timeout: std::time::Duration::from_secs(60),
            request_deadline: std::time::Duration::from_secs(30),
        }
    }
}

/// Per-shard observability wiring: where the reactor records its
/// network-side stage timings (`parse`, `write`), how it mints request ids,
/// and where finished slow traces land.
#[derive(Debug, Clone)]
pub struct ReactorObservability {
    /// Shard index minted into request ids (`shard:seq`) and used as the
    /// `shard` label in `/metrics`.
    pub shard: u32,
    /// This shard's stage histograms (`parse` and `write` recorded here;
    /// worker-side stages go to `rf_obs::service_stages()`).
    pub stages: Arc<StageHistograms>,
    /// Ring receiving completed traces that exceed `slow_threshold` —
    /// typically shared by every shard and served at `/debug/slow`.
    pub ring: Arc<TraceRing>,
    /// Requests whose end-to-end latency reaches this threshold have their
    /// trace pushed to `ring`.  Zero traces everything.
    pub slow_threshold: std::time::Duration,
}

impl Default for ReactorObservability {
    fn default() -> Self {
        ReactorObservability {
            shard: 0,
            stages: Arc::new(StageHistograms::new()),
            ring: Arc::new(TraceRing::new(64)),
            slow_threshold: std::time::Duration::from_millis(500),
        }
    }
}

/// How often the timeout sweep walks the connection table.
const SWEEP_INTERVAL: std::time::Duration = std::time::Duration::from_secs(1);

struct Tracked {
    conn: Connection,
    interest: Interest,
    /// Last socket readiness (or completion delivery) for this connection.
    last_activity: std::time::Instant,
    /// When the currently-arriving request's first bytes landed.
    request_started: Option<std::time::Instant>,
    /// The in-flight request's span, finished when its response flushes.
    span: Option<Arc<RequestSpan>>,
    /// When the in-flight request's response was enqueued for writing.
    response_started: Option<std::time::Instant>,
}

/// The epoll event loop over one listener.
pub struct Reactor<D: Dispatch> {
    poller: Poller,
    listener: TcpListener,
    dispatch: Arc<D>,
    completions: Completions,
    conns: HashMap<u64, Tracked>,
    next_token: u64,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
    last_sweep: std::time::Instant,
    metrics: Arc<ReactorMetrics>,
    obs: ReactorObservability,
    /// Per-shard request sequence number (starts at 1 for the first request).
    next_seq: u64,
}

impl<D: Dispatch> Reactor<D> {
    /// Builds a reactor over a bound listener.  `shutdown` stops [`run`]
    /// (checked every [`SHUTDOWN_POLL_MS`]).
    ///
    /// [`run`]: Reactor::run
    ///
    /// # Errors
    /// Poller/eventfd creation errors.
    pub fn new(
        listener: TcpListener,
        dispatch: Arc<D>,
        shutdown: Arc<AtomicBool>,
        config: ReactorConfig,
    ) -> io::Result<Self> {
        let waker = Waker::new()?;
        Ok(Reactor {
            poller: Poller::new()?,
            listener,
            dispatch,
            completions: Completions::new(waker),
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            shutdown,
            config,
            last_sweep: std::time::Instant::now(),
            metrics: Arc::new(ReactorMetrics::new()),
            obs: ReactorObservability::default(),
            next_seq: 0,
        })
    }

    /// Replaces the default (private, shard-0) observability wiring —
    /// multi-shard servers install their shard index, the shared slow-trace
    /// ring, and the configured slow threshold here before [`run`].
    ///
    /// [`run`]: Reactor::run
    pub fn set_observability(&mut self, obs: ReactorObservability) {
        self.obs = obs;
    }

    /// The reactor's observability wiring (clone the `Arc`s before [`run`]
    /// consumes the reactor to keep reading them from other threads).
    ///
    /// [`run`]: Reactor::run
    #[must_use]
    pub fn observability(&self) -> &ReactorObservability {
        &self.obs
    }

    /// Number of currently open connections.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// The reactor's live counters — clone the `Arc` before [`run`]
    /// consumes the reactor to keep observing it from other threads.
    ///
    /// [`run`]: Reactor::run
    #[must_use]
    pub fn metrics(&self) -> Arc<ReactorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the event loop until the shutdown flag is set.  Connections are
    /// drained from the poller, completions from the wake channel; both per
    /// iteration.
    ///
    /// # Errors
    /// Fatal errors from the poller or the listener registration.  Per
    /// connection errors never propagate here.
    pub fn run(mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        self.poller
            .register(&self.listener, Interest::READABLE, TOKEN_LISTENER)?;
        self.poller.register_raw(
            self.completions.waker().as_raw_fd(),
            Interest::READABLE,
            TOKEN_WAKER,
        )?;
        while !self.shutdown.load(Ordering::Relaxed) {
            let events = self.poller.wait(SHUTDOWN_POLL_MS)?;
            for event in events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.completions.waker().drain(),
                    token => self.connection_ready(token, event.closed, event.writable),
                }
            }
            self.apply_completions();
            self.sweep_timeouts();
        }
        Ok(())
    }

    /// Closes connections that outstayed their welcome: no socket activity
    /// for `idle_timeout`, or a request that started `request_deadline` ago
    /// and still hasn't arrived completely (slow drips refresh activity but
    /// not the request clock).  In-flight requests are exempt — they are
    /// bounded by our own pool, not the client.
    fn sweep_timeouts(&mut self) {
        let now = std::time::Instant::now();
        if now.duration_since(self.last_sweep) < SWEEP_INTERVAL {
            return;
        }
        self.last_sweep = now;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, tracked)| match tracked.conn.state() {
                ConnState::InFlight => false,
                ConnState::Reading | ConnState::Writing => {
                    let overdue_request = tracked.request_started.is_some_and(|started| {
                        now.duration_since(started) > self.config.request_deadline
                    });
                    overdue_request
                        || now.duration_since(tracked.last_activity) > self.config.idle_timeout
                }
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let Ok(mut conn) = Connection::new(stream) else {
                        continue; // set_nonblocking failed; drop the stream.
                    };
                    if self.conns.len() >= self.config.max_connections {
                        // Best-effort synchronous refusal; the socket goes
                        // away either way.
                        self.metrics.on_shed_connection();
                        conn.enqueue_response(unavailable_response());
                        let _ = conn.on_writable();
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(conn.stream(), Interest::READABLE, token)
                        .is_ok()
                    {
                        self.metrics.on_accepted();
                        self.conns.insert(
                            token,
                            Tracked {
                                conn,
                                interest: Interest::READABLE,
                                last_activity: std::time::Instant::now(),
                                request_started: None,
                                span: None,
                                response_started: None,
                            },
                        );
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) => {
                    // Hard accept failures (fd exhaustion, aborted
                    // handshakes).  The listener stays readable, so a bare
                    // return would level-trigger right back here at full
                    // CPU; a short sleep turns that into a paced retry
                    // until pressure lifts.  In-flight connections are
                    // delayed by at most the sleep.
                    eprintln!("accept error (backing off): {err}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    /// Routes a readiness event for one connection.
    fn connection_ready(&mut self, token: u64, closed: bool, writable: bool) {
        let Some(tracked) = self.conns.get_mut(&token) else {
            return; // Already closed this iteration; stale event.
        };
        tracked.last_activity = std::time::Instant::now();
        if closed {
            self.close(token);
            return;
        }
        match tracked.conn.state() {
            ConnState::Reading => self.drive_read(token),
            ConnState::Writing => {
                if writable {
                    self.drive_write(token);
                }
            }
            // Quiet while the pool works; EPOLLHUP/EPOLLERR (handled above)
            // are the only events that matter here.
            ConnState::InFlight => {}
        }
    }

    /// Reads and, on a complete request, dispatches.
    fn drive_read(&mut self, token: u64) {
        let Some(tracked) = self.conns.get_mut(&token) else {
            return;
        };
        match tracked.conn.on_readable() {
            ReadOutcome::NeedMore => {
                // Start (or keep) the request-progress clock while a
                // partial request sits in the parser.
                if tracked.conn.mid_request() {
                    tracked
                        .request_started
                        .get_or_insert_with(std::time::Instant::now);
                } else {
                    tracked.request_started = None;
                }
                self.set_interest(token, Interest::READABLE);
            }
            ReadOutcome::Disconnected => self.close(token),
            ReadOutcome::BadRequest(err) => {
                tracked
                    .conn
                    .enqueue_response(bad_request_response(&err.to_string()));
                self.drive_write(token);
            }
            ReadOutcome::Request(request) => self.dispatch_request(token, request),
        }
    }

    /// Hands a parsed request to the application and quiets the socket.
    fn dispatch_request(&mut self, token: u64, request: ParsedRequest) {
        let Some(tracked) = self.conns.get_mut(&token) else {
            return;
        };
        tracked.conn.mark_in_flight();
        self.next_seq += 1;
        let span = Arc::new(RequestSpan::begin(RequestId {
            shard: self.obs.shard,
            seq: self.next_seq,
        }));
        // Parse stage: first request byte → complete parse.  A request that
        // arrived whole in a single read never started the clock; its parse
        // time is below timer resolution and recorded as zero.
        let parse_elapsed = tracked
            .request_started
            .take()
            .map(|started| started.elapsed())
            .unwrap_or_default();
        span.record(Stage::Parse, parse_elapsed);
        self.obs.stages.record(Stage::Parse, parse_elapsed);
        tracked.span = Some(Arc::clone(&span));
        self.set_interest(token, Interest::NONE);
        self.metrics.on_dispatched();
        let responder = Responder {
            completions: self.completions.clone(),
            metrics: Arc::clone(&self.metrics),
            conn_id: token,
            keep_alive: request.keep_alive(),
            sent: false,
            span,
        };
        let dispatch = Arc::clone(&self.dispatch);
        dispatch.dispatch(request, responder);
    }

    /// Flushes buffered chunks and advances the keep-alive state machine.
    fn drive_write(&mut self, token: u64) {
        let Some(tracked) = self.conns.get_mut(&token) else {
            return;
        };
        match tracked.conn.on_writable() {
            WriteOutcome::Disconnected => self.close(token),
            WriteOutcome::Pending => self.set_interest(token, Interest::WRITABLE),
            WriteOutcome::Flushed => {
                // The in-flight request's response just fully left the
                // socket: close out its write stage and finish its span.
                if let Some(started) = tracked.response_started.take() {
                    let write_elapsed = started.elapsed();
                    if let Some(span) = tracked.span.as_ref() {
                        span.record(Stage::Write, write_elapsed);
                    }
                    self.obs.stages.record(Stage::Write, write_elapsed);
                }
                if let Some(span) = tracked.span.take() {
                    let trace = span.finish();
                    let threshold =
                        u64::try_from(self.obs.slow_threshold.as_micros()).unwrap_or(u64::MAX);
                    if trace.total_micros >= threshold {
                        self.obs.ring.push(trace);
                    }
                }
                if tracked.conn.closing() {
                    self.close(token);
                    return;
                }
                // Keep-alive: a pipelined request may already be buffered.
                match tracked.conn.poll_buffered_request() {
                    ReadOutcome::Request(request) => self.dispatch_request(token, request),
                    ReadOutcome::BadRequest(err) => {
                        tracked
                            .conn
                            .enqueue_response(bad_request_response(&err.to_string()));
                        self.drive_write(token);
                    }
                    ReadOutcome::NeedMore | ReadOutcome::Disconnected => {
                        // A pipelined request may already be partially
                        // buffered; its progress clock starts now.
                        if tracked.conn.mid_request() {
                            tracked
                                .request_started
                                .get_or_insert_with(std::time::Instant::now);
                        }
                        self.set_interest(token, Interest::READABLE);
                    }
                }
            }
        }
    }

    /// Delivers finished responses; completions for closed connections are
    /// dropped (their tokens are never reused).
    fn apply_completions(&mut self) {
        for completion in self.completions.take_all() {
            self.metrics.on_completion();
            let Some(tracked) = self.conns.get_mut(&completion.conn_id) else {
                continue; // Client left before its label finished.
            };
            tracked.last_activity = std::time::Instant::now();
            if tracked.conn.state() != ConnState::InFlight {
                continue; // One response per request; anything else is stale.
            }
            let mut response = completion.response;
            if let Some(span) = tracked.span.as_ref() {
                splice_request_id(&mut response.head, span.id());
            }
            tracked.response_started = Some(std::time::Instant::now());
            tracked.conn.enqueue_response(response);
            self.drive_write(completion.conn_id);
        }
    }

    /// Updates the poller interest when it changed.
    fn set_interest(&mut self, token: u64, interest: Interest) {
        let Some(tracked) = self.conns.get_mut(&token) else {
            return;
        };
        if tracked.interest == interest {
            return;
        }
        if self
            .poller
            .reregister(tracked.conn.stream(), interest, token)
            .is_ok()
        {
            tracked.interest = interest;
        } else {
            self.close(token);
        }
    }

    /// Closes one connection: deregisters, forgets, drops (closing the fd).
    fn close(&mut self, token: u64) {
        if let Some(tracked) = self.conns.remove(&token) {
            let _ = self.poller.deregister(tracked.conn.stream());
            self.metrics.on_closed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    /// Answers inline on the reactor thread: status 200, body = the target.
    struct Echo;

    impl Dispatch for Echo {
        fn dispatch(&self, request: ParsedRequest, responder: Responder) {
            if request.target == "/panic" {
                // Dropping the responder unanswered models a dead handler.
                return;
            }
            if request.target == "/shed" {
                responder.shed(7);
                return;
            }
            let keep_alive = responder.keep_alive();
            let body = request.target.clone();
            responder.send(OutboundResponse {
                head: format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                    body.len(),
                    if keep_alive { "keep-alive" } else { "close" }
                )
                .into_bytes(),
                body: ResponseBody::Owned(body.into_bytes()),
                keep_alive,
            });
        }
    }

    fn start_echo_with(config: ReactorConfig) -> (std::net::SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let reactor =
            Reactor::new(listener, Arc::new(Echo), Arc::clone(&shutdown), config).expect("reactor");
        std::thread::spawn(move || reactor.run().expect("reactor run"));
        (addr, shutdown)
    }

    fn start_echo() -> (std::net::SocketAddr, Arc<AtomicBool>) {
        start_echo_with(ReactorConfig::default())
    }

    fn read_one_response(stream: &mut TcpStream) -> String {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let response = crate::client::read_one_response(stream).expect("response");
        format!("{}{}", response.head, response.body_text())
    }

    #[test]
    fn serves_sequential_keep_alive_requests_on_one_connection() {
        let (addr, shutdown) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        for i in 0..5 {
            stream
                .write_all(format!("GET /req-{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .expect("write");
            let response = read_one_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.ends_with(&format!("/req-{i}")), "{response}");
        }
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (addr, shutdown) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("write");
        for target in ["/a", "/b", "/c"] {
            let response = read_one_response(&mut stream);
            assert!(response.ends_with(target), "{response}");
        }
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn malformed_request_gets_400_and_closes_only_that_connection() {
        let (addr, shutdown) = start_echo();
        let mut healthy = TcpStream::connect(addr).expect("connect healthy");
        let mut broken = TcpStream::connect(addr).expect("connect broken");
        broken.write_all(b"NOT_HTTP\r\n\r\n").expect("write");
        let response = read_one_response(&mut broken);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        // The broken connection is closed…
        let mut rest = Vec::new();
        broken.read_to_end(&mut rest).expect("eof");
        assert!(rest.is_empty());
        // …while the healthy one still works.
        healthy
            .write_all(b"GET /still-alive HTTP/1.1\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut healthy);
        assert!(response.ends_with("/still-alive"), "{response}");
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn dropped_responder_sends_500_instead_of_stranding_the_connection() {
        let (addr, shutdown) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /panic HTTP/1.1\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut stream);
        assert!(response.starts_with("HTTP/1.1 500"), "{response}");
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn idle_and_slow_drip_connections_are_timed_out() {
        let (addr, shutdown) = start_echo_with(ReactorConfig {
            max_connections: 64,
            idle_timeout: Duration::from_millis(1500),
            request_deadline: Duration::from_millis(1500),
        });

        // An idle connection is closed once it outlives the idle timeout.
        let mut idle = TcpStream::connect(addr).expect("idle connect");
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = Vec::new();
        idle.read_to_end(&mut buf).expect("EOF from idle timeout");
        assert!(buf.is_empty());

        // A slow-dripping request keeps refreshing activity but cannot
        // outrun the request deadline.
        let mut drip = TcpStream::connect(addr).expect("drip connect");
        drip.set_read_timeout(Some(Duration::from_secs(1)))
            .expect("timeout");
        let started = std::time::Instant::now();
        drip.write_all(b"GET /slow HTTP/1.1\r\n")
            .expect("first bytes");
        // One header byte per 100ms: each write refreshes socket activity,
        // but the request clock started at the first bytes.  The server
        // drops the connection at the deadline, which surfaces as a write
        // error (RST) within a few more drips.
        let mut closed = false;
        while started.elapsed() < Duration::from_secs(8) {
            if drip.write_all(b"x").is_err() {
                closed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(
            closed,
            "drip connection must be cut by the request deadline"
        );

        // A well-behaved connection opened afterwards is served normally.
        let mut fine = TcpStream::connect(addr).expect("connect");
        fine.write_all(b"GET /ok HTTP/1.1\r\n\r\n").expect("write");
        let response = read_one_response(&mut fine);
        assert!(response.ends_with("/ok"), "{response}");

        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn shed_sends_503_with_retry_after_and_keeps_the_connection() {
        let (addr, shutdown) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /shed HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut stream);
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After: 7"), "{response}");
        assert!(response.contains("Connection: keep-alive"), "{response}");
        // The connection survived the shed: the retry succeeds on the same
        // socket.
        stream
            .write_all(b"GET /after-shed HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write retry");
        let response = read_one_response(&mut stream);
        assert!(response.ends_with("/after-shed"), "{response}");
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn reuseport_listeners_share_one_address_and_both_accept() {
        // Two reactors, two SO_REUSEPORT listeners on the same port: the
        // kernel spreads accepts across them, and every connection is served
        // by whichever reactor owns it end to end.
        let first = crate::sys::listen_reuseport("127.0.0.1:0".parse().expect("addr"))
            .expect("first reuseport listener");
        let addr = first.local_addr().expect("local addr");
        let second = crate::sys::listen_reuseport(addr).expect("second reuseport listener");

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut metrics = Vec::new();
        for listener in [first, second] {
            let reactor = Reactor::new(
                listener,
                Arc::new(Echo),
                Arc::clone(&shutdown),
                ReactorConfig::default(),
            )
            .expect("reactor");
            metrics.push(reactor.metrics());
            std::thread::spawn(move || reactor.run().expect("reactor run"));
        }

        // 64 one-shot connections from distinct source ports; the reuseport
        // hash puts a share on each listener (the chance one shard sees all
        // 64 is ~2^-64).
        for i in 0..64 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(format!("GET /conn-{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .expect("write");
            let response = read_one_response(&mut stream);
            assert!(response.ends_with(&format!("/conn-{i}")), "{response}");
        }

        let (snapshots, totals) = crate::metrics::aggregate(&metrics);
        assert_eq!(totals.accepted, 64, "{snapshots:?}");
        assert_eq!(totals.dispatched, 64, "{snapshots:?}");
        for snap in &snapshots {
            assert!(
                snap.accepted > 0,
                "kernel balanced no accepts onto one shard: {snapshots:?}"
            );
        }

        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn responses_carry_unique_request_ids() {
        let (addr, shutdown) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut ids = Vec::new();
        for i in 0..3 {
            stream
                .write_all(format!("GET /id-{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .expect("write");
            let response = read_one_response(&mut stream);
            let id_line = response
                .lines()
                .find(|line| line.starts_with("X-Request-Id: "))
                .unwrap_or_else(|| panic!("missing X-Request-Id: {response}"))
                .trim_start_matches("X-Request-Id: ")
                .to_string();
            let (shard, seq) = id_line.split_once(':').expect("shard:seq format");
            assert_eq!(shard.parse::<u32>().expect("shard"), 0);
            assert!(seq.parse::<u64>().expect("seq") >= 1);
            ids.push(id_line);
            // The body is untouched by the header splice.
            assert!(response.ends_with(&format!("/id-{i}")), "{response}");
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3, "request ids must be unique");
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn zero_slow_threshold_traces_every_request() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut reactor = Reactor::new(
            listener,
            Arc::new(Echo),
            Arc::clone(&shutdown),
            ReactorConfig::default(),
        )
        .expect("reactor");
        let ring = Arc::new(TraceRing::new(8));
        let stages = Arc::new(StageHistograms::new());
        reactor.set_observability(ReactorObservability {
            shard: 3,
            stages: Arc::clone(&stages),
            ring: Arc::clone(&ring),
            slow_threshold: Duration::ZERO,
        });
        std::thread::spawn(move || reactor.run().expect("reactor run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        for _ in 0..2 {
            stream
                .write_all(b"GET /traced HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("write");
            let response = read_one_response(&mut stream);
            assert!(response.contains("X-Request-Id: 3:"), "{response}");
        }

        // Trace finalization happens on the reactor thread right after the
        // flush that our read observed; give it a moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ring.recorded() < 2 {
            assert!(std::time::Instant::now() < deadline, "traces never landed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let traces = ring.snapshot();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.id.shard == 3));
        // Parse and write are recorded per shard.
        let snap = stages.snapshot();
        assert_eq!(snap.get(Stage::Parse).count(), 2);
        assert_eq!(snap.get(Stage::Write).count(), 2);
        shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn many_idle_connections_do_not_stall_active_ones() {
        let (addr, shutdown) = start_echo();
        let idle: Vec<TcpStream> = (0..100)
            .map(|_| TcpStream::connect(addr).expect("idle connect"))
            .collect();
        let mut active = TcpStream::connect(addr).expect("active connect");
        active
            .write_all(b"GET /active HTTP/1.1\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut active);
        assert!(response.ends_with("/active"), "{response}");
        drop(idle);
        shutdown.store(true, Ordering::Relaxed);
    }
}
