//! Comparing two rankings of the same items.
//!
//! The Monte-Carlo stability estimator re-ranks perturbed copies of the data
//! and asks how far the perturbed ranking drifted from the original.  Three
//! classic measures are provided:
//!
//! * [`kendall_tau_rankings`] — Kendall's tau on the rank vectors.
//! * [`spearman_rho_rankings`] — Spearman's rho on the rank vectors.
//! * [`footrule_distance`] — Spearman's footrule (total absolute rank
//!   displacement), plus its normalized variant.

use crate::error::{RankingError, RankingResult};
use crate::ranking::Ranking;
use rf_stats::spearman;

/// Validates that the two rankings cover the same number of items.
fn validate_same_items(a: &Ranking, b: &Ranking) -> RankingResult<()> {
    if a.len() != b.len() {
        return Err(RankingError::IncomparableRankings {
            message: format!("rankings have different sizes ({} vs {})", a.len(), b.len()),
        });
    }
    Ok(())
}

/// Kendall's tau between two rankings of the same items.
///
/// Returns 1.0 for identical orders and −1.0 for exactly reversed orders.
///
/// Because a [`Ranking`] is a tie-free permutation, tau reduces to an
/// inversion count, which is computed in `O(n log n)` by merge sort — the
/// Monte-Carlo stability estimator and the FA*IR re-ranker call this on every
/// perturbed ranking, so the quadratic pair scan of the general-purpose
/// [`kendall_tau`] would dominate their cost.
///
/// # Errors
/// Returns an error when the rankings have different sizes or fewer than two
/// items.
pub fn kendall_tau_rankings(a: &Ranking, b: &Ranking) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    let n = a.len();
    if n < 2 {
        return Err(RankingError::IncomparableRankings {
            message: "Kendall tau needs at least two items".to_string(),
        });
    }
    // Walk the items in `a`'s rank order and count how many pairs appear in
    // the opposite order in `b` (inversions of the induced sequence).
    let rank_b = b.rank_vector();
    let mut sequence: Vec<usize> = a.order().into_iter().map(|item| rank_b[item]).collect();
    let inversions = count_inversions(&mut sequence);
    let total_pairs = (n * (n - 1) / 2) as f64;
    Ok(1.0 - 2.0 * inversions as f64 / total_pairs)
}

/// Kendall's tau of a perturbed ranking against the original one, expressed
/// on raw buffers so the Monte-Carlo hot path can reuse its scratch
/// allocations: `original_order` is the original ranking's
/// [`Ranking::order`], `rank_of_perturbed` its [`Ranking::rank_vector`]
/// counterpart for the perturbed ranking (1-based rank per original row
/// index).  Byte-identical to [`kendall_tau_rankings`] on the corresponding
/// [`Ranking`] values.
///
/// The caller guarantees the two rankings cover the same `n >= 2` items;
/// `sequence` and `merge` are scratch buffers that are cleared and refilled.
#[must_use]
pub fn kendall_tau_with_scratch(
    original_order: &[usize],
    rank_of_perturbed: &[usize],
    sequence: &mut Vec<usize>,
    merge: &mut Vec<usize>,
) -> f64 {
    let n = original_order.len();
    debug_assert!(n >= 2, "caller validates the ranking size");
    debug_assert_eq!(n, rank_of_perturbed.len());
    sequence.clear();
    sequence.extend(original_order.iter().map(|&item| rank_of_perturbed[item]));
    let inversions = count_inversions_into(sequence, merge);
    let total_pairs = (n * (n - 1) / 2) as f64;
    1.0 - 2.0 * inversions as f64 / total_pairs
}

/// Counts inversions of `values` with a bottom-up merge sort; the slice is
/// sorted in place as a side effect.
fn count_inversions(values: &mut [usize]) -> u64 {
    let mut buffer = Vec::new();
    count_inversions_into(values, &mut buffer)
}

/// [`count_inversions`] with a caller-provided merge buffer, so hot loops
/// (one inversion count per Monte-Carlo trial) do not allocate per call.
fn count_inversions_into(values: &mut [usize], buffer: &mut Vec<usize>) -> u64 {
    let n = values.len();
    buffer.clear();
    buffer.resize(n, 0usize);
    let mut inversions = 0u64;
    let mut width = 1usize;
    while width < n {
        let mut start = 0usize;
        while start + width < n {
            let mid = start + width;
            let end = (start + 2 * width).min(n);
            // Merge values[start..mid] and values[mid..end] into the buffer,
            // counting how many right-half elements jump over left-half ones.
            let (mut left, mut right, mut out) = (start, mid, start);
            while left < mid && right < end {
                if values[left] <= values[right] {
                    buffer[out] = values[left];
                    left += 1;
                } else {
                    buffer[out] = values[right];
                    right += 1;
                    inversions += (mid - left) as u64;
                }
                out += 1;
            }
            buffer[out..out + (mid - left)].copy_from_slice(&values[left..mid]);
            out += mid - left;
            buffer[out..out + (end - right)].copy_from_slice(&values[right..end]);
            values[start..end].copy_from_slice(&buffer[start..end]);
            start = end;
        }
        width *= 2;
    }
    inversions
}

/// Spearman's rho between two rankings of the same items.
///
/// # Errors
/// Returns an error when the rankings have different sizes or fewer than two
/// items.
pub fn spearman_rho_rankings(a: &Ranking, b: &Ranking) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    let ra: Vec<f64> = a.rank_vector().iter().map(|&r| r as f64).collect();
    let rb: Vec<f64> = b.rank_vector().iter().map(|&r| r as f64).collect();
    Ok(spearman(&ra, &rb)?)
}

/// Spearman's footrule: `Σ |rank_a(i) − rank_b(i)|` over all items, together
/// with its normalized form in `[0, 1]` (0 = identical, 1 = maximally
/// displaced).
///
/// # Errors
/// Returns an error when the rankings have different sizes.
pub fn footrule_distance(a: &Ranking, b: &Ranking) -> RankingResult<(f64, f64)> {
    validate_same_items(a, b)?;
    let ra = a.rank_vector();
    let rb = b.rank_vector();
    let total: f64 = ra
        .iter()
        .zip(rb.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum();
    let n = ra.len() as f64;
    // Maximum footrule distance: n²/2 for even n, (n²−1)/2 for odd n.
    let max = if ra.len().is_multiple_of(2) {
        n * n / 2.0
    } else {
        (n * n - 1.0) / 2.0
    };
    let normalized = if max == 0.0 { 0.0 } else { total / max };
    Ok((total, normalized))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(order: &[usize]) -> Ranking {
        Ranking::from_order(order).unwrap()
    }

    #[test]
    fn identical_rankings_max_agreement() {
        let a = ranking(&[0, 1, 2, 3]);
        let b = ranking(&[0, 1, 2, 3]);
        assert!((kendall_tau_rankings(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman_rho_rankings(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let (total, norm) = footrule_distance(&a, &b).unwrap();
        assert_eq!(total, 0.0);
        assert_eq!(norm, 0.0);
    }

    #[test]
    fn reversed_rankings_max_disagreement() {
        let a = ranking(&[0, 1, 2, 3]);
        let b = ranking(&[3, 2, 1, 0]);
        assert!((kendall_tau_rankings(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman_rho_rankings(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        let (total, norm) = footrule_distance(&a, &b).unwrap();
        assert_eq!(total, 8.0); // |1-4|+|2-3|+|3-2|+|4-1| = 3+1+1+3
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_is_mild_disagreement() {
        let a = ranking(&[0, 1, 2, 3]);
        let b = ranking(&[0, 1, 3, 2]);
        let tau = kendall_tau_rankings(&a, &b).unwrap();
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
        let (total, _) = footrule_distance(&a, &b).unwrap();
        assert_eq!(total, 2.0);
    }

    #[test]
    fn odd_sized_reversal_normalizes_to_one() {
        let a = ranking(&[0, 1, 2, 3, 4]);
        let b = ranking(&[4, 3, 2, 1, 0]);
        let (_, norm) = footrule_distance(&a, &b).unwrap();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_mismatch_is_error() {
        let a = ranking(&[0, 1, 2]);
        let b = ranking(&[0, 1]);
        assert!(kendall_tau_rankings(&a, &b).is_err());
        assert!(spearman_rho_rankings(&a, &b).is_err());
        assert!(footrule_distance(&a, &b).is_err());
    }

    #[test]
    fn inversion_counting_matches_the_quadratic_definition() {
        // Cross-check the O(n log n) tau against the general-purpose
        // O(n²) implementation in rf-stats on a batch of pseudo-random
        // permutations.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        for n in [2usize, 3, 5, 17, 64, 151] {
            let mut order: Vec<usize> = (0..n).collect();
            // Fisher-Yates with the toy generator above.
            for i in (1..n).rev() {
                order.swap(i, next(i + 1));
            }
            let a = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
            let b = Ranking::from_order(&order).unwrap();
            let fast = kendall_tau_rankings(&a, &b).unwrap();
            let ra: Vec<f64> = a.rank_vector().iter().map(|&r| r as f64).collect();
            let rb: Vec<f64> = b.rank_vector().iter().map(|&r| r as f64).collect();
            let slow = rf_stats::kendall_tau(&ra, &rb).unwrap();
            assert!((fast - slow).abs() < 1e-12, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn count_inversions_handles_edges() {
        assert_eq!(count_inversions(&mut []), 0);
        assert_eq!(count_inversions(&mut [1]), 0);
        assert_eq!(count_inversions(&mut [1, 2, 3]), 0);
        assert_eq!(count_inversions(&mut [3, 2, 1]), 3);
        let mut values = [5, 1, 4, 2, 3];
        assert_eq!(count_inversions(&mut values), 6);
        assert_eq!(values, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_item_rankings_are_rejected() {
        let a = ranking(&[0]);
        let b = ranking(&[0]);
        assert!(kendall_tau_rankings(&a, &b).is_err());
    }

    #[test]
    fn comparisons_are_symmetric() {
        let a = ranking(&[2, 0, 3, 1, 4]);
        let b = ranking(&[0, 1, 2, 4, 3]);
        assert!(
            (kendall_tau_rankings(&a, &b).unwrap() - kendall_tau_rankings(&b, &a).unwrap()).abs()
                < 1e-12
        );
        assert!(
            (spearman_rho_rankings(&a, &b).unwrap() - spearman_rho_rankings(&b, &a).unwrap()).abs()
                < 1e-12
        );
        let (d1, _) = footrule_distance(&a, &b).unwrap();
        let (d2, _) = footrule_distance(&b, &a).unwrap();
        assert_eq!(d1, d2);
    }
}
