//! Rank-aware (top-weighted) similarity between rankings.
//!
//! The Ingredients widget lists "attributes most material to the ranked
//! outcome"; the paper notes that "such associations can be derived with
//! linear models or with other methods, such as rank-aware similarity in our
//! prior work" (§2.1, citing Stoyanovich, Amer-Yahia & Milo, EDBT 2011).
//! Classic rank correlations ([`crate::compare`]) weight every position
//! equally, but a ranking's consumers care far more about who is at the top.
//! This module provides top-weighted alternatives:
//!
//! * [`top_k_overlap`] / [`top_k_jaccard`] — set agreement of the two top-k's.
//! * [`average_overlap`] — mean prefix agreement up to a depth.
//! * [`rank_biased_overlap`] — RBO (Webber et al., TOIS 2010): geometrically
//!   discounted prefix agreement with persistence parameter `p`.
//! * [`ap_correlation`] — τ-AP (Yilmaz et al., SIGIR 2008): an AP-weighted
//!   Kendall correlation that penalizes disagreements near the top more.
//! * [`rank_aware_association`] — the Ingredients-facing helper: how strongly
//!   an attribute's own ordering agrees with the ranked outcome, weighted
//!   toward the top.

use crate::error::{RankingError, RankingResult};
use crate::ranking::Ranking;

fn validate_same_items(a: &Ranking, b: &Ranking) -> RankingResult<()> {
    if a.len() != b.len() {
        return Err(RankingError::IncomparableRankings {
            message: format!("rankings have different sizes ({} vs {})", a.len(), b.len()),
        });
    }
    Ok(())
}

fn validate_k(k: usize, n: usize) -> RankingResult<()> {
    if k == 0 || k > n {
        return Err(RankingError::IncomparableRankings {
            message: format!("prefix size k={k} is invalid for rankings of {n} items"),
        });
    }
    Ok(())
}

/// Number of items the two top-k prefixes share, divided by `k`.
///
/// 1.0 means the two rankings select exactly the same top-k set (possibly in
/// a different order); 0.0 means the sets are disjoint.
///
/// # Errors
/// Returns an error when the rankings differ in size or `k` is zero or larger
/// than the rankings.
pub fn top_k_overlap(a: &Ranking, b: &Ranking, k: usize) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    validate_k(k, a.len())?;
    Ok(prefix_intersection(a, b, k) as f64 / k as f64)
}

/// Jaccard similarity of the two top-k sets: `|A ∩ B| / |A ∪ B|`.
///
/// # Errors
/// Returns an error when the rankings differ in size or `k` is zero or larger
/// than the rankings.
pub fn top_k_jaccard(a: &Ranking, b: &Ranking, k: usize) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    validate_k(k, a.len())?;
    let inter = prefix_intersection(a, b, k);
    let union = 2 * k - inter;
    Ok(inter as f64 / union as f64)
}

/// Average overlap: the mean of `overlap(d) / d` over prefix depths
/// `d = 1..=depth`.  Heavier weight on the very top because shallow prefixes
/// participate in every term.
///
/// # Errors
/// Returns an error when the rankings differ in size or `depth` is zero or
/// larger than the rankings.
pub fn average_overlap(a: &Ranking, b: &Ranking, depth: usize) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    validate_k(depth, a.len())?;
    let agreements = prefix_agreements(a, b, depth);
    Ok(agreements.iter().sum::<f64>() / depth as f64)
}

/// Rank-biased overlap (RBO) of two full rankings of the same items.
///
/// `persistence` (the RBO parameter `p ∈ (0, 1)`) controls how top-weighted
/// the measure is: the expected evaluation depth is `1 / (1 − p)`, so
/// `p = 0.9` concentrates on roughly the top-10.  Because both rankings rank
/// the same item set, the agreement at full depth is exactly 1 and the
/// truncated sum can be closed exactly (no extrapolation uncertainty).
///
/// # Errors
/// Returns an error when the rankings differ in size, are empty, or
/// `persistence` lies outside `(0, 1)`.
pub fn rank_biased_overlap(a: &Ranking, b: &Ranking, persistence: f64) -> RankingResult<f64> {
    validate_same_items(a, b)?;
    if a.is_empty() {
        return Err(RankingError::EmptyRanking);
    }
    if !(persistence > 0.0 && persistence < 1.0) {
        return Err(RankingError::IncomparableRankings {
            message: format!("RBO persistence must lie strictly in (0, 1), got {persistence}"),
        });
    }
    let n = a.len();
    let agreements = prefix_agreements(a, b, n);
    let p = persistence;
    let mut weighted = 0.0;
    let mut weight = 1.0; // p^(d-1)
    for &agreement in &agreements {
        weighted += weight * agreement;
        weight *= p;
    }
    // Geometric tail beyond depth n: both rankings agree completely there.
    // (1-p) * Σ_{d>n} p^{d-1} = p^n.
    Ok((1.0 - p) * weighted + p.powi(n as i32))
}

/// τ-AP: AP-weighted rank correlation of `observed` against the `reference`
/// ranking (Yilmaz, Aslam & Robertson, SIGIR 2008).
///
/// For every item at reference rank `i ≥ 2`, the fraction of items above it
/// in the reference that are also above it in `observed` is averaged and
/// rescaled to `[-1, 1]`.  Unlike Kendall's tau, a disagreement involving the
/// top-ranked items drags the value down much more than one at the bottom.
/// The measure is asymmetric: `reference` plays the role of the ground-truth
/// ordering.
///
/// # Errors
/// Returns an error when the rankings differ in size or have fewer than two
/// items.
pub fn ap_correlation(reference: &Ranking, observed: &Ranking) -> RankingResult<f64> {
    validate_same_items(reference, observed)?;
    let n = reference.len();
    if n < 2 {
        return Err(RankingError::IncomparableRankings {
            message: "AP correlation needs at least two items".to_string(),
        });
    }
    let ref_rank = reference.rank_vector();
    let obs_rank = observed.rank_vector();
    // Items in reference rank order.
    let ref_order = reference.order();
    let mut total = 0.0;
    for i in 1..n {
        let item = ref_order[i];
        let above_in_ref = &ref_order[..i];
        let concordant = above_in_ref
            .iter()
            .filter(|&&other| obs_rank[other] < obs_rank[item])
            .count();
        total += concordant as f64 / i as f64;
        debug_assert!(ref_rank[item] == i + 1);
    }
    Ok(2.0 * total / (n - 1) as f64 - 1.0)
}

/// Rank-aware association between a numeric attribute and a ranking: the
/// average overlap, up to `depth`, between the ranking induced by the
/// attribute (descending) and the observed ranking.
///
/// Values near 1 mean the attribute alone would reproduce the top of the
/// ranking ("material to the ranked outcome"); values near the overlap
/// expected by chance (`≈ depth / n`) mean it would not.
///
/// # Errors
/// Returns an error when `values` does not cover the ranking, contains
/// non-finite numbers, or `depth` is invalid.
pub fn rank_aware_association(
    ranking: &Ranking,
    values: &[f64],
    depth: usize,
) -> RankingResult<f64> {
    if values.len() != ranking.len() {
        return Err(RankingError::IncomparableRankings {
            message: format!(
                "attribute has {} values but the ranking has {} items",
                values.len(),
                ranking.len()
            ),
        });
    }
    let attribute_ranking = Ranking::from_scores(values)?;
    average_overlap(ranking, &attribute_ranking, depth)
}

/// Intersection size of the two top-k prefixes.
fn prefix_intersection(a: &Ranking, b: &Ranking, k: usize) -> usize {
    let b_top: Vec<usize> = b.top_k_indices(k);
    a.top_k(k)
        .iter()
        .filter(|item| b_top.contains(&item.index))
        .count()
}

/// `agreement(d) = overlap(d) / d` for every prefix depth `d = 1..=depth`,
/// computed incrementally in `O(depth²)` worst case but with small constant
/// factors (membership tracked in boolean vectors).
fn prefix_agreements(a: &Ranking, b: &Ranking, depth: usize) -> Vec<f64> {
    let n = a.len();
    let a_order = a.order();
    let b_order = b.order();
    let mut in_a = vec![false; n];
    let mut in_b = vec![false; n];
    let mut overlap = 0usize;
    let mut agreements = Vec::with_capacity(depth);
    for d in 0..depth {
        let a_item = a_order[d];
        let b_item = b_order[d];
        if a_item == b_item {
            overlap += 1;
        } else {
            if in_b[a_item] {
                overlap += 1;
            }
            if in_a[b_item] {
                overlap += 1;
            }
        }
        in_a[a_item] = true;
        in_b[b_item] = true;
        agreements.push(overlap as f64 / (d + 1) as f64);
    }
    agreements
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(order: &[usize]) -> Ranking {
        Ranking::from_order(order).unwrap()
    }

    #[test]
    fn identical_rankings_agree_perfectly() {
        let a = ranking(&[0, 1, 2, 3, 4]);
        let b = ranking(&[0, 1, 2, 3, 4]);
        assert_eq!(top_k_overlap(&a, &b, 3).unwrap(), 1.0);
        assert_eq!(top_k_jaccard(&a, &b, 3).unwrap(), 1.0);
        assert_eq!(average_overlap(&a, &b, 5).unwrap(), 1.0);
        assert!((rank_biased_overlap(&a, &b, 0.9).unwrap() - 1.0).abs() < 1e-12);
        assert!((ap_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_rankings_disagree() {
        let a = ranking(&[0, 1, 2, 3, 4, 5]);
        let b = ranking(&[5, 4, 3, 2, 1, 0]);
        assert_eq!(top_k_overlap(&a, &b, 3).unwrap(), 0.0);
        assert_eq!(top_k_jaccard(&a, &b, 3).unwrap(), 0.0);
        assert!((ap_correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        let rbo = rank_biased_overlap(&a, &b, 0.9).unwrap();
        assert!(rbo > 0.0 && rbo < 1.0);
    }

    #[test]
    fn partial_overlap_counts_shared_items() {
        let a = ranking(&[0, 1, 2, 3, 4]);
        let b = ranking(&[1, 0, 4, 2, 3]);
        // Top-2 sets are identical (order differs).
        assert_eq!(top_k_overlap(&a, &b, 2).unwrap(), 1.0);
        // Top-3: {0,1,2} vs {1,0,4} share two items.
        assert!((top_k_overlap(&a, &b, 3).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((top_k_jaccard(&a, &b, 3).unwrap() - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_overlap_is_top_weighted() {
        // A swap at the very top hurts more than a swap at the bottom.
        let reference = ranking(&[0, 1, 2, 3, 4, 5]);
        let top_swap = ranking(&[1, 0, 2, 3, 4, 5]);
        let bottom_swap = ranking(&[0, 1, 2, 3, 5, 4]);
        let ao_top = average_overlap(&reference, &top_swap, 6).unwrap();
        let ao_bottom = average_overlap(&reference, &bottom_swap, 6).unwrap();
        assert!(ao_top < ao_bottom);
        // Kendall tau, by contrast, treats the two swaps identically — that is
        // exactly why the rank-aware variant exists.
    }

    #[test]
    fn ap_correlation_is_top_weighted() {
        let reference = ranking(&[0, 1, 2, 3, 4, 5]);
        let top_swap = ranking(&[1, 0, 2, 3, 4, 5]);
        let bottom_swap = ranking(&[0, 1, 2, 3, 5, 4]);
        let tau_top = ap_correlation(&reference, &top_swap).unwrap();
        let tau_bottom = ap_correlation(&reference, &bottom_swap).unwrap();
        assert!(tau_top < tau_bottom);
        assert!(tau_top > -1.0 && tau_bottom < 1.0);
    }

    #[test]
    fn rbo_rewards_agreement_at_the_top() {
        let a = ranking(&[0, 1, 2, 3, 4, 5, 6, 7]);
        // Agrees with `a` exactly on the first four positions, scrambled below.
        let top_agree = ranking(&[0, 1, 2, 3, 7, 6, 5, 4]);
        // Disagrees on every position of the top four, identical below.
        let top_disagree = ranking(&[3, 2, 1, 0, 4, 5, 6, 7]);
        let agree = rank_biased_overlap(&a, &top_agree, 0.9).unwrap();
        let disagree = rank_biased_overlap(&a, &top_disagree, 0.9).unwrap();
        assert!(agree > disagree);
    }

    #[test]
    fn rbo_persistence_limits() {
        // Rankings that disagree on the very first item.
        let a = ranking(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let b = ranking(&[7, 1, 2, 3, 4, 5, 6, 0]);
        // A nearly memory-less evaluator only sees the disagreeing top item…
        let shallow = rank_biased_overlap(&a, &b, 0.01).unwrap();
        assert!(shallow < 0.1);
        // …while a nearly exhaustive one sees that the full item sets coincide.
        let deep = rank_biased_overlap(&a, &b, 0.999).unwrap();
        assert!(deep > 0.9);
    }

    #[test]
    fn rbo_rejects_bad_persistence() {
        let a = ranking(&[0, 1, 2]);
        let b = ranking(&[0, 1, 2]);
        assert!(rank_biased_overlap(&a, &b, 0.0).is_err());
        assert!(rank_biased_overlap(&a, &b, 1.0).is_err());
    }

    #[test]
    fn invalid_k_and_size_mismatch_are_errors() {
        let a = ranking(&[0, 1, 2]);
        let b = ranking(&[0, 1, 2]);
        let c = ranking(&[0, 1]);
        assert!(top_k_overlap(&a, &b, 0).is_err());
        assert!(top_k_overlap(&a, &b, 4).is_err());
        assert!(top_k_overlap(&a, &c, 2).is_err());
        assert!(average_overlap(&a, &c, 2).is_err());
        assert!(ap_correlation(&a, &c).is_err());
        assert!(rank_biased_overlap(&a, &c, 0.9).is_err());
    }

    #[test]
    fn ap_correlation_requires_two_items() {
        let a = ranking(&[0]);
        let b = ranking(&[0]);
        assert!(ap_correlation(&a, &b).is_err());
    }

    #[test]
    fn association_tracks_the_driving_attribute() {
        // Scores are exactly the first attribute; the second is unrelated.
        let driving = vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0];
        let unrelated = vec![0.3, 0.1, 0.9, 0.2, 0.8, 0.4, 0.7, 0.0, 0.6, 0.5];
        let ranking = Ranking::from_scores(&driving).unwrap();
        let assoc_driving = rank_aware_association(&ranking, &driving, 5).unwrap();
        let assoc_unrelated = rank_aware_association(&ranking, &unrelated, 5).unwrap();
        assert!((assoc_driving - 1.0).abs() < 1e-12);
        assert!(assoc_unrelated < assoc_driving);
    }

    #[test]
    fn association_validates_lengths() {
        let ranking = Ranking::from_scores(&[3.0, 2.0, 1.0]).unwrap();
        assert!(rank_aware_association(&ranking, &[1.0, 2.0], 2).is_err());
        assert!(rank_aware_association(&ranking, &[1.0, 2.0, f64::NAN], 2).is_err());
    }

    #[test]
    fn overlap_symmetry() {
        let a = ranking(&[4, 2, 0, 1, 3]);
        let b = ranking(&[0, 1, 2, 3, 4]);
        assert_eq!(
            top_k_overlap(&a, &b, 3).unwrap(),
            top_k_overlap(&b, &a, 3).unwrap()
        );
        assert_eq!(
            average_overlap(&a, &b, 4).unwrap(),
            average_overlap(&b, &a, 4).unwrap()
        );
        assert!(
            (rank_biased_overlap(&a, &b, 0.8).unwrap() - rank_biased_overlap(&b, &a, 0.8).unwrap())
                .abs()
                < 1e-12
        );
    }
}
