//! The columnar Monte-Carlo trial kernel.
//!
//! The §2.2 stability estimator re-scores and re-ranks the dataset hundreds
//! of times under small random perturbations.  The materialized path does
//! that literally: every trial builds a perturbed [`Table`]
//! ([`TablePerturber::perturb`](crate::TablePerturber::perturb)), re-fits the
//! scoring function against it, and constructs a fresh
//! [`Ranking`](crate::Ranking) — per-trial allocations linear in the table
//! even though only the scoring columns ever change.
//!
//! [`TrialKernel`] restructures that evaluation plan: fit **once** into flat
//! `f64` column buffers (the non-missing values of each scoring attribute, in
//! row order, plus a row→slot map and a pre-computed noise scale), then per
//! trial perturb and score directly in a reusable [`TrialScratch`] — noise
//! lands in reused buffers, normalization parameters are re-derived from
//! those buffers, scores accumulate into a reused vector, and the ranking is
//! an argsort into a reused index vector.  **Zero tables, zero column clones,
//! zero per-trial allocations** once the scratch has warmed up.
//!
//! ## Byte-identity contract
//!
//! The kernel consumes the trial's RNG in exactly the order the materialized
//! path does (data noise per perturbed column in schema order, then one
//! weight jitter per recipe attribute) and performs every floating-point
//! operation in the same order with the same expressions — including the
//! reference path's quirks (weight jitter resets the missing-value policy to
//! its default; a ranking-size mismatch degrades Kendall tau to `0.0`).  The
//! resulting ranking, and therefore the Monte-Carlo summary built on it, is
//! **byte-identical** to the materialized path for every seed — asserted by
//! the unit tests below and by `rf-stability`'s parity proptests.
//!
//! ## Tile layout
//!
//! Every hot loop is blocked over [`TILE`]-row chunks of the flat column
//! buffers (structure-of-arrays: the scores, the packed values, and the
//! row→slot map advance together, one contiguous tile at a time).  On the
//! exact path the per-element operation order inside a tile is unchanged, so
//! blocking changes no bits — it only hands the compiler fixed-size,
//! branch-predictable inner loops it can unroll and auto-vectorize.  The
//! final argsort leaves float comparisons behind entirely: scores are
//! already verified finite, so each is mapped to a monotone `u64` sort key
//! ([`descending_sort_key`]) and the `(key, row)` pairs are sorted by a
//! stable LSD radix sort over reused scratch buffers (comparison sort below
//! [`RADIX_CUTOFF`] rows).  Ties carry the row index in the key pair and
//! the radix passes are stable, which reproduces the stable comparator
//! sort's order exactly.
//!
//! ## Relaxed float mode (`relaxed_fp`)
//!
//! [`TrialKernel::with_relaxed_fp`] unlocks float-op *reassociation* in the
//! post-noise stages: multi-lane sum reductions for the z-score variance,
//! reciprocal-multiply normalization (`(v - a) * inv` instead of
//! `(v - a) / denom`), and a branch-free masked gather for sparse columns.
//! The RNG stream, the noise values, and the draw order are **unchanged** —
//! only reductions and division strength are reassociated, so per-row scores
//! stay within ~`1e-9` relative error of the exact path (the observed error
//! is `O(n · ε)`, far smaller) and rankings of well-separated data are
//! identical.  The flag defaults to **off**: the exact path remains
//! byte-identical to the materialized reference.

use crate::error::{RankingError, RankingResult};
use crate::perturb::gaussian;
use crate::score::{MissingValuePolicy, ScoringFunction};
use rand::Rng;
use rf_table::{NormalizationMethod, Table, TableError};

/// Sentinel in a kernel column's row map: the row's value is missing.
const MISSING: usize = usize::MAX;

/// Row-tile size of the blocked kernel loops.
///
/// Scoring, stat folds, and sort-key construction walk the flat buffers in
/// chunks of this many rows.  128 `f64`s = 1 KiB per buffer tile: small
/// enough that a score tile, a value tile, and a row-map tile sit in L1
/// together, large enough to amortize loop overhead and give the
/// auto-vectorizer long straight-line runs.
pub const TILE: usize = 128;

/// Maps a finite `f64` score to a `u64` key whose **ascending** integer
/// order is the score's **descending** numeric order.
///
/// `-0.0` is normalized to `+0.0` first so the key order agrees with
/// `partial_cmp` (which treats the two zeros as equal).  The caller
/// guarantees finiteness — the ranking validates every score before
/// sorting — so NaN never reaches the key.  Sorting `(key, row)` pairs with
/// an unstable integer sort then reproduces the stable descending
/// comparator sort exactly: equal scores map to equal keys and the row
/// index breaks the tie in ascending (original) order.
#[inline]
#[must_use]
pub fn descending_sort_key(score: f64) -> u64 {
    let score = if score == 0.0 { 0.0 } else { score };
    let bits = score.to_bits();
    let ascending = if score.is_sign_negative() {
        !bits
    } else {
        bits | (1 << 63)
    };
    !ascending
}

/// One unique scoring column, fitted into flat buffers.
#[derive(Debug, Clone)]
struct KernelColumn {
    /// Non-missing values in row order (the order noise is drawn in).
    packed: Vec<f64>,
    /// `row_map[row]` is the row's index into `packed`, or [`MISSING`].
    row_map: Vec<usize>,
    /// Absolute Gaussian noise scale (`data_noise ×` the column's stddev);
    /// meaningful only when the kernel was fitted with data noise.
    scale: f64,
    /// `true` when the column has no missing values — `row_map` is then the
    /// identity and scoring can stream the packed buffer directly.
    dense: bool,
}

/// Single-pass statistics of one column's perturbed values for one trial,
/// accumulated while the noise is written: the min/max folds of the
/// normalizer fit, the summation of the imputation mean, and the
/// finiteness check of `rf_stats::mean` — each accumulator independent, so
/// fusing the passes is float-identical to running them separately.
#[derive(Debug, Clone, Copy, Default)]
struct ColumnTrialStats {
    min: f64,
    max: f64,
    sum: f64,
    all_finite: bool,
}

/// One recipe attribute: its weight and the kernel column it reads.
#[derive(Debug, Clone)]
struct KernelAttr {
    name: String,
    weight: f64,
    column: usize,
}

/// A Monte-Carlo trial plan fitted once from `(table, scoring, noise)`:
/// everything a trial needs, reduced to flat `f64` buffers.
///
/// Each call to [`TrialKernel::rank_trial`] perturbs, scores, and ranks one
/// trial entirely inside the caller's [`TrialScratch`].  The kernel itself is
/// immutable and `Sync`, so one fitted kernel is shared across concurrently
/// running trial tasks, each with its own RNG stream and scratch.
#[derive(Debug, Clone)]
pub struct TrialKernel {
    rows: usize,
    normalization: NormalizationMethod,
    missing_policy: MissingValuePolicy,
    /// Whether trials draw data noise (fitted with `data_noise > 0`).
    data_noise: bool,
    weight_noise: f64,
    /// Unique scoring columns in **schema order** — the draw order of the
    /// materialized perturber.
    columns: Vec<KernelColumn>,
    /// Recipe attributes in declaration order — the scoring order.
    attrs: Vec<KernelAttr>,
    /// The `(row, attribute index)` of the first missing scoring cell in the
    /// reference's row-major, attribute-inner scan order, if any.
    /// Missingness is static, so the cell the error policy trips on is
    /// known at fit time.
    first_missing: Option<(usize, usize)>,
    /// Normalization parameters per attribute, pre-computed when the data is
    /// never perturbed (they are then identical for every trial).
    static_params: Option<Vec<(f64, f64)>>,
    /// Mean-imputation fallbacks per attribute, pre-computed likewise.
    static_means: Option<Vec<f64>>,
    /// Whether the post-noise stages may reassociate float operations (lane
    /// sums, reciprocal multiplies, masked gathers).  Default `false`:
    /// byte-identical to the materialized path.
    relaxed_fp: bool,
}

/// Reusable per-trial working memory: perturbed column buffers, jittered
/// weights, normalization parameters, scores, and the argsorted index
/// vectors.  Create once ([`TrialKernel::scratch`]) and reuse across trials —
/// after the first trial, [`TrialKernel::rank_trial`] allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct TrialScratch {
    /// Perturbed packed values, one buffer per kernel column.
    perturbed: Vec<Vec<f64>>,
    /// Single-pass per-column statistics of this trial's perturbed values.
    col_stats: Vec<ColumnTrialStats>,
    /// Effective (jittered) weights, recipe order.
    weights: Vec<f64>,
    /// Per-attribute normalization parameters for this trial.
    params: Vec<(f64, f64)>,
    /// Per-attribute mean-imputation fallbacks for this trial.
    means: Vec<f64>,
    /// Per-row scores.
    scores: Vec<f64>,
    /// Argsort scratch: `(descending sort key, row)` pairs.
    keys: Vec<(u64, u32)>,
    /// Ping-pong buffer for the radix argsort passes.  (Keeping key and row
    /// together in one pair array measured faster than split
    /// structure-of-arrays buffers: one scatter stream per pass, not two.)
    keys_tmp: Vec<(u64, u32)>,
    /// Row indices in rank order (best first) — the trial's ranking.
    order: Vec<usize>,
    /// 1-based rank per row index (the perturbed rank vector).
    rank_of: Vec<usize>,
    /// Kendall-tau scratch: the induced rank sequence.
    sequence: Vec<usize>,
    /// Kendall-tau scratch: the merge-sort buffer.
    merge: Vec<usize>,
}

impl TrialScratch {
    /// The trial's ranking as row indices, best first — valid after a
    /// successful [`TrialKernel::rank_trial`].
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The trial's per-row scores — valid after a successful
    /// [`TrialKernel::rank_trial`].  Byte-identical to the materialized
    /// path's scores with `relaxed_fp` off; within the documented epsilon
    /// with it on.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The trial's 1-based rank per original row index (the
    /// [`Ranking::rank_vector`](crate::Ranking::rank_vector) counterpart).
    #[must_use]
    pub fn rank_of(&self) -> &[usize] {
        &self.rank_of
    }

    /// Kendall's tau of this trial's ranking against `original_order` (the
    /// original ranking's [`Ranking::order`](crate::Ranking::order)), using
    /// the scratch's internal buffers.  Byte-identical to
    /// [`kendall_tau_rankings`](crate::kendall_tau_rankings); the caller
    /// guarantees both rankings cover the same `n >= 2` items.
    #[must_use]
    pub fn kendall_tau_against(&mut self, original_order: &[usize]) -> f64 {
        crate::compare::kendall_tau_with_scratch(
            original_order,
            &self.rank_of,
            &mut self.sequence,
            &mut self.merge,
        )
    }
}

impl TrialKernel {
    /// Fits the kernel: resolves every scoring attribute into flat buffers,
    /// pre-computes each perturbed column's noise scale (`data_noise ×` its
    /// standard deviation), and — when the data is never perturbed —
    /// pre-computes the trial-invariant normalization parameters and
    /// mean-imputation fallbacks.
    ///
    /// Surfaces exactly the errors the materialized path would: unknown or
    /// non-numeric scoring attributes (recipe order), statistics failures
    /// while fitting noise scales (schema order), and — for noise-free data,
    /// where they are trial-invariant — normalization failures such as a
    /// constant column under min-max.
    ///
    /// # Errors
    /// As described above.
    pub fn fit(
        table: &Table,
        scoring: &ScoringFunction,
        data_noise: f64,
        weight_noise: f64,
    ) -> RankingResult<Self> {
        let attr_names: Vec<&str> = scoring.attribute_names();
        // The materialized path validates the recipe attributes first
        // (perturber fit with data noise, `validate_against` without).
        for &name in &attr_names {
            table.require_numeric(name)?;
        }
        let has_data_noise = data_noise > 0.0;

        // Unique scoring columns in schema order — the perturber's draw
        // order.
        let mut columns: Vec<KernelColumn> = Vec::new();
        let mut column_names: Vec<&str> = Vec::new();
        for field in table.schema().fields() {
            let name = field.name.as_str();
            if !attr_names.contains(&name) {
                continue;
            }
            let options = table.numeric_column_options(name)?;
            let mut packed = Vec::with_capacity(options.len());
            let mut row_map = Vec::with_capacity(options.len());
            for opt in &options {
                match opt {
                    Some(v) => {
                        row_map.push(packed.len());
                        packed.push(*v);
                    }
                    None => row_map.push(MISSING),
                }
            }
            let scale = if has_data_noise {
                // Same computation (and error path) as the perturber's fit:
                // stddev of the non-missing values when there are at least
                // two, zero otherwise.
                let sd = if packed.len() >= 2 {
                    rf_stats::stddev(&packed)?
                } else {
                    0.0
                };
                sd * data_noise
            } else {
                0.0
            };
            let dense = packed.len() == row_map.len();
            column_names.push(name);
            columns.push(KernelColumn {
                packed,
                row_map,
                scale,
                dense,
            });
        }

        let attrs: Vec<KernelAttr> = scoring
            .weights()
            .iter()
            .map(|w| KernelAttr {
                name: w.attribute.clone(),
                weight: w.weight,
                column: column_names
                    .iter()
                    .position(|&n| n == w.attribute)
                    .expect("require_numeric guarantees every attribute resolves"),
            })
            .collect();

        // The cell the error policy would trip on, in the reference's
        // row-major, attribute-inner order: the smallest missing row over
        // the recipe's sparse columns, ties broken by attribute position
        // (an attribute missing at that row has it as its first missing
        // row, so first-missing-row candidates decide both components).
        let first_missing = attrs
            .iter()
            .enumerate()
            .filter(|(_, attr)| !columns[attr.column].dense)
            .map(|(index, attr)| {
                let row = columns[attr.column]
                    .row_map
                    .iter()
                    .position(|&slot| slot == MISSING)
                    .expect("sparse column has a missing row");
                (row, index)
            })
            .min();

        let mut kernel = TrialKernel {
            rows: table.num_rows(),
            normalization: scoring.normalization(),
            missing_policy: scoring.missing_policy(),
            data_noise: has_data_noise,
            weight_noise,
            columns,
            attrs,
            first_missing,
            static_params: None,
            static_means: None,
            relaxed_fp: false,
        };
        if !has_data_noise {
            // Without data noise every trial re-derives identical parameters
            // from identical values; hoist them out of the trial loop.  Any
            // error here is exactly the error every trial would report.
            let mut params = Vec::with_capacity(kernel.attrs.len());
            let mut means = Vec::with_capacity(kernel.attrs.len());
            for index in 0..kernel.attrs.len() {
                params.push(kernel.fit_attr_params(index, None)?);
            }
            for index in 0..kernel.attrs.len() {
                means.push(kernel.fit_attr_mean(index, None)?);
            }
            kernel.static_params = Some(params);
            kernel.static_means = Some(means);
        }
        Ok(kernel)
    }

    /// Number of rows of the fitted table (the length of every trial
    /// ranking).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Enables (or disables) relaxed float mode — see the module docs for
    /// the contract.  Off by default; off means byte-identical to the
    /// materialized path.
    #[must_use]
    pub fn with_relaxed_fp(mut self, relaxed: bool) -> Self {
        self.relaxed_fp = relaxed;
        self
    }

    /// Whether relaxed float mode is enabled.
    #[must_use]
    pub fn relaxed_fp(&self) -> bool {
        self.relaxed_fp
    }

    /// Fresh working memory for this kernel, sized lazily by the first trial.
    #[must_use]
    pub fn scratch(&self) -> TrialScratch {
        let mut scratch = TrialScratch::default();
        scratch.perturbed.resize(self.columns.len(), Vec::new());
        scratch
            .col_stats
            .resize(self.columns.len(), ColumnTrialStats::default());
        scratch
    }

    /// The packed values attribute `index` reads this trial: the perturbed
    /// buffer when one is in play, the fitted base values otherwise.
    fn attr_values<'a>(&'a self, index: usize, perturbed: Option<&'a [Vec<f64>]>) -> &'a [f64] {
        let column = self.attrs[index].column;
        match perturbed {
            Some(buffers) => &buffers[column],
            None => &self.columns[column].packed,
        }
    }

    /// Normalization parameters of attribute `index` for this trial,
    /// replicating `Normalizer::fit` on the (perturbed) column: `(lo, hi)`
    /// for min-max, `(mean, sd)` for z-score, `(0, 1)` for raw.
    fn fit_attr_params(
        &self,
        index: usize,
        perturbed: Option<&[Vec<f64>]>,
    ) -> RankingResult<(f64, f64)> {
        let name = &self.attrs[index].name;
        let values = self.attr_values(index, perturbed);
        if values.is_empty() {
            return Err(RankingError::Table(TableError::Normalization {
                column: name.clone(),
                message: "column has no non-missing values".to_string(),
            }));
        }
        Ok(match self.normalization {
            NormalizationMethod::None => (0.0, 1.0),
            NormalizationMethod::MinMax => {
                let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if (hi - lo).abs() < f64::EPSILON {
                    return Err(RankingError::Table(TableError::Normalization {
                        column: name.clone(),
                        message: "column is constant; min-max scaling is undefined".to_string(),
                    }));
                }
                (lo, hi)
            }
            NormalizationMethod::ZScore => {
                let mean = rf_stats::mean(values).map_err(TableError::from)?;
                let sd = if values.len() >= 2 {
                    rf_stats::stddev(values).map_err(TableError::from)?
                } else {
                    0.0
                };
                if sd < f64::EPSILON {
                    return Err(RankingError::Table(TableError::Normalization {
                        column: name.clone(),
                        message: "column has zero variance; z-score is undefined".to_string(),
                    }));
                }
                (mean, sd)
            }
        })
    }

    /// Mean-imputation fallback of attribute `index` for this trial,
    /// replicating the scoring fit's prepared-attribute means.
    fn fit_attr_mean(&self, index: usize, perturbed: Option<&[Vec<f64>]>) -> RankingResult<f64> {
        let values = self.attr_values(index, perturbed);
        if values.is_empty() {
            Ok(0.0)
        } else {
            Ok(rf_stats::mean(values)?)
        }
    }

    /// One normalized value under this trial's parameters — the arithmetic of
    /// `Normalizer::transform_value`, verbatim.
    fn transform(&self, value: f64, params: (f64, f64)) -> f64 {
        match self.normalization {
            NormalizationMethod::None => value,
            NormalizationMethod::MinMax => (value - params.0) / (params.1 - params.0),
            NormalizationMethod::ZScore => (value - params.0) / params.1,
        }
    }

    /// Runs one trial in `scratch`: draw the data noise, jitter the weights,
    /// re-fit the normalization, score every row, and argsort the ranking —
    /// all without allocating once the scratch is warm.  On success
    /// [`TrialScratch::order`] and [`TrialScratch::rank_of`] hold the trial's
    /// ranking.
    ///
    /// Consumes `rng` exactly like the materialized trial (perturbed columns
    /// in schema order, one Gaussian per non-missing value; then one uniform
    /// jitter per recipe weight), so a fitted kernel fed the same per-trial
    /// stream reproduces the materialized ranking byte for byte.
    ///
    /// # Errors
    /// The errors of the materialized path, in the same order: invalid
    /// jittered weights, per-trial normalization failures, missing values
    /// under the error policy, and non-finite scores.
    pub fn rank_trial<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut TrialScratch,
    ) -> RankingResult<()> {
        // 1. Data noise, per perturbed column in schema order, one Gaussian
        //    per non-missing value in row order — the perturber's draw order.
        //    The statistics the later stages need (the normalizer's min/max
        //    folds, the imputation mean's summation and finiteness check)
        //    accumulate in the same pass; each accumulator performs exactly
        //    the operation sequence its standalone fold would, so fusing
        //    the passes changes no bits.
        let perturbed = if self.data_noise {
            for ((column, buffer), stats) in self
                .columns
                .iter()
                .zip(scratch.perturbed.iter_mut())
                .zip(scratch.col_stats.iter_mut())
            {
                buffer.clear();
                buffer.reserve(column.packed.len());
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                let mut all_finite = true;
                // Tiled for locality; the Gaussian draws are inherently
                // serial (one RNG stream) and the per-element accumulator
                // order inside a tile is the reference order, so blocking
                // changes no bits on either path.
                for tile in column.packed.chunks(TILE) {
                    for &base in tile {
                        let value = base + gaussian(rng) * column.scale;
                        min = min.min(value);
                        max = max.max(value);
                        sum += value;
                        all_finite &= value.is_finite();
                        buffer.push(value);
                    }
                }
                *stats = ColumnTrialStats {
                    min,
                    max,
                    sum,
                    all_finite,
                };
            }
            true
        } else {
            false
        };

        // 2. Weight jitter, one uniform draw per recipe weight.  The
        //    reference (`perturb_weights` + `ScoringFunction` revalidation)
        //    draws every jitter before validating, falls back to the
        //    original weights when the jittered set is all zero, and — by
        //    rebuilding the scoring function — resets the missing-value
        //    policy to its default.
        scratch.weights.clear();
        let mut missing_policy = self.missing_policy;
        if self.weight_noise > 0.0 {
            for attr in &self.attrs {
                let jitter = 1.0 + rng.gen_range(-self.weight_noise..=self.weight_noise);
                scratch.weights.push(attr.weight * jitter);
            }
            if scratch.weights.iter().all(|&w| w == 0.0) {
                scratch.weights.clear();
                scratch.weights.extend(self.attrs.iter().map(|a| a.weight));
            } else {
                for (attr, &weight) in self.attrs.iter().zip(scratch.weights.iter()) {
                    if !weight.is_finite() {
                        return Err(RankingError::InvalidWeight {
                            attribute: attr.name.clone(),
                            message: format!("weight must be finite, got {weight}"),
                        });
                    }
                }
                missing_policy = MissingValuePolicy::default();
            }
        } else {
            scratch.weights.extend(self.attrs.iter().map(|a| a.weight));
        }

        // 3. Per-trial normalization parameters and imputation means —
        //    re-derived from this trial's fused column statistics, or copied
        //    from the trial-invariant fit.  Parameters for every attribute
        //    are fitted before any mean, matching the reference's error
        //    order.
        scratch.params.clear();
        scratch.means.clear();
        match (&self.static_params, &self.static_means) {
            (Some(params), Some(means)) => {
                scratch.params.extend_from_slice(params);
                scratch.means.extend_from_slice(means);
            }
            _ => {
                for attr in &self.attrs {
                    let column = &self.columns[attr.column];
                    let stats = scratch.col_stats[attr.column];
                    let len = column.packed.len();
                    if len == 0 {
                        return Err(RankingError::Table(TableError::Normalization {
                            column: attr.name.clone(),
                            message: "column has no non-missing values".to_string(),
                        }));
                    }
                    let params = match self.normalization {
                        NormalizationMethod::None => (0.0, 1.0),
                        NormalizationMethod::MinMax => {
                            if (stats.max - stats.min).abs() < f64::EPSILON {
                                return Err(RankingError::Table(TableError::Normalization {
                                    column: attr.name.clone(),
                                    message: "column is constant; min-max scaling is undefined"
                                        .to_string(),
                                }));
                            }
                            (stats.min, stats.max)
                        }
                        NormalizationMethod::ZScore => {
                            // `Normalizer::fit` computes these through
                            // `rf_stats::{mean, stddev}`; the fused sum and
                            // the explicit corrected variance below perform
                            // the identical operation sequences (and the
                            // identical first error — non-finite values trip
                            // the mean's finiteness gate).
                            if !stats.all_finite {
                                return Err(RankingError::Table(TableError::from(
                                    rf_stats::StatsError::NonFiniteInput { operation: "mean" },
                                )));
                            }
                            let mean = stats.sum / len as f64;
                            let sd = if len >= 2 {
                                let values: &[f64] = &scratch.perturbed[attr.column];
                                let ss: f64 = if self.relaxed_fp {
                                    // Relaxed: reassociate the squared-error
                                    // reduction across four lanes so the
                                    // compiler can keep independent vector
                                    // accumulators in flight.
                                    lane_sum_squared_errors(values, mean)
                                } else {
                                    values.iter().map(|v| (v - mean) * (v - mean)).sum()
                                };
                                (ss / (len - 1) as f64).sqrt()
                            } else {
                                0.0
                            };
                            if sd < f64::EPSILON {
                                return Err(RankingError::Table(TableError::Normalization {
                                    column: attr.name.clone(),
                                    message: "column has zero variance; z-score is undefined"
                                        .to_string(),
                                }));
                            }
                            (mean, sd)
                        }
                    };
                    scratch.params.push(params);
                }
                for attr in &self.attrs {
                    let column = &self.columns[attr.column];
                    let stats = scratch.col_stats[attr.column];
                    let mean = if column.packed.is_empty() {
                        0.0
                    } else if !stats.all_finite {
                        // `rf_stats::mean`'s finiteness gate, surfaced with
                        // the error the scoring fit's attribute prep reports.
                        return Err(RankingError::Stats(rf_stats::StatsError::NonFiniteInput {
                            operation: "mean",
                        }));
                    } else {
                        stats.sum / column.packed.len() as f64
                    };
                    scratch.means.push(mean);
                }
            }
        }

        // 4. Score every row, one TILE of rows at a time.  The reference
        //    accumulates row-major with the attributes innermost; iterating
        //    column-major instead adds each attribute's term to every row's
        //    accumulator in the same per-element order, so the sums are
        //    bit-identical — and a dense column streams its packed buffer
        //    with no row map or missing branch in the loop.  Blocking the
        //    streams into fixed-size tiles keeps a score tile and a value
        //    tile resident together and gives the auto-vectorizer
        //    straight-line inner loops; on the exact path the per-element
        //    order inside a tile is unchanged, so tiling changes no bits.
        if missing_policy == MissingValuePolicy::Error {
            if let Some((row, index)) = self.first_missing {
                // The reference trips on this cell mid-scan; missingness is
                // static, so the scan is not needed to name it.
                return Err(RankingError::MissingValue {
                    attribute: self.attrs[index].name.clone(),
                    row,
                });
            }
        }
        scratch.scores.clear();
        scratch.scores.resize(self.rows, 0.0);
        for (index, attr) in self.attrs.iter().enumerate() {
            let weight = scratch.weights[index];
            let (a, b) = scratch.params[index];
            let column = &self.columns[attr.column];
            let values: &[f64] = if perturbed {
                &scratch.perturbed[attr.column]
            } else {
                &column.packed
            };
            if column.dense {
                if self.relaxed_fp {
                    // Relaxed: normalization by reciprocal multiply.  The
                    // per-attribute `(shift, inv)` pair folds all three
                    // normalization methods into one fused inner loop.
                    let (shift, inv) = self.relaxed_transform_params((a, b));
                    for (score_tile, value_tile) in
                        scratch.scores.chunks_mut(TILE).zip(values.chunks(TILE))
                    {
                        for (score, &value) in score_tile.iter_mut().zip(value_tile) {
                            *score += weight * ((value - shift) * inv);
                        }
                    }
                } else {
                    match self.normalization {
                        NormalizationMethod::None => {
                            for (score_tile, value_tile) in
                                scratch.scores.chunks_mut(TILE).zip(values.chunks(TILE))
                            {
                                for (score, &value) in score_tile.iter_mut().zip(value_tile) {
                                    *score += weight * value;
                                }
                            }
                        }
                        NormalizationMethod::MinMax => {
                            // `(value - a) / denom` with `denom = b - a`
                            // hoisted is the exact expression of
                            // `transform_value`.
                            let denom = b - a;
                            for (score_tile, value_tile) in
                                scratch.scores.chunks_mut(TILE).zip(values.chunks(TILE))
                            {
                                for (score, &value) in score_tile.iter_mut().zip(value_tile) {
                                    *score += weight * ((value - a) / denom);
                                }
                            }
                        }
                        NormalizationMethod::ZScore => {
                            for (score_tile, value_tile) in
                                scratch.scores.chunks_mut(TILE).zip(values.chunks(TILE))
                            {
                                for (score, &value) in score_tile.iter_mut().zip(value_tile) {
                                    *score += weight * ((value - a) / b);
                                }
                            }
                        }
                    }
                }
            } else {
                // Policy is MeanImpute or Zero here: Error short-circuited
                // above for any sparse scoring column.
                let imputed = match missing_policy {
                    MissingValuePolicy::MeanImpute => self.transform(scratch.means[index], (a, b)),
                    _ => 0.0,
                };
                if self.relaxed_fp {
                    // Relaxed: branch-free masked gather.  Every lane loads
                    // a clamped slot unconditionally, transforms it, and
                    // selects between the transformed value and the imputed
                    // fallback — no data-dependent branch in the loop, so
                    // the tile vectorizes even on sparse columns.  Step 3
                    // guarantees `values` is non-empty (an all-missing
                    // column errors before scoring).
                    let (shift, inv) = self.relaxed_transform_params((a, b));
                    for (score_tile, slot_tile) in scratch
                        .scores
                        .chunks_mut(TILE)
                        .zip(column.row_map.chunks(TILE))
                    {
                        for (score, &slot) in score_tile.iter_mut().zip(slot_tile) {
                            let present = slot != MISSING;
                            let raw = values[if present { slot } else { 0 }];
                            let value = if present {
                                (raw - shift) * inv
                            } else {
                                imputed
                            };
                            *score += weight * value;
                        }
                    }
                } else {
                    for (score_tile, slot_tile) in scratch
                        .scores
                        .chunks_mut(TILE)
                        .zip(column.row_map.chunks(TILE))
                    {
                        for (score, &slot) in score_tile.iter_mut().zip(slot_tile) {
                            let value = if slot != MISSING {
                                self.transform(values[slot], (a, b))
                            } else {
                                imputed
                            };
                            *score += weight * value;
                        }
                    }
                }
            }
        }

        // 5. The ranking: the validation and argsort of
        //    `Ranking::from_scores`, into reused index vectors.  The scores
        //    are verified finite first, so the argsort can leave float
        //    comparisons behind: each score maps to a monotone integer key
        //    ([`descending_sort_key`]) carrying the row index as tie-break,
        //    and the pairs sort with the stable radix argsort
        //    ([`radix_argsort_into`]) — no comparator calls, no per-trial
        //    allocation, same order bit for bit.
        if scratch.scores.is_empty() {
            return Err(RankingError::EmptyRanking);
        }
        if scratch.scores.iter().any(|s| !s.is_finite()) {
            return Err(RankingError::Stats(rf_stats::StatsError::NonFiniteInput {
                operation: "Ranking::from_scores",
            }));
        }
        if u32::try_from(self.rows).is_err() {
            // Rows beyond u32: fall back to the comparator argsort (the
            // key pair cannot carry the index).  Unreachable on any real
            // table, kept for completeness.
            scratch.order.clear();
            scratch.order.extend(0..self.rows);
            let scores = &scratch.scores;
            scratch.order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        } else if self.rows < RADIX_CUTOFF {
            scratch.keys.clear();
            scratch.keys.reserve(self.rows);
            for (base, tile) in scratch.scores.chunks(TILE).enumerate() {
                let offset = base * TILE;
                scratch.keys.extend(
                    tile.iter()
                        .enumerate()
                        .map(|(row, &score)| (descending_sort_key(score), (offset + row) as u32)),
                );
            }
            scratch.keys.sort_unstable();
            scratch.order.clear();
            scratch
                .order
                .extend(scratch.keys.iter().map(|&(_, row)| row as usize));
        } else {
            // The byte histograms of every radix pass are accumulated while
            // the keys are built — one read of the scores, no second pass
            // over the pairs.
            scratch.keys.clear();
            scratch.keys.reserve(self.rows);
            let mut histograms = [[0u32; 256]; 8];
            for (base, tile) in scratch.scores.chunks(TILE).enumerate() {
                let offset = base * TILE;
                for (row, &score) in tile.iter().enumerate() {
                    let key = descending_sort_key(score);
                    for (pass, histogram) in histograms.iter_mut().enumerate() {
                        histogram[((key >> (pass * 8)) & 0xFF) as usize] += 1;
                    }
                    scratch.keys.push((key, (offset + row) as u32));
                }
            }
            radix_argsort_into(
                &mut scratch.keys,
                &mut scratch.keys_tmp,
                &histograms,
                &mut scratch.order,
            );
        }
        // `order` is a permutation of the rows, so the scatter below writes
        // every slot: resize without clearing — after the first trial the
        // length already matches and the fill costs nothing.
        scratch.rank_of.resize(self.rows, 0);
        for (position, &index) in scratch.order.iter().enumerate() {
            scratch.rank_of[index] = position + 1;
        }
        Ok(())
    }

    /// The `(shift, inv)` pair of the relaxed fused transform
    /// `(value - shift) * inv` for this trial's parameters: identity for
    /// raw scores, reciprocal range for min-max, reciprocal deviation for
    /// z-score.
    fn relaxed_transform_params(&self, params: (f64, f64)) -> (f64, f64) {
        match self.normalization {
            NormalizationMethod::None => (0.0, 1.0),
            NormalizationMethod::MinMax => (params.0, 1.0 / (params.1 - params.0)),
            NormalizationMethod::ZScore => (params.0, 1.0 / params.1),
        }
    }
}

/// Below this length the comparison sort's constant factor wins; above it
/// the linear-time radix passes do.  Crossover measured on the bench host
/// (the exact value is uncritical: both sides produce the same order).
const RADIX_CUTOFF: usize = 4 * TILE;

/// Argsorts `(key, row)` pairs into ascending key order with a stable
/// least-significant-byte-first radix sort (256-bucket counting passes,
/// ping-ponging between `pairs` and `tmp`), leaving the row indices in
/// `order`.
///
/// Order contract: `order` is byte-identical to
/// `pairs.sort_unstable(); order = rows of pairs`.  The LSD passes are
/// stable, and the input is built in ascending row order, so equal keys
/// keep ascending row order — exactly the order the pair comparison
/// produces.  `histograms[pass][byte]` must count the keys whose byte at
/// `8·pass` is `byte` (the caller folds that count into key construction);
/// a pass whose byte is constant across every key is the identity and is
/// skipped — scores from one trial share sign and magnitude range, so the
/// high exponent bytes usually cost nothing.  The final pass scatters row
/// indices straight into `order` instead of moving pairs, saving the
/// separate extraction walk; when every pass is skippable the keys are all
/// equal and `order` is the identity.
fn radix_argsort_into(
    pairs: &mut [(u64, u32)],
    tmp: &mut Vec<(u64, u32)>,
    histograms: &[[u32; 256]; 8],
    order: &mut Vec<usize>,
) {
    let n = pairs.len();
    let mut active = [false; 8];
    for (pass, histogram) in histograms.iter().enumerate() {
        active[pass] = !histogram.iter().any(|&count| count as usize == n);
    }
    let Some(last) = (0..8).rev().find(|&pass| active[pass]) else {
        order.clear();
        order.extend(0..n);
        return;
    };
    // Every buffer below is fully written before it is read (each scatter
    // writes a permutation), so resize without clearing — a warm scratch
    // pays nothing for the fill.
    tmp.resize(n, (0, 0));
    order.resize(n, 0);
    let mut in_pairs = true;
    for pass in 0..8 {
        if !active[pass] {
            continue;
        }
        let mut offsets = exclusive_prefix_sum(&histograms[pass]);
        let shift = pass * 8;
        if pass == last {
            let src: &[(u64, u32)] = if in_pairs { pairs } else { tmp };
            for &(key, row) in src {
                let bucket = ((key >> shift) & 0xFF) as usize;
                order[offsets[bucket] as usize] = row as usize;
                offsets[bucket] += 1;
            }
        } else if in_pairs {
            scatter_by_byte(pairs, tmp, shift, &mut offsets);
            in_pairs = false;
        } else {
            scatter_by_byte(tmp, pairs, shift, &mut offsets);
            in_pairs = true;
        }
    }
}

/// The starting write offset of each radix bucket: the exclusive prefix
/// sum of the bucket counts.
fn exclusive_prefix_sum(histogram: &[u32; 256]) -> [u32; 256] {
    let mut offsets = [0u32; 256];
    let mut total = 0u32;
    for (offset, &count) in offsets.iter_mut().zip(histogram.iter()) {
        *offset = total;
        total += count;
    }
    offsets
}

/// One radix pass: distributes `src` into `dst` by the byte at `shift`,
/// advancing each bucket's write offset.  Stable (source order preserved
/// within a bucket).
fn scatter_by_byte(
    src: &[(u64, u32)],
    dst: &mut [(u64, u32)],
    shift: usize,
    offsets: &mut [u32; 256],
) {
    for &pair in src {
        let bucket = ((pair.0 >> shift) & 0xFF) as usize;
        dst[offsets[bucket] as usize] = pair;
        offsets[bucket] += 1;
    }
}

/// Relaxed squared-error reduction: four independent accumulator lanes over
/// [`TILE`]-aligned chunks, folded at the end.  Reassociates the sum (hence
/// relaxed-only) so the compiler can keep vector accumulators in flight.
fn lane_sum_squared_errors(values: &[f64], mean: f64) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for chunk in &mut chunks {
        for (lane, &value) in lanes.iter_mut().zip(chunk) {
            let d = value - mean;
            *lane += d * d;
        }
    }
    let mut ss = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &value in chunks.remainder() {
        let d = value - mean;
        ss += d * d;
    }
    ss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{perturb_weights, TablePerturber};
    use crate::ranking::Ranking;
    use crate::score::ScoringFunction;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rf_table::Column;

    #[test]
    fn radix_argsort_matches_the_comparison_sort() {
        // A deterministic pseudo-random key stream with deliberate
        // structure: duplicated keys (tie-break must hold), constant high
        // bytes (pass-skipping must stay stable), and sizes straddling the
        // comparison-sort cutoff on both sides.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [
            0,
            1,
            2,
            RADIX_CUTOFF - 1,
            RADIX_CUTOFF,
            RADIX_CUTOFF + 3,
            3000,
        ] {
            let pairs: Vec<(u64, u32)> = (0..n)
                .map(|row| {
                    // Constant top three bytes, frequent duplicates below.
                    let key = next() % 4096;
                    (key, row as u32)
                })
                .collect();
            assert_eq!(
                radix_order_of(&pairs),
                comparison_order_of(&pairs),
                "n = {n}"
            );
        }
        // Full-width keys: every radix pass does real work.
        let pairs: Vec<(u64, u32)> = (0..2048).map(|row| (next(), row as u32)).collect();
        assert_eq!(radix_order_of(&pairs), comparison_order_of(&pairs));
        // All keys equal: every pass is skipped and the order is the
        // identity (the stable sort of an already-sorted input).
        let pairs: Vec<(u64, u32)> = (0..1000).map(|row| (42, row as u32)).collect();
        assert_eq!(radix_order_of(&pairs), comparison_order_of(&pairs));
        assert_eq!(radix_order_of(&pairs), (0..1000).collect::<Vec<usize>>());
    }

    /// Runs the radix argsort the way `rank_trial` does — histograms
    /// accumulated alongside the keys — and returns the row order.
    fn radix_order_of(pairs: &[(u64, u32)]) -> Vec<usize> {
        let mut pairs = pairs.to_vec();
        let mut histograms = [[0u32; 256]; 8];
        for &(key, _) in &pairs {
            for (pass, histogram) in histograms.iter_mut().enumerate() {
                histogram[((key >> (pass * 8)) & 0xFF) as usize] += 1;
            }
        }
        let mut tmp = Vec::new();
        // A dirty, wrong-length `order` must not matter: the final scatter
        // writes every slot.
        let mut order = vec![usize::MAX; pairs.len() / 2];
        radix_argsort_into(&mut pairs, &mut tmp, &histograms, &mut order);
        order
    }

    /// The reference order: the unstable pair sort the radix path replaced.
    fn comparison_order_of(pairs: &[(u64, u32)]) -> Vec<usize> {
        let mut sorted = pairs.to_vec();
        sorted.sort_unstable();
        sorted.iter().map(|&(_, row)| row as usize).collect()
    }

    /// The materialized reference trial: perturb into a fresh table, re-fit,
    /// re-rank — the exact code path the kernel replaces.
    fn materialized_trial(
        table: &Table,
        scoring: &ScoringFunction,
        data_noise: f64,
        weight_noise: f64,
        seed: u64,
    ) -> RankingResult<Ranking> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let perturbed = if data_noise > 0.0 {
            let attrs: Vec<&str> = scoring.attribute_names();
            Some(TablePerturber::fit(table, &attrs, data_noise)?.perturb(&mut rng)?)
        } else {
            None
        };
        let scoring = if weight_noise > 0.0 {
            perturb_weights(scoring, weight_noise, &mut rng)?
        } else {
            scoring.clone()
        };
        scoring.rank_table(perturbed.as_ref().unwrap_or(table))
    }

    fn kernel_trial(
        table: &Table,
        scoring: &ScoringFunction,
        data_noise: f64,
        weight_noise: f64,
        seed: u64,
    ) -> RankingResult<Vec<usize>> {
        let kernel = TrialKernel::fit(table, scoring, data_noise, weight_noise)?;
        let mut scratch = kernel.scratch();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        kernel.rank_trial(&mut rng, &mut scratch)?;
        Ok(scratch.order().to_vec())
    }

    fn spread_table() -> Table {
        Table::from_columns(vec![
            (
                "name",
                Column::from_strings((0..40).map(|i| format!("r{i}")).collect::<Vec<_>>()),
            ),
            (
                "x",
                Column::from_f64((0..40).map(|i| (i as f64 * 1.7).sin() * 30.0).collect()),
            ),
            (
                "y",
                Column::from_f64((0..40).map(|i| 100.0 - 2.0 * i as f64).collect()),
            ),
            ("z", Column::from_i64((0..40).map(|i| i * 3 % 17).collect())),
        ])
        .unwrap()
    }

    #[test]
    fn kernel_matches_materialized_trials_across_seeds_and_noise() {
        let table = spread_table();
        // `y` before `x` on purpose: recipe order differs from schema order,
        // which is exactly where the draw-order contract bites.
        let scoring = ScoringFunction::from_pairs([("y", 0.5), ("x", 0.3), ("z", 0.2)]).unwrap();
        for &(data_noise, weight_noise) in
            &[(0.0, 0.0), (0.1, 0.0), (0.0, 0.2), (0.25, 0.25), (2.0, 1.0)]
        {
            for seed in [0u64, 1, 42, 9999, 1 << 50] {
                let reference =
                    materialized_trial(&table, &scoring, data_noise, weight_noise, seed)
                        .unwrap()
                        .order();
                let kernel =
                    kernel_trial(&table, &scoring, data_noise, weight_noise, seed).unwrap();
                assert_eq!(
                    reference, kernel,
                    "noise ({data_noise}, {weight_noise}), seed {seed}"
                );
            }
        }
    }

    #[test]
    fn kernel_matches_materialized_under_every_normalization() {
        let table = spread_table();
        for method in [
            NormalizationMethod::None,
            NormalizationMethod::MinMax,
            NormalizationMethod::ZScore,
        ] {
            let scoring = ScoringFunction::with_normalization(
                vec![
                    crate::score::AttributeWeight::new("x", 0.7),
                    crate::score::AttributeWeight::new("y", 0.3),
                ],
                method,
            )
            .unwrap();
            for seed in [3u64, 77] {
                let reference = materialized_trial(&table, &scoring, 0.15, 0.1, seed)
                    .unwrap()
                    .order();
                let kernel = kernel_trial(&table, &scoring, 0.15, 0.1, seed).unwrap();
                assert_eq!(reference, kernel, "{method:?}, seed {seed}");
            }
        }
    }

    #[test]
    fn kernel_matches_materialized_with_missing_values_and_policies() {
        let table = Table::from_columns(vec![
            (
                "a",
                Column::Float(
                    (0..30)
                        .map(|i| {
                            if i % 7 == 3 {
                                None
                            } else {
                                Some(i as f64 * 1.3)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "b",
                Column::from_f64((0..30).map(|i| (30 - i) as f64).collect()),
            ),
        ])
        .unwrap();
        for policy in [MissingValuePolicy::MeanImpute, MissingValuePolicy::Zero] {
            let scoring = ScoringFunction::from_pairs([("a", 0.6), ("b", 0.4)])
                .unwrap()
                .with_missing_policy(policy);
            // Weight noise must stay zero: the reference path's weight
            // rebuild resets the policy to `Error`, which the kernel also
            // replicates — with noise on, both paths error identically.
            let reference = materialized_trial(&table, &scoring, 0.2, 0.0, 5)
                .unwrap()
                .order();
            let kernel = kernel_trial(&table, &scoring, 0.2, 0.0, 5).unwrap();
            assert_eq!(reference, kernel, "{policy:?}");

            // And with weight noise, the policy-reset quirk is replicated:
            // both paths fail on the first missing value.
            let reference = materialized_trial(&table, &scoring, 0.2, 0.1, 5);
            let kernel = TrialKernel::fit(&table, &scoring, 0.2, 0.1).unwrap();
            let mut scratch = kernel.scratch();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let kernel_err = kernel.rank_trial(&mut rng, &mut scratch);
            assert_eq!(reference.unwrap_err(), kernel_err.unwrap_err());
        }
        // The error policy fails identically on both paths.
        let scoring = ScoringFunction::from_pairs([("a", 1.0)]).unwrap();
        let reference = materialized_trial(&table, &scoring, 0.1, 0.0, 6).unwrap_err();
        let kernel = TrialKernel::fit(&table, &scoring, 0.1, 0.0).unwrap();
        let mut scratch = kernel.scratch();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let err = kernel.rank_trial(&mut rng, &mut scratch).unwrap_err();
        assert_eq!(reference, err);
    }

    #[test]
    fn kernel_scratch_is_reusable_across_trials() {
        let table = spread_table();
        let scoring = ScoringFunction::from_pairs([("x", 0.5), ("y", 0.5)]).unwrap();
        let kernel = TrialKernel::fit(&table, &scoring, 0.2, 0.1).unwrap();
        let mut scratch = kernel.scratch();
        for seed in 0u64..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            kernel.rank_trial(&mut rng, &mut scratch).unwrap();
            let reused = scratch.order().to_vec();
            let fresh = kernel_trial(&table, &scoring, 0.2, 0.1, seed).unwrap();
            assert_eq!(reused, fresh, "seed {seed}: reused scratch diverged");
            // The rank vector inverts the order.
            for (position, &index) in scratch.order().iter().enumerate() {
                assert_eq!(scratch.rank_of()[index], position + 1);
            }
        }
    }

    #[test]
    fn kernel_fit_surfaces_constant_column_errors_like_the_first_trial() {
        let table = Table::from_columns(vec![("c", Column::from_f64(vec![5.0; 10]))]).unwrap();
        let scoring = ScoringFunction::from_pairs([("c", 1.0)]).unwrap();
        // Noise-free: the trial-invariant fit fails up front with the exact
        // error every materialized trial reports.
        let reference = materialized_trial(&table, &scoring, 0.0, 0.0, 1).unwrap_err();
        let kernel_err = TrialKernel::fit(&table, &scoring, 0.0, 0.0).unwrap_err();
        assert_eq!(reference, kernel_err);
        // With data noise the column un-sticks (sd is 0, so the scale is 0 —
        // but min-max still sees a constant column): per-trial errors match.
        let reference = materialized_trial(&table, &scoring, 0.5, 0.0, 1).unwrap_err();
        let kernel = TrialKernel::fit(&table, &scoring, 0.5, 0.0).unwrap();
        let mut scratch = kernel.scratch();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = kernel.rank_trial(&mut rng, &mut scratch).unwrap_err();
        assert_eq!(reference, err);
    }

    #[test]
    fn kernel_rejects_bad_recipes_like_the_reference() {
        let table = spread_table();
        let ghost = ScoringFunction::from_pairs([("ghost", 1.0)]).unwrap();
        assert!(TrialKernel::fit(&table, &ghost, 0.1, 0.1).is_err());
        let non_numeric = ScoringFunction::from_pairs([("name", 1.0)]).unwrap();
        assert!(TrialKernel::fit(&table, &non_numeric, 0.1, 0.1).is_err());
    }

    #[test]
    fn descending_sort_key_orders_exactly_like_the_comparator() {
        // Every pairwise key comparison must agree with the descending
        // partial_cmp the reference sort uses — including both zeros, which
        // partial_cmp treats as equal.
        let samples = [
            f64::MIN,
            -1.0e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0e-300,
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            3.75,
            1.0e300,
            f64::MAX,
        ];
        for &x in &samples {
            for &y in &samples {
                let reference = y.partial_cmp(&x).unwrap();
                let keys = descending_sort_key(x).cmp(&descending_sort_key(y));
                assert_eq!(keys, reference, "x={x:?}, y={y:?}");
            }
        }
    }

    /// A table with `rows` rows: one dense oscillating column, one dense
    /// linear column, and one sparse column missing every 5th row.
    fn tiled_table(rows: usize) -> Table {
        Table::from_columns(vec![
            (
                "u",
                Column::from_f64(
                    (0..rows)
                        .map(|i| (i as f64 * 0.37).sin() * 50.0 + i as f64 * 0.01)
                        .collect(),
                ),
            ),
            (
                "v",
                Column::from_f64((0..rows).map(|i| rows as f64 - i as f64 * 0.5).collect()),
            ),
            (
                "w",
                Column::Float(
                    (0..rows)
                        .map(|i| {
                            if i % 5 == 2 {
                                None
                            } else {
                                Some((i as f64 * 1.13).cos() * 20.0)
                            }
                        })
                        .collect(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn kernel_matches_materialized_at_tile_boundaries() {
        // Row counts straddling the tile size — plus a 1-row table — stay
        // byte-identical to the materialized reference with relaxed_fp off.
        for rows in [1, TILE - 1, TILE, TILE + 1, 2 * TILE, 2 * TILE + 7] {
            let table = tiled_table(rows);
            // A 1-row column is constant, which min-max (the default)
            // rejects on both paths; rank it raw instead.
            let scoring = if rows == 1 {
                ScoringFunction::with_normalization(
                    vec![
                        crate::score::AttributeWeight::new("v", 0.6),
                        crate::score::AttributeWeight::new("u", 0.4),
                    ],
                    NormalizationMethod::None,
                )
                .unwrap()
            } else {
                ScoringFunction::from_pairs([("v", 0.6), ("u", 0.4)]).unwrap()
            };
            for seed in [0u64, 11, 4242] {
                let reference = materialized_trial(&table, &scoring, 0.1, 0.1, seed)
                    .unwrap()
                    .order();
                let kernel = kernel_trial(&table, &scoring, 0.1, 0.1, seed).unwrap();
                assert_eq!(reference, kernel, "rows {rows}, seed {seed}");
            }
            if rows == 1 {
                continue;
            }
            // And the sparse column, under both non-error policies.
            for policy in [MissingValuePolicy::MeanImpute, MissingValuePolicy::Zero] {
                let scoring = ScoringFunction::from_pairs([("w", 0.7), ("u", 0.3)])
                    .unwrap()
                    .with_missing_policy(policy);
                let reference = materialized_trial(&table, &scoring, 0.2, 0.0, 9)
                    .unwrap()
                    .order();
                let kernel = kernel_trial(&table, &scoring, 0.2, 0.0, 9).unwrap();
                assert_eq!(reference, kernel, "rows {rows}, {policy:?}");
            }
        }
    }

    #[test]
    fn kernel_matches_materialized_with_all_missing_tiles() {
        // A sparse column whose second tile (rows TILE..2·TILE) is entirely
        // missing: the masked path crosses a whole tile of fallbacks.
        let rows = 3 * TILE;
        let table = Table::from_columns(vec![
            (
                "gappy",
                Column::Float(
                    (0..rows)
                        .map(|i| {
                            if (TILE..2 * TILE).contains(&i) {
                                None
                            } else {
                                Some((i as f64 * 0.71).sin() * 10.0)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "full",
                Column::from_f64((0..rows).map(|i| i as f64 * 0.25).collect()),
            ),
        ])
        .unwrap();
        for policy in [MissingValuePolicy::MeanImpute, MissingValuePolicy::Zero] {
            let scoring = ScoringFunction::from_pairs([("gappy", 0.5), ("full", 0.5)])
                .unwrap()
                .with_missing_policy(policy);
            for seed in [1u64, 77] {
                let reference = materialized_trial(&table, &scoring, 0.15, 0.0, seed)
                    .unwrap()
                    .order();
                let kernel = kernel_trial(&table, &scoring, 0.15, 0.0, seed).unwrap();
                assert_eq!(reference, kernel, "{policy:?}, seed {seed}");
            }
        }
    }

    /// Runs one kernel trial with `relaxed_fp` as given, returning the
    /// per-row scores and the order.
    fn kernel_trial_scores(
        table: &Table,
        scoring: &ScoringFunction,
        data_noise: f64,
        weight_noise: f64,
        seed: u64,
        relaxed: bool,
    ) -> (Vec<f64>, Vec<usize>) {
        let kernel = TrialKernel::fit(table, scoring, data_noise, weight_noise)
            .unwrap()
            .with_relaxed_fp(relaxed);
        let mut scratch = kernel.scratch();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        kernel.rank_trial(&mut rng, &mut scratch).unwrap();
        (scratch.scores().to_vec(), scratch.order().to_vec())
    }

    #[test]
    fn relaxed_fp_scores_stay_within_epsilon_of_exact() {
        // The relaxed path draws the same noise from the same stream; only
        // reductions and division strength are reassociated, so per-row
        // scores stay within 1e-9 relative error of the exact path — across
        // normalizations, sparse columns, and tile-boundary row counts.
        for rows in [TILE - 1, TILE, 2 * TILE + 7] {
            let table = tiled_table(rows);
            for method in [
                NormalizationMethod::None,
                NormalizationMethod::MinMax,
                NormalizationMethod::ZScore,
            ] {
                let scoring = ScoringFunction::with_normalization(
                    vec![
                        crate::score::AttributeWeight::new("u", 0.5),
                        crate::score::AttributeWeight::new("v", 0.5),
                    ],
                    method,
                )
                .unwrap();
                for seed in [2u64, 300] {
                    let (exact, _) = kernel_trial_scores(&table, &scoring, 0.1, 0.1, seed, false);
                    let (relaxed, _) = kernel_trial_scores(&table, &scoring, 0.1, 0.1, seed, true);
                    for (row, (&e, &r)) in exact.iter().zip(&relaxed).enumerate() {
                        let tolerance = 1e-9 * e.abs().max(1.0);
                        assert!(
                            (e - r).abs() <= tolerance,
                            "{method:?}, rows {rows}, seed {seed}, row {row}: {e} vs {r}"
                        );
                    }
                }
            }
            // Sparse masked-gather path.
            let scoring = ScoringFunction::from_pairs([("w", 0.6), ("u", 0.4)])
                .unwrap()
                .with_missing_policy(MissingValuePolicy::MeanImpute);
            let (exact, _) = kernel_trial_scores(&table, &scoring, 0.2, 0.0, 8, false);
            let (relaxed, _) = kernel_trial_scores(&table, &scoring, 0.2, 0.0, 8, true);
            for (row, (&e, &r)) in exact.iter().zip(&relaxed).enumerate() {
                let tolerance = 1e-9 * e.abs().max(1.0);
                assert!(
                    (e - r).abs() <= tolerance,
                    "sparse, rows {rows}, row {row}: {e} vs {r}"
                );
            }
        }
    }

    #[test]
    fn relaxed_fp_ranks_well_separated_data_identically() {
        // Scores separated by far more than the relaxed epsilon produce the
        // same ranking on both paths.
        let rows = TILE + 13;
        let table = Table::from_columns(vec![(
            "gap",
            Column::from_f64((0..rows).map(|i| (i as f64) * 100.0).collect()),
        )])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("gap", 1.0)]).unwrap();
        for seed in [0u64, 5, 99] {
            let (_, exact) = kernel_trial_scores(&table, &scoring, 0.001, 0.05, seed, false);
            let (_, relaxed) = kernel_trial_scores(&table, &scoring, 0.001, 0.05, seed, true);
            assert_eq!(exact, relaxed, "seed {seed}");
        }
    }
}
