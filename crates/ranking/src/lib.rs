//! # rf-ranking
//!
//! The scoring and ranking engine of the Ranking Facts reproduction.
//!
//! Ranking Facts explains **score-based rankers**: the user "selects at least
//! one numerical attribute for the scoring function, and assigns a weight to
//! this attribute" (paper §3, Figure 3).  Items are then ordered by the
//! weighted sum of their (optionally normalized) attribute values.  This
//! crate provides:
//!
//! * [`score`] — the linear [`ScoringFunction`]: weighted attributes plus a
//!   normalization policy, validated against a table, producing a score per
//!   row.  This is the "Recipe" the label explains.
//! * [`ranking`] — the [`Ranking`] produced by a scoring function: item
//!   indices in rank order with their scores, top-k slicing, and rank lookup.
//! * [`compare`] — rank-correlation measures between two rankings of the same
//!   items (Kendall tau, Spearman rho and footrule), used by the Monte-Carlo
//!   stability estimator and by the Ingredients widget's rank-aware
//!   association analysis.
//! * [`perturb`] — controlled perturbation of scoring weights and of the
//!   underlying data, used to probe "slight changes to the data [...] or to
//!   the methodology" (§2.2).
//! * [`columnar`] — the allocation-free Monte-Carlo trial kernel: fit once
//!   into flat `f64` column buffers, then perturb + score + argsort each
//!   trial in reusable scratch, byte-identical to the materialized path.
//! * [`rank_aware`] — top-weighted similarity measures (top-k overlap,
//!   average overlap, rank-biased overlap, τ-AP), the "rank-aware similarity"
//!   alternative the paper mentions for deriving Ingredients (§2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod compare;
pub mod error;
pub mod perturb;
pub mod rank_aware;
pub mod ranking;
pub mod score;

pub use columnar::{descending_sort_key, TrialKernel, TrialScratch, TILE};
pub use compare::{
    footrule_distance, kendall_tau_rankings, kendall_tau_with_scratch, spearman_rho_rankings,
};
pub use error::{RankingError, RankingResult};
pub use perturb::{perturb_table_gaussian, perturb_weights, PerturbationSpec, TablePerturber};
pub use rank_aware::{
    ap_correlation, average_overlap, rank_aware_association, rank_biased_overlap, top_k_jaccard,
    top_k_overlap,
};
pub use ranking::{RankedItem, Ranking};
pub use score::{AttributeWeight, MissingValuePolicy, ScoreModel, ScoringFunction};
