//! Linear scoring functions — the "Recipe" of the nutritional label.
//!
//! A [`ScoringFunction`] is a set of `(attribute, weight)` pairs plus a
//! normalization policy.  Scoring a table produces one score per row:
//! `score(row) = Σ weight_j · normalize(attribute_j(row))`.
//!
//! "The explicit intentions of the designer of the scoring function about
//! which attributes matter, and to what extent, are stated in the Recipe"
//! (paper §2.1) — the Recipe widget in `rf-core` renders exactly the
//! contents of this struct.

use crate::error::{RankingError, RankingResult};
use crate::ranking::Ranking;
use rf_table::{NormalizationMethod, Normalizer, Table};

/// One scoring attribute and its weight.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributeWeight {
    /// Name of the numeric attribute.
    pub attribute: String,
    /// Weight assigned by the designer of the scoring function.
    pub weight: f64,
}

impl AttributeWeight {
    /// Creates an attribute/weight pair.
    pub fn new(attribute: impl Into<String>, weight: f64) -> Self {
        AttributeWeight {
            attribute: attribute.into(),
            weight,
        }
    }
}

/// How rows with missing scoring-attribute values are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum MissingValuePolicy {
    /// Fail with an error (the paper requires "a fully populated table").
    #[default]
    Error,
    /// Substitute the attribute's mean value (computed over non-missing rows).
    MeanImpute,
    /// Treat the missing value as zero after normalization.
    Zero,
}

/// A linear scoring function: weighted attributes plus a normalization policy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoringFunction {
    weights: Vec<AttributeWeight>,
    normalization: NormalizationMethod,
    missing_policy: MissingValuePolicy,
}

impl ScoringFunction {
    /// Creates a scoring function from `(attribute, weight)` pairs with the
    /// default normalization (min-max, as in the paper's design view).
    ///
    /// # Errors
    /// Returns an error when no attributes are given, a weight is non-finite,
    /// or every weight is zero.
    pub fn new(weights: Vec<AttributeWeight>) -> RankingResult<Self> {
        Self::with_normalization(weights, NormalizationMethod::MinMax)
    }

    /// Creates a scoring function with an explicit normalization policy.
    ///
    /// # Errors
    /// Same as [`ScoringFunction::new`].
    pub fn with_normalization(
        weights: Vec<AttributeWeight>,
        normalization: NormalizationMethod,
    ) -> RankingResult<Self> {
        if weights.is_empty() {
            return Err(RankingError::EmptyRecipe);
        }
        for w in &weights {
            if !w.weight.is_finite() {
                return Err(RankingError::InvalidWeight {
                    attribute: w.attribute.clone(),
                    message: format!("weight must be finite, got {}", w.weight),
                });
            }
        }
        if weights.iter().all(|w| w.weight == 0.0) {
            return Err(RankingError::InvalidWeight {
                attribute: String::new(),
                message: "all weights are zero".to_string(),
            });
        }
        Ok(ScoringFunction {
            weights,
            normalization,
            missing_policy: MissingValuePolicy::default(),
        })
    }

    /// Convenience constructor from `(name, weight)` tuples.
    ///
    /// # Errors
    /// Same as [`ScoringFunction::new`].
    pub fn from_pairs<I, S>(pairs: I) -> RankingResult<Self>
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        Self::new(
            pairs
                .into_iter()
                .map(|(name, weight)| AttributeWeight::new(name, weight))
                .collect(),
        )
    }

    /// Sets the missing-value policy.
    #[must_use]
    pub fn with_missing_policy(mut self, policy: MissingValuePolicy) -> Self {
        self.missing_policy = policy;
        self
    }

    /// The scoring attributes and their weights, in declaration order.
    #[must_use]
    pub fn weights(&self) -> &[AttributeWeight] {
        &self.weights
    }

    /// Names of the scoring attributes, in declaration order.
    #[must_use]
    pub fn attribute_names(&self) -> Vec<&str> {
        self.weights.iter().map(|w| w.attribute.as_str()).collect()
    }

    /// The normalization policy.
    #[must_use]
    pub fn normalization(&self) -> NormalizationMethod {
        self.normalization
    }

    /// The missing-value policy.
    #[must_use]
    pub fn missing_policy(&self) -> MissingValuePolicy {
        self.missing_policy
    }

    /// Weights rescaled to sum to 1 (in absolute value), as displayed by the
    /// Recipe widget.  Returns the raw weights when their absolute sum is 0
    /// (which construction prevents).
    #[must_use]
    pub fn normalized_weights(&self) -> Vec<AttributeWeight> {
        let total: f64 = self.weights.iter().map(|w| w.weight.abs()).sum();
        if total == 0.0 {
            return self.weights.clone();
        }
        self.weights
            .iter()
            .map(|w| AttributeWeight::new(w.attribute.clone(), w.weight / total))
            .collect()
    }

    /// Validates that every scoring attribute exists in `table` and is numeric.
    ///
    /// # Errors
    /// Propagates the table error for the first offending attribute.
    pub fn validate_against(&self, table: &Table) -> RankingResult<()> {
        for w in &self.weights {
            table.require_numeric(&w.attribute)?;
        }
        Ok(())
    }

    /// Fits the scoring function to `table`, producing a self-contained
    /// [`ScoreModel`]: normalization parameters plus row-aligned attribute
    /// values.  The model owns everything it needs, so callers can share it
    /// across threads (via `Arc`) and score disjoint row ranges in parallel —
    /// `rf-core`'s analysis pipeline shards exactly this way.
    ///
    /// Normalization parameters are fitted on the full table (so that scores
    /// of the top-k slice remain comparable with over-all scores).
    ///
    /// # Errors
    /// Missing/non-numeric attributes or normalization failures (constant
    /// column under min-max).
    pub fn fit(&self, table: &Table) -> RankingResult<ScoreModel> {
        self.validate_against(table)?;
        let names: Vec<&str> = self.attribute_names();
        let normalizer = Normalizer::fit(table, &names, self.normalization)?;

        // Pre-compute per-attribute row-aligned numeric values and mean fallbacks.
        let mut attributes: Vec<PreparedAttribute> = Vec::with_capacity(names.len());
        for w in &self.weights {
            let values = table.numeric_column_options(&w.attribute)?;
            let non_null: Vec<f64> = values.iter().filter_map(|x| *x).collect();
            let mean = if non_null.is_empty() {
                0.0
            } else {
                rf_stats::mean(&non_null)?
            };
            attributes.push(PreparedAttribute {
                name: w.attribute.clone(),
                weight: w.weight,
                values,
                mean,
            });
        }
        Ok(ScoreModel {
            normalizer,
            attributes,
            missing_policy: self.missing_policy,
            rows: table.num_rows(),
        })
    }

    /// Computes the score of every row of `table`.
    ///
    /// Equivalent to [`ScoringFunction::fit`] followed by
    /// [`ScoreModel::score_range`] over all rows.
    ///
    /// # Errors
    /// Missing/non-numeric attributes, normalization failures (constant
    /// column under min-max), or missing values under the
    /// [`MissingValuePolicy::Error`] policy.
    pub fn score_table(&self, table: &Table) -> RankingResult<Vec<f64>> {
        let model = self.fit(table)?;
        model.score_range(0..model.rows())
    }

    /// Scores the table and returns the resulting [`Ranking`]
    /// (highest score first; ties broken by original row order).
    ///
    /// # Errors
    /// Same as [`ScoringFunction::score_table`].
    pub fn rank_table(&self, table: &Table) -> RankingResult<Ranking> {
        let scores = self.score_table(table)?;
        Ranking::from_scores(&scores)
    }

    /// Returns a copy with one attribute's weight replaced.  Used by the
    /// per-attribute stability analysis and by "what-if" exploration in the
    /// design view.
    ///
    /// # Errors
    /// Returns an error if the attribute is not part of the recipe or the new
    /// weight is invalid.
    pub fn with_weight(&self, attribute: &str, new_weight: f64) -> RankingResult<Self> {
        if !new_weight.is_finite() {
            return Err(RankingError::InvalidWeight {
                attribute: attribute.to_string(),
                message: format!("weight must be finite, got {new_weight}"),
            });
        }
        let mut weights = self.weights.clone();
        let slot = weights
            .iter_mut()
            .find(|w| w.attribute == attribute)
            .ok_or_else(|| RankingError::InvalidWeight {
                attribute: attribute.to_string(),
                message: "attribute is not part of the scoring function".to_string(),
            })?;
        slot.weight = new_weight;
        if weights.iter().all(|w| w.weight == 0.0) {
            return Err(RankingError::InvalidWeight {
                attribute: String::new(),
                message: "all weights are zero".to_string(),
            });
        }
        Ok(ScoringFunction {
            weights,
            normalization: self.normalization,
            missing_policy: self.missing_policy,
        })
    }
}

/// One scoring attribute prepared for row-range scoring: its weight, its
/// row-aligned values, and the mean fallback for [`MissingValuePolicy::MeanImpute`].
#[derive(Debug, Clone)]
struct PreparedAttribute {
    name: String,
    weight: f64,
    values: Vec<Option<f64>>,
    mean: f64,
}

/// A scoring function fitted to one table: the immutable state needed to
/// score any subset of its rows.
///
/// Scoring is embarrassingly parallel across rows once the normalizer and the
/// attribute columns are materialized; this type is that materialization.
/// [`ScoreModel::score_range`] over disjoint ranges, concatenated in range
/// order, is byte-identical to a single pass over all rows — the invariant
/// `rf-core`'s sharded context preparation relies on.
#[derive(Debug, Clone)]
pub struct ScoreModel {
    normalizer: Normalizer,
    attributes: Vec<PreparedAttribute>,
    missing_policy: MissingValuePolicy,
    rows: usize,
}

impl ScoreModel {
    /// Number of rows of the fitted table.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Computes the scores of the rows in `range` (absolute row indices), in
    /// row order.
    ///
    /// # Errors
    /// Normalization failures or missing values under the
    /// [`MissingValuePolicy::Error`] policy (reported with the absolute row
    /// index, identical to a full-table pass).
    pub fn score_range(&self, range: std::ops::Range<usize>) -> RankingResult<Vec<f64>> {
        let range = range.start.min(self.rows)..range.end.min(self.rows);
        let mut scores = Vec::with_capacity(range.len());
        for row in range {
            let mut score = 0.0;
            for attribute in &self.attributes {
                let value = match attribute.values[row] {
                    Some(v) => self.normalizer.transform_value(&attribute.name, v)?,
                    None => match self.missing_policy {
                        MissingValuePolicy::Error => {
                            return Err(RankingError::MissingValue {
                                attribute: attribute.name.clone(),
                                row,
                            })
                        }
                        MissingValuePolicy::MeanImpute => self
                            .normalizer
                            .transform_value(&attribute.name, attribute.mean)?,
                        MissingValuePolicy::Zero => 0.0,
                    },
                };
                score += attribute.weight * value;
            }
            scores.push(score);
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn departments() -> Table {
        Table::from_columns(vec![
            ("Dept", Column::from_strings(["A", "B", "C", "D"])),
            ("PubCount", Column::from_f64(vec![10.0, 20.0, 30.0, 40.0])),
            ("Faculty", Column::from_f64(vec![40.0, 30.0, 20.0, 10.0])),
            ("GRE", Column::from_f64(vec![160.0, 161.0, 159.0, 160.5])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validations() {
        assert!(matches!(
            ScoringFunction::new(vec![]),
            Err(RankingError::EmptyRecipe)
        ));
        assert!(ScoringFunction::from_pairs([("a", f64::NAN)]).is_err());
        assert!(ScoringFunction::from_pairs([("a", 0.0), ("b", 0.0)]).is_err());
        assert!(ScoringFunction::from_pairs([("a", 0.0), ("b", 1.0)]).is_ok());
    }

    #[test]
    fn attribute_names_and_weights() {
        let f = ScoringFunction::from_pairs([("PubCount", 2.0), ("Faculty", 1.0)]).unwrap();
        assert_eq!(f.attribute_names(), vec!["PubCount", "Faculty"]);
        assert_eq!(f.weights()[0].weight, 2.0);
        let norm = f.normalized_weights();
        assert!((norm[0].weight - 2.0 / 3.0).abs() < 1e-12);
        assert!((norm[1].weight - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_attribute_ranking_matches_sort() {
        let t = departments();
        let f = ScoringFunction::from_pairs([("PubCount", 1.0)]).unwrap();
        let ranking = f.rank_table(&t).unwrap();
        // Highest PubCount (row 3) first.
        assert_eq!(ranking.order(), &[3, 2, 1, 0]);
    }

    #[test]
    fn equal_weights_balance_opposing_attributes() {
        let t = departments();
        // PubCount ascending, Faculty descending: equal weights make all rows tie.
        let f = ScoringFunction::from_pairs([("PubCount", 1.0), ("Faculty", 1.0)]).unwrap();
        let scores = f.score_table(&t).unwrap();
        for s in &scores {
            assert!((s - scores[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_shift_the_winner() {
        let t = departments();
        let favour_pubs =
            ScoringFunction::from_pairs([("PubCount", 0.9), ("Faculty", 0.1)]).unwrap();
        let favour_faculty =
            ScoringFunction::from_pairs([("PubCount", 0.1), ("Faculty", 0.9)]).unwrap();
        assert_eq!(favour_pubs.rank_table(&t).unwrap().order()[0], 3);
        assert_eq!(favour_faculty.rank_table(&t).unwrap().order()[0], 0);
    }

    #[test]
    fn raw_normalization_uses_magnitudes() {
        let t = departments();
        // Raw values: GRE (~160) dwarfs PubCount (10..40) when unnormalized.
        let f = ScoringFunction::with_normalization(
            vec![
                AttributeWeight::new("PubCount", 0.5),
                AttributeWeight::new("GRE", 0.5),
            ],
            NormalizationMethod::None,
        )
        .unwrap();
        let scores = f.score_table(&t).unwrap();
        assert!(scores.iter().all(|&s| s > 80.0));
    }

    #[test]
    fn validate_against_rejects_bad_attributes() {
        let t = departments();
        let f = ScoringFunction::from_pairs([("Ghost", 1.0)]).unwrap();
        assert!(f.validate_against(&t).is_err());
        let f = ScoringFunction::from_pairs([("Dept", 1.0)]).unwrap();
        assert!(f.validate_against(&t).is_err());
    }

    #[test]
    fn missing_value_policies() {
        let t = Table::from_columns(vec![("x", Column::Float(vec![Some(1.0), None, Some(3.0)]))])
            .unwrap();
        let f = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        assert!(matches!(
            f.score_table(&t),
            Err(RankingError::MissingValue { row: 1, .. })
        ));
        let f_mean = f
            .clone()
            .with_missing_policy(MissingValuePolicy::MeanImpute);
        let scores = f_mean.score_table(&t).unwrap();
        assert!((scores[1] - 0.5).abs() < 1e-12); // mean of 1 and 3 is 2 → min-max 0.5
        let f_zero = f.with_missing_policy(MissingValuePolicy::Zero);
        let scores = f_zero.score_table(&t).unwrap();
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn with_weight_replaces_and_validates() {
        let f = ScoringFunction::from_pairs([("a", 1.0), ("b", 1.0)]).unwrap();
        let g = f.with_weight("a", 3.0).unwrap();
        assert_eq!(g.weights()[0].weight, 3.0);
        assert_eq!(f.weights()[0].weight, 1.0);
        assert!(f.with_weight("ghost", 1.0).is_err());
        assert!(f.with_weight("a", f64::INFINITY).is_err());
        // Setting the only non-zero weight to zero is rejected.
        let h = ScoringFunction::from_pairs([("a", 1.0), ("b", 0.0)]).unwrap();
        assert!(h.with_weight("a", 0.0).is_err());
    }

    #[test]
    fn sharded_score_ranges_concatenate_to_the_full_pass() {
        let t = departments();
        let f = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
            .unwrap();
        let full = f.score_table(&t).unwrap();
        let model = f.fit(&t).unwrap();
        assert_eq!(model.rows(), 4);
        for split in 0..=4 {
            let mut sharded = model.score_range(0..split).unwrap();
            sharded.extend(model.score_range(split..4).unwrap());
            assert_eq!(sharded, full, "split at {split}");
        }
        // Out-of-range shards clamp instead of panicking.
        assert!(model.score_range(4..9).unwrap().is_empty());
    }

    #[test]
    fn score_range_reports_absolute_row_on_missing_values() {
        let t = Table::from_columns(vec![(
            "x",
            Column::Float(vec![Some(1.0), Some(2.0), None, Some(3.0)]),
        )])
        .unwrap();
        let f = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let model = f.fit(&t).unwrap();
        // The shard starting past the hole succeeds; the shard containing it
        // reports the absolute row index, exactly like the full pass.
        assert!(model.score_range(3..4).is_ok());
        assert!(matches!(
            model.score_range(2..4),
            Err(RankingError::MissingValue { row: 2, .. })
        ));
    }

    #[test]
    fn scores_with_minmax_are_weight_bounded() {
        let t = departments();
        let f = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.6)]).unwrap();
        let scores = f.score_table(&t).unwrap();
        for &s in &scores {
            assert!((0.0..=1.0 + 1e-12).contains(&s));
        }
    }
}
