//! Error type for the ranking engine.

use std::fmt;

/// Result alias used throughout `rf-ranking`.
pub type RankingResult<T> = Result<T, RankingError>;

/// Errors produced while building scoring functions and rankings.
#[derive(Debug, Clone, PartialEq)]
pub enum RankingError {
    /// The scoring function has no attributes.
    EmptyRecipe,
    /// An attribute weight is invalid (non-finite or all weights zero).
    InvalidWeight {
        /// Attribute whose weight is invalid (empty when the problem is global).
        attribute: String,
        /// Description of the problem.
        message: String,
    },
    /// A scoring attribute is missing from the table or not numeric.
    Table(rf_table::TableError),
    /// A row has a missing value for a scoring attribute and the policy is to fail.
    MissingValue {
        /// Attribute with the missing value.
        attribute: String,
        /// Row index.
        row: usize,
    },
    /// The two rankings being compared cover different item sets.
    IncomparableRankings {
        /// Description of the mismatch.
        message: String,
    },
    /// The ranking is empty.
    EmptyRanking,
    /// An underlying statistical routine failed.
    Stats(rf_stats::StatsError),
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::EmptyRecipe => {
                write!(f, "the scoring function must use at least one attribute")
            }
            RankingError::InvalidWeight { attribute, message } => {
                if attribute.is_empty() {
                    write!(f, "invalid scoring weights: {message}")
                } else {
                    write!(f, "invalid weight for attribute `{attribute}`: {message}")
                }
            }
            RankingError::Table(err) => write!(f, "table error: {err}"),
            RankingError::MissingValue { attribute, row } => write!(
                f,
                "attribute `{attribute}` has a missing value at row {row}; \
                 scoring requires fully populated scoring attributes"
            ),
            RankingError::IncomparableRankings { message } => {
                write!(f, "rankings cannot be compared: {message}")
            }
            RankingError::EmptyRanking => write!(f, "the ranking contains no items"),
            RankingError::Stats(err) => write!(f, "statistics error: {err}"),
        }
    }
}

impl std::error::Error for RankingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RankingError::Table(err) => Some(err),
            RankingError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_table::TableError> for RankingError {
    fn from(err: rf_table::TableError) -> Self {
        RankingError::Table(err)
    }
}

impl From<rf_stats::StatsError> for RankingError {
    fn from(err: rf_stats::StatsError) -> Self {
        RankingError::Stats(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RankingError::EmptyRecipe
            .to_string()
            .contains("at least one"));
        assert!(RankingError::EmptyRanking.to_string().contains("no items"));
        let e = RankingError::MissingValue {
            attribute: "GRE".to_string(),
            row: 3,
        };
        assert!(e.to_string().contains("GRE"));
        assert!(e.to_string().contains("row 3"));
        let e = RankingError::InvalidWeight {
            attribute: String::new(),
            message: "all weights are zero".to_string(),
        };
        assert!(e.to_string().contains("all weights are zero"));
    }

    #[test]
    fn conversions() {
        let t: RankingError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(matches!(t, RankingError::Table(_)));
        let s: RankingError = rf_stats::StatsError::EmptyInput { operation: "x" }.into();
        assert!(matches!(s, RankingError::Stats(_)));
    }
}
