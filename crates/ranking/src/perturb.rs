//! Perturbation of data and scoring weights.
//!
//! The Stability widget asks whether "slight changes to the data (e.g., due
//! to uncertainty and noise), or to the methodology (e.g., by slightly
//! adjusting the weights in a score-based ranker) could lead to a significant
//! change in the output" (paper §2.2).  The Monte-Carlo stability estimator
//! in `rf-stability` answers that question empirically by re-ranking many
//! perturbed copies of the input; this module produces those copies.

use crate::error::RankingResult;
use crate::score::{AttributeWeight, ScoringFunction};
use rand::Rng;
use rf_table::{Column, Table};
use std::sync::Arc;

/// Specification of a perturbation experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerturbationSpec {
    /// Relative magnitude of Gaussian noise added to data values
    /// (a fraction of each column's standard deviation).
    pub data_noise: f64,
    /// Relative magnitude of multiplicative jitter applied to weights.
    pub weight_noise: f64,
}

impl Default for PerturbationSpec {
    fn default() -> Self {
        PerturbationSpec {
            data_noise: 0.05,
            weight_noise: 0.05,
        }
    }
}

/// One column of a fitted [`TablePerturber`]: either shared through
/// unchanged, or re-sampled with a pre-computed noise scale.
#[derive(Debug, Clone)]
enum PerturbColumn {
    /// A column outside the perturbation set, `Arc`-shared into every draw —
    /// an unperturbed column costs one reference count per draw, not a deep
    /// copy of its cells.
    Keep { name: String, column: Arc<Column> },
    /// A numeric column with Gaussian noise of the given absolute scale.
    Noise {
        name: String,
        options: Vec<Option<f64>>,
        scale: f64,
    },
}

/// A perturbation model fitted once and applied many times.
///
/// The Monte-Carlo stability estimator draws hundreds of perturbed copies of
/// the same table; fitting re-derives nothing per draw — the noise scale of
/// each listed column (`noise_fraction` × the column's standard deviation)
/// and the column layout are computed once by [`TablePerturber::fit`], and
/// every [`TablePerturber::perturb`] only samples noise.  One fitted model is
/// shared (it is `Sync`) across concurrently running trials, each with its
/// own RNG stream.
///
/// The draw order is one Gaussian per non-missing value of each perturbed
/// column, columns in schema order — exactly the order
/// [`perturb_table_gaussian`] historically consumed, so a fitted model fed
/// the same RNG stream reproduces it byte-for-byte.
#[derive(Debug, Clone)]
pub struct TablePerturber {
    columns: Vec<PerturbColumn>,
}

impl TablePerturber {
    /// Fits the model: resolves the listed columns, computes each one's
    /// noise scale, and captures the table layout.
    ///
    /// # Errors
    /// Unknown or non-numeric columns in `columns`.
    pub fn fit(table: &Table, columns: &[&str], noise_fraction: f64) -> RankingResult<Self> {
        for &name in columns {
            table.require_numeric(name)?;
        }
        let mut fitted = Vec::with_capacity(table.schema().fields().len());
        for field in table.schema().fields() {
            let name = field.name.as_str();
            let col = table.column(name)?;
            if columns.contains(&name) {
                let options = col.numeric_options(name)?;
                let non_null: Vec<f64> = options.iter().filter_map(|x| *x).collect();
                let sd = if non_null.len() >= 2 {
                    rf_stats::stddev(&non_null)?
                } else {
                    0.0
                };
                fitted.push(PerturbColumn::Noise {
                    name: name.to_string(),
                    options,
                    scale: sd * noise_fraction,
                });
            } else {
                fitted.push(PerturbColumn::Keep {
                    name: name.to_string(),
                    column: Arc::clone(table.shared_column(name)?),
                });
            }
        }
        Ok(TablePerturber { columns: fitted })
    }

    /// Draws one perturbed copy of the fitted table: each listed column gets
    /// fresh zero-mean Gaussian noise at its fitted scale, missing values
    /// remain missing, other columns are `Arc`-shared unchanged — a draw
    /// allocates only the perturbed columns, never the whole table.
    ///
    /// # Errors
    /// Table reconstruction errors (cannot occur for a model fitted from a
    /// well-formed table, but surfaced rather than panicking).
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R) -> RankingResult<Table> {
        let mut out = Table::new();
        for column in &self.columns {
            match column {
                PerturbColumn::Keep { name, column } => {
                    out.add_shared_column(name, Arc::clone(column))?;
                }
                PerturbColumn::Noise {
                    name,
                    options,
                    scale,
                } => {
                    let perturbed: Vec<Option<f64>> = options
                        .iter()
                        .map(|opt| opt.map(|v| v + gaussian(rng) * scale))
                        .collect();
                    out.add_column(name, Column::Float(perturbed))?;
                }
            }
        }
        Ok(out)
    }
}

/// Returns a copy of `table` in which each listed numeric column has zero-mean
/// Gaussian noise added, with standard deviation `noise_fraction` times the
/// column's own standard deviation.  Missing values remain missing; other
/// columns are untouched.
///
/// One-shot convenience over [`TablePerturber`]; repeated draws from the same
/// table should fit once and call [`TablePerturber::perturb`] per draw.
///
/// # Errors
/// Unknown or non-numeric columns.
pub fn perturb_table_gaussian<R: Rng + ?Sized>(
    table: &Table,
    columns: &[&str],
    noise_fraction: f64,
    rng: &mut R,
) -> RankingResult<Table> {
    TablePerturber::fit(table, columns, noise_fraction)?.perturb(rng)
}

/// Returns a copy of the scoring function with each weight multiplied by
/// `1 + ε`, where `ε` is uniform in `[-noise_fraction, +noise_fraction]`.
///
/// If the jitter happens to drive every weight to exactly zero (only possible
/// when all weights start at zero, which construction forbids), the original
/// function is returned unchanged.
///
/// # Errors
/// Propagates scoring-function validation errors.
pub fn perturb_weights<R: Rng + ?Sized>(
    scoring: &ScoringFunction,
    noise_fraction: f64,
    rng: &mut R,
) -> RankingResult<ScoringFunction> {
    let new_weights: Vec<AttributeWeight> = scoring
        .weights()
        .iter()
        .map(|w| {
            let jitter = 1.0 + rng.gen_range(-noise_fraction..=noise_fraction);
            AttributeWeight::new(w.attribute.clone(), w.weight * jitter)
        })
        .collect();
    if new_weights.iter().all(|w| w.weight == 0.0) {
        return Ok(scoring.clone());
    }
    ScoringFunction::with_normalization(new_weights, scoring.normalization())
}

/// Standard normal sample via the Box–Muller transform.
///
/// Using Box–Muller (rather than `rand_distr`) keeps the dependency set to the
/// pre-approved crates.  Shared with the columnar trial kernel
/// (`crate::columnar`), which must consume the RNG exactly like this module.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn table() -> Table {
        Table::from_columns(vec![
            ("x", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ("y", Column::from_f64(vec![10.0, 10.0, 10.0, 10.0, 10.0])),
            ("label", Column::from_strings(["a", "b", "c", "d", "e"])),
        ])
        .unwrap()
    }

    #[test]
    fn default_spec_is_five_percent() {
        let spec = PerturbationSpec::default();
        assert_eq!(spec.data_noise, 0.05);
        assert_eq!(spec.weight_noise, 0.05);
    }

    #[test]
    fn perturbation_changes_only_listed_columns() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = perturb_table_gaussian(&t, &["x"], 0.1, &mut rng).unwrap();
        assert_ne!(
            p.numeric_column("x").unwrap(),
            t.numeric_column("x").unwrap()
        );
        assert_eq!(
            p.numeric_column("y").unwrap(),
            t.numeric_column("y").unwrap()
        );
        assert_eq!(
            p.categorical_column("label").unwrap(),
            t.categorical_column("label").unwrap()
        );
    }

    #[test]
    fn zero_noise_is_identity() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = perturb_table_gaussian(&t, &["x"], 0.0, &mut rng).unwrap();
        assert_eq!(
            p.numeric_column("x").unwrap(),
            t.numeric_column("x").unwrap()
        );
    }

    #[test]
    fn constant_column_stays_constant() {
        // Its standard deviation is zero, so noise has zero scale.
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = perturb_table_gaussian(&t, &["y"], 0.5, &mut rng).unwrap();
        assert_eq!(p.numeric_column("y").unwrap(), vec![10.0; 5]);
    }

    #[test]
    fn perturbation_magnitude_tracks_noise_fraction() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let small = perturb_table_gaussian(&t, &["x"], 0.01, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let large = perturb_table_gaussian(&t, &["x"], 1.0, &mut rng).unwrap();
        let orig = t.numeric_column("x").unwrap();
        let dev_small: f64 = small
            .numeric_column("x")
            .unwrap()
            .iter()
            .zip(orig.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let dev_large: f64 = large
            .numeric_column("x")
            .unwrap()
            .iter()
            .zip(orig.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dev_large > dev_small);
    }

    #[test]
    fn perturbation_is_deterministic_under_seed() {
        let t = table();
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let p1 = perturb_table_gaussian(&t, &["x"], 0.1, &mut rng1).unwrap();
        let p2 = perturb_table_gaussian(&t, &["x"], 0.1, &mut rng2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn unknown_column_is_error() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(perturb_table_gaussian(&t, &["ghost"], 0.1, &mut rng).is_err());
        assert!(TablePerturber::fit(&t, &["ghost"], 0.1).is_err());
        assert!(TablePerturber::fit(&t, &["label"], 0.1).is_err());
    }

    #[test]
    fn fitted_perturber_matches_the_one_shot_helper_byte_for_byte() {
        // The per-trial hot path fits once and draws many times; every draw
        // must consume the RNG exactly like the historical one-shot helper.
        let t = table();
        let perturber = TablePerturber::fit(&t, &["x"], 0.2).unwrap();
        for seed in [0u64, 1, 42, 1 << 40] {
            let mut one_shot_rng = ChaCha8Rng::seed_from_u64(seed);
            let mut fitted_rng = ChaCha8Rng::seed_from_u64(seed);
            let one_shot = perturb_table_gaussian(&t, &["x"], 0.2, &mut one_shot_rng).unwrap();
            let fitted = perturber.perturb(&mut fitted_rng).unwrap();
            assert_eq!(one_shot, fitted, "seed {seed}");
        }
    }

    #[test]
    fn fitted_perturber_is_reusable_across_independent_draws() {
        let t = table();
        let perturber = TablePerturber::fit(&t, &["x"], 0.3).unwrap();
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(10);
        let a = perturber.perturb(&mut rng_a).unwrap();
        let b = perturber.perturb(&mut rng_b).unwrap();
        assert_ne!(a, b, "independent streams draw different noise");
        // Unlisted columns are preserved in every draw.
        assert_eq!(
            a.categorical_column("label").unwrap(),
            t.categorical_column("label").unwrap()
        );
        assert_eq!(
            b.numeric_column("y").unwrap(),
            t.numeric_column("y").unwrap()
        );
    }

    #[test]
    fn unperturbed_columns_are_shared_not_copied() {
        // The hot path draws hundreds of perturbed copies; columns outside
        // the perturbation set must ride along by reference count, not by
        // deep copy.
        let t = table();
        let perturber = TablePerturber::fit(&t, &["x"], 0.1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let draw = perturber.perturb(&mut rng).unwrap();
        for kept in ["y", "label"] {
            assert!(
                Arc::ptr_eq(
                    t.shared_column(kept).unwrap(),
                    draw.shared_column(kept).unwrap()
                ),
                "column `{kept}` must be Arc-shared into the draw"
            );
        }
        assert!(!Arc::ptr_eq(
            t.shared_column("x").unwrap(),
            draw.shared_column("x").unwrap()
        ));
    }

    #[test]
    fn weight_perturbation_stays_close() {
        let f = ScoringFunction::from_pairs([("a", 1.0), ("b", 2.0)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = perturb_weights(&f, 0.1, &mut rng).unwrap();
        for (orig, new) in f.weights().iter().zip(g.weights().iter()) {
            assert_eq!(orig.attribute, new.attribute);
            assert!((new.weight - orig.weight).abs() <= orig.weight.abs() * 0.1 + 1e-12);
        }
    }

    #[test]
    fn weight_perturbation_zero_noise_is_identity() {
        let f = ScoringFunction::from_pairs([("a", 0.4), ("b", 0.6)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = perturb_weights(&f, 0.0, &mut rng).unwrap();
        assert_eq!(f.weights(), g.weights());
    }

    #[test]
    fn gaussian_samples_have_roughly_standard_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = rf_stats::mean(&samples).unwrap();
        let sd = rf_stats::stddev(&samples).unwrap();
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.03, "sd {sd}");
    }
}
