//! The [`Ranking`] type: items ordered by score.
//!
//! A ranking pairs each original row index with its score and its rank
//! (1-based, rank 1 = best).  The nutritional label repeatedly contrasts
//! "the top-10 and over-all" views of the same ranking; [`Ranking::top_k`]
//! and [`Ranking::order`] provide those slices.

use crate::error::{RankingError, RankingResult};

/// One item of a ranking.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankedItem {
    /// 1-based rank (1 is the best).
    pub rank: usize,
    /// Index of the item's row in the original table.
    pub index: usize,
    /// The item's score.
    pub score: f64,
}

/// A complete ranking of `n` items: a permutation of row indices ordered by
/// non-increasing score.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ranking {
    items: Vec<RankedItem>,
}

impl Ranking {
    /// Builds a ranking from per-row scores: highest score first, ties broken
    /// by original row order (stable).
    ///
    /// # Errors
    /// Returns an error when `scores` is empty or contains non-finite values.
    pub fn from_scores(scores: &[f64]) -> RankingResult<Self> {
        if scores.is_empty() {
            return Err(RankingError::EmptyRanking);
        }
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(RankingError::Stats(rf_stats::StatsError::NonFiniteInput {
                operation: "Ranking::from_scores",
            }));
        }
        let mut indices: Vec<usize> = (0..scores.len()).collect();
        indices.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let items = indices
            .into_iter()
            .enumerate()
            .map(|(pos, index)| RankedItem {
                rank: pos + 1,
                index,
                score: scores[index],
            })
            .collect();
        Ok(Ranking { items })
    }

    /// Builds a ranking directly from an ordering of row indices (best first),
    /// assigning synthetic scores `n, n-1, ..., 1`.  Used when only the order
    /// is known (e.g. a ranking imported from an external source).
    ///
    /// # Errors
    /// Returns an error when `order` is empty or is not a permutation of
    /// `0..order.len()`.
    pub fn from_order(order: &[usize]) -> RankingResult<Self> {
        if order.is_empty() {
            return Err(RankingError::EmptyRanking);
        }
        let n = order.len();
        let mut seen = vec![false; n];
        for &idx in order {
            if idx >= n || seen[idx] {
                return Err(RankingError::IncomparableRankings {
                    message: format!(
                        "order is not a permutation of 0..{n} (offending index {idx})"
                    ),
                });
            }
            seen[idx] = true;
        }
        let items = order
            .iter()
            .enumerate()
            .map(|(pos, &index)| RankedItem {
                rank: pos + 1,
                index,
                score: (n - pos) as f64,
            })
            .collect();
        Ok(Ranking { items })
    }

    /// Number of ranked items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the ranking has no items (construction prevents this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items in rank order (best first).
    #[must_use]
    pub fn items(&self) -> &[RankedItem] {
        &self.items
    }

    /// Original row indices in rank order (best first).
    #[must_use]
    pub fn order(&self) -> Vec<usize> {
        self.items.iter().map(|item| item.index).collect()
    }

    /// Scores in rank order (non-increasing).
    #[must_use]
    pub fn scores_in_rank_order(&self) -> Vec<f64> {
        self.items.iter().map(|item| item.score).collect()
    }

    /// The first `k` items (or all items when `k >= len()`).
    #[must_use]
    pub fn top_k(&self, k: usize) -> &[RankedItem] {
        &self.items[..k.min(self.items.len())]
    }

    /// Row indices of the top-k items.
    #[must_use]
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        self.top_k(k).iter().map(|item| item.index).collect()
    }

    /// The rank (1-based) of the item whose original row index is `index`,
    /// or `None` when the index is not part of the ranking.
    #[must_use]
    pub fn rank_of(&self, index: usize) -> Option<usize> {
        self.items
            .iter()
            .find(|item| item.index == index)
            .map(|item| item.rank)
    }

    /// Rank vector indexed by original row index: `rank_vector()[i]` is the
    /// rank of row `i`.
    #[must_use]
    pub fn rank_vector(&self) -> Vec<usize> {
        let mut ranks = vec![0; self.items.len()];
        for item in &self.items {
            ranks[item.index] = item.rank;
        }
        ranks
    }

    /// Score vector indexed by original row index.
    #[must_use]
    pub fn score_vector(&self) -> Vec<f64> {
        let mut scores = vec![0.0; self.items.len()];
        for item in &self.items {
            scores[item.index] = item.score;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_orders_descending() {
        let r = Ranking::from_scores(&[0.2, 0.9, 0.5]).unwrap();
        assert_eq!(r.order(), vec![1, 2, 0]);
        assert_eq!(r.items()[0].rank, 1);
        assert_eq!(r.items()[0].score, 0.9);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_scores_ties_are_stable() {
        let r = Ranking::from_scores(&[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(r.order(), vec![0, 1, 2]);
    }

    #[test]
    fn from_scores_rejects_empty_and_nan() {
        assert!(matches!(
            Ranking::from_scores(&[]),
            Err(RankingError::EmptyRanking)
        ));
        assert!(Ranking::from_scores(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn from_order_roundtrip() {
        let r = Ranking::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(r.order(), vec![2, 0, 1]);
        assert_eq!(r.rank_of(2), Some(1));
        assert_eq!(r.rank_of(1), Some(3));
        // Synthetic scores are strictly decreasing.
        let scores = r.scores_in_rank_order();
        assert!(scores.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn from_order_rejects_non_permutation() {
        assert!(Ranking::from_order(&[]).is_err());
        assert!(Ranking::from_order(&[0, 0]).is_err());
        assert!(Ranking::from_order(&[0, 5]).is_err());
    }

    #[test]
    fn top_k_slicing() {
        let r = Ranking::from_scores(&[0.1, 0.4, 0.3, 0.2]).unwrap();
        assert_eq!(r.top_k(2).len(), 2);
        assert_eq!(r.top_k_indices(2), vec![1, 2]);
        // k larger than n returns everything.
        assert_eq!(r.top_k(10).len(), 4);
    }

    #[test]
    fn rank_and_score_vectors() {
        let r = Ranking::from_scores(&[0.1, 0.4, 0.3]).unwrap();
        assert_eq!(r.rank_vector(), vec![3, 1, 2]);
        let sv = r.score_vector();
        assert_eq!(sv, vec![0.1, 0.4, 0.3]);
        assert_eq!(r.rank_of(99), None);
    }

    #[test]
    fn scores_in_rank_order_non_increasing() {
        let r = Ranking::from_scores(&[0.3, 0.1, 0.9, 0.9, 0.2]).unwrap();
        let s = r.scores_in_rank_order();
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }
}
