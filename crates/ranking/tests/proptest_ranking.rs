//! Property-based tests for the ranking engine.

use proptest::prelude::*;
use rf_ranking::{footrule_distance, kendall_tau_rankings, Ranking, ScoringFunction, TrialKernel};
use rf_table::{Column, NormalizationMethod, Table};

fn scores_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3..1.0e3f64, 1..64)
}

proptest! {
    #[test]
    fn ranking_is_a_permutation(scores in scores_vec()) {
        let r = Ranking::from_scores(&scores).unwrap();
        let mut order = r.order();
        order.sort_unstable();
        let expected: Vec<usize> = (0..scores.len()).collect();
        prop_assert_eq!(order, expected);
    }

    #[test]
    fn ranking_scores_non_increasing(scores in scores_vec()) {
        let r = Ranking::from_scores(&scores).unwrap();
        let s = r.scores_in_rank_order();
        for w in s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_vector_inverts_order(scores in scores_vec()) {
        let r = Ranking::from_scores(&scores).unwrap();
        let ranks = r.rank_vector();
        let order = r.order();
        for (pos, &idx) in order.iter().enumerate() {
            prop_assert_eq!(ranks[idx], pos + 1);
        }
    }

    #[test]
    fn top_k_is_prefix_of_order(scores in scores_vec(), k in 0usize..80) {
        let r = Ranking::from_scores(&scores).unwrap();
        let top = r.top_k_indices(k);
        let order = r.order();
        prop_assert_eq!(top.len(), k.min(scores.len()));
        prop_assert_eq!(&order[..top.len()], top.as_slice());
    }

    #[test]
    fn kendall_tau_of_self_is_one(order in prop::collection::vec(0usize..100, 2..40)) {
        // Turn the arbitrary vector into a permutation by ranking positions.
        let scores: Vec<f64> = order.iter().map(|&v| v as f64).collect();
        let r = Ranking::from_scores(&scores).unwrap();
        // Ties are possible; tau of a ranking with itself is 1 when not all tied.
        if scores.iter().any(|&s| s != scores[0]) {
            let tau = kendall_tau_rankings(&r, &r).unwrap();
            prop_assert!((tau - 1.0).abs() < 1e-9);
            let (d, dn) = footrule_distance(&r, &r).unwrap();
            prop_assert_eq!(d, 0.0);
            prop_assert_eq!(dn, 0.0);
        }
    }

    #[test]
    fn footrule_normalized_bounded(a in prop::collection::vec(-100.0..100.0f64, 2..40)) {
        let ra = Ranking::from_scores(&a).unwrap();
        let reversed: Vec<f64> = a.iter().map(|v| -v).collect();
        let rb = Ranking::from_scores(&reversed).unwrap();
        let (_, norm) = footrule_distance(&ra, &rb).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&norm));
    }

    #[test]
    fn scoring_function_positive_monotone_in_single_attribute(
        values in prop::collection::vec(0.0..1.0e4f64, 2..64),
    ) {
        // With a single positively-weighted attribute, a larger raw value can
        // never receive a worse (larger) rank.
        prop_assume!(values.iter().any(|v| (v - values[0]).abs() > 1e-9));
        let table = Table::from_columns(vec![("x", Column::from_f64(values.clone()))]).unwrap();
        let f = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = f.rank_table(&table).unwrap();
        let ranks = ranking.rank_vector();
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(ranks[i] < ranks[j],
                        "value {} (rank {}) vs {} (rank {})", values[i], ranks[i], values[j], ranks[j]);
                }
            }
        }
    }

    #[test]
    fn scoring_is_invariant_to_affine_attribute_transforms(
        values in prop::collection::vec(0.0..1.0e3f64, 3..48),
        scale in 0.1..10.0f64,
        shift in -100.0..100.0f64,
    ) {
        // Min-max normalization makes the ranking invariant under positive
        // affine transformations of an attribute.
        prop_assume!(values.iter().any(|v| (v - values[0]).abs() > 1e-6));
        let t1 = Table::from_columns(vec![("x", Column::from_f64(values.clone()))]).unwrap();
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let t2 = Table::from_columns(vec![("x", Column::from_f64(transformed))]).unwrap();
        let f = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let r1 = f.rank_table(&t1).unwrap();
        let r2 = f.rank_table(&t2).unwrap();
        prop_assert_eq!(r1.order(), r2.order());
    }

    #[test]
    fn relaxed_fp_trial_scores_within_epsilon_of_exact(
        values in prop::collection::vec(-1.0e3..1.0e3f64, 8..512),
        seed in 0u64..1_000_000,
        method_pick in 0usize..3,
    ) {
        // The relaxed-fp kernel draws the same noise from the same RNG
        // stream as the exact kernel and only reassociates reductions and
        // division strength; per-row trial scores must stay within 1e-9
        // relative error for any data, seed, and normalization.
        prop_assume!(values.iter().any(|v| (v - values[0]).abs() > 1e-6));
        let method = [
            NormalizationMethod::None,
            NormalizationMethod::MinMax,
            NormalizationMethod::ZScore,
        ][method_pick];
        let linear: Vec<f64> = (0..values.len()).map(|i| i as f64 * 0.5).collect();
        let table = Table::from_columns(vec![
            ("x", Column::from_f64(values)),
            ("y", Column::from_f64(linear)),
        ])
        .unwrap();
        let scoring = ScoringFunction::with_normalization(
            vec![
                rf_ranking::AttributeWeight::new("x", 0.7),
                rf_ranking::AttributeWeight::new("y", 0.3),
            ],
            method,
        )
        .unwrap();
        let mut scores = Vec::new();
        for relaxed in [false, true] {
            let kernel = TrialKernel::fit(&table, &scoring, 0.05, 0.05)
                .unwrap()
                .with_relaxed_fp(relaxed);
            let mut scratch = kernel.scratch();
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
            kernel.rank_trial(&mut rng, &mut scratch).unwrap();
            scores.push(scratch.scores().to_vec());
        }
        for (row, (&exact, &relaxed)) in scores[0].iter().zip(&scores[1]).enumerate() {
            let tolerance = 1e-9 * exact.abs().max(1.0);
            prop_assert!(
                (exact - relaxed).abs() <= tolerance,
                "row {}: exact {} vs relaxed {}", row, exact, relaxed
            );
        }
    }
}
