//! CSV reading and writing with type inference.
//!
//! Ranking Facts lets demo users "upload one of their own (as a fully
//! populated table in CSV format)" (§3).  This module implements a small,
//! standards-respecting CSV layer: RFC-4180-style quoting, configurable
//! delimiter, optional header row, empty-cell-as-null semantics, and
//! column type inference (bool → int → float → string).

use crate::column::{Column, Value};
use crate::error::{TableError, TableResult};
use crate::table::Table;

/// Options controlling CSV parsing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CsvOptions {
    /// Field delimiter, usually `,`.
    pub delimiter: char,
    /// Whether the first record holds column names.
    pub has_header: bool,
    /// Strings treated as missing values (in addition to the empty string).
    pub null_markers: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            null_markers: vec!["NA".to_string(), "null".to_string(), "NaN".to_string()],
        }
    }
}

/// Parses CSV text into a [`Table`], inferring a type for each column.
///
/// Type inference considers all non-null values of a column and picks the
/// narrowest type that fits every one of them, in the order
/// bool → int → float → string.
///
/// # Errors
/// Returns [`TableError::CsvParse`] for structural problems (unterminated
/// quotes, ragged rows) and [`TableError::Empty`] for input with no data rows.
pub fn read_csv_str(input: &str, options: &CsvOptions) -> TableResult<Table> {
    let records = parse_records(input, options.delimiter)?;
    if records.is_empty() {
        return Err(TableError::Empty {
            operation: "read_csv_str",
        });
    }

    let (header, data_start) = if options.has_header {
        (records[0].clone(), 1)
    } else {
        (
            (0..records[0].len())
                .map(|i| format!("column_{i}"))
                .collect(),
            0,
        )
    };
    let data = &records[data_start..];
    if data.is_empty() {
        return Err(TableError::Empty {
            operation: "read_csv_str",
        });
    }

    let width = header.len();
    for (i, rec) in data.iter().enumerate() {
        if rec.len() != width {
            return Err(TableError::CsvParse {
                line: data_start + i + 1,
                message: format!(
                    "expected {width} fields but found {} (ragged row)",
                    rec.len()
                ),
            });
        }
    }

    let mut table = Table::new();
    for (col_idx, name) in header.iter().enumerate() {
        let raw: Vec<&str> = data.iter().map(|rec| rec[col_idx].as_str()).collect();
        let column = infer_column(&raw, &options.null_markers);
        table.add_column(name.clone(), column)?;
    }
    Ok(table)
}

/// Serializes a table to CSV text (always with a header row; RFC-4180 quoting
/// applied where needed).  Missing values are written as empty fields.
#[must_use]
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(
        &names
            .iter()
            .map(|n| escape_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in 0..table.num_rows() {
        let cells: Vec<String> = table
            .columns()
            .iter()
            .map(|c| escape_field(&c.value(row).unwrap_or(Value::Null).to_display()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Quotes a field when it contains the delimiter, quotes or newlines.
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits CSV text into records of fields, honouring quoted fields that may
/// contain delimiters, escaped quotes (`""`) and embedded newlines.
fn parse_records(input: &str, delimiter: char) -> TableResult<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    let mut any_char_in_record = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any_char_in_record = true;
            }
            '\r' => {
                // Swallow CR; the following LF (if any) terminates the record.
            }
            '\n' => {
                line += 1;
                if any_char_in_record || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                any_char_in_record = false;
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                any_char_in_record = true;
            }
            other => {
                field.push(other);
                any_char_in_record = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::CsvParse {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    if any_char_in_record || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infers the narrowest column type that fits every non-null raw value and
/// builds the column.
fn infer_column(raw: &[&str], null_markers: &[String]) -> Column {
    let is_null = |s: &str| s.is_empty() || null_markers.iter().any(|m| m == s);

    let non_null: Vec<&str> = raw.iter().copied().filter(|s| !is_null(s)).collect();
    let all_bool = !non_null.is_empty() && non_null.iter().all(|s| parse_bool(s).is_some());
    let all_int = !non_null.is_empty() && non_null.iter().all(|s| s.parse::<i64>().is_ok());
    let all_float = !non_null.is_empty()
        && non_null
            .iter()
            .all(|s| s.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false));

    if all_bool {
        Column::Bool(
            raw.iter()
                .map(|s| if is_null(s) { None } else { parse_bool(s) })
                .collect(),
        )
    } else if all_int {
        Column::Int(
            raw.iter()
                .map(|s| if is_null(s) { None } else { s.parse().ok() })
                .collect(),
        )
    } else if all_float {
        Column::Float(
            raw.iter()
                .map(|s| if is_null(s) { None } else { s.parse().ok() })
                .collect(),
        )
    } else {
        Column::Str(
            raw.iter()
                .map(|s| {
                    if is_null(s) {
                        None
                    } else {
                        Some((*s).to_string())
                    }
                })
                .collect(),
        )
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.to_ascii_lowercase().as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn parses_simple_csv_with_header() {
        let csv = "name,pubs,large\nMIT,9.5,true\nCMU,8.7,true\nPodunk,0.3,false\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(
            t.schema().field("pubs").unwrap().column_type,
            ColumnType::Float
        );
        assert_eq!(
            t.schema().field("large").unwrap().column_type,
            ColumnType::Bool
        );
        assert_eq!(
            t.schema().field("name").unwrap().column_type,
            ColumnType::Str
        );
        assert_eq!(t.numeric_column("pubs").unwrap(), vec![9.5, 8.7, 0.3]);
    }

    #[test]
    fn integer_columns_are_inferred() {
        let csv = "id,count\n1,10\n2,20\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(
            t.schema().field("count").unwrap().column_type,
            ColumnType::Int
        );
    }

    #[test]
    fn mixed_int_float_becomes_float() {
        let csv = "x\n1\n2.5\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(
            t.schema().field("x").unwrap().column_type,
            ColumnType::Float
        );
    }

    #[test]
    fn empty_cells_become_nulls() {
        let csv = "a,b\n1,\n,2\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.column("a").unwrap().null_count(), 1);
        assert_eq!(t.column("b").unwrap().null_count(), 1);
    }

    #[test]
    fn null_markers_recognized() {
        let csv = "a\n1\nNA\n3\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.column("a").unwrap().null_count(), 1);
        assert_eq!(t.schema().field("a").unwrap().column_type, ColumnType::Int);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name,motto\nA,\"hello, world\"\nB,\"say \"\"hi\"\"\"\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        let col = t.categorical_column("motto").unwrap();
        assert_eq!(col[0].as_deref(), Some("hello, world"));
        assert_eq!(col[1].as_deref(), Some("say \"hi\""));
    }

    #[test]
    fn quoted_field_with_newline() {
        let csv = "name,notes\nA,\"line1\nline2\"\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
        let col = t.categorical_column("notes").unwrap();
        assert_eq!(col[0].as_deref(), Some("line1\nline2"));
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.numeric_column("b").unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "a\n\"oops\n";
        assert!(matches!(
            read_csv_str(csv, &CsvOptions::default()),
            Err(TableError::CsvParse { .. })
        ));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv_str(csv, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::CsvParse { line: 3, .. }));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(
            read_csv_str("", &CsvOptions::default()),
            Err(TableError::Empty { .. })
        ));
        assert!(matches!(
            read_csv_str("a,b\n", &CsvOptions::default()),
            Err(TableError::Empty { .. })
        ));
    }

    #[test]
    fn headerless_mode_generates_names() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["column_0", "column_1"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn alternative_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_csv_str("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(t.numeric_column("b").unwrap(), vec![2.0]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let csv = "name,pubs,large\nMIT,9.5,true\n\"Quoted, name\",8.7,false\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        let written = write_csv_string(&t);
        let t2 = read_csv_str(&written, &CsvOptions::default()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn write_preserves_nulls_as_empty() {
        let csv = "a,b\n1,\n2,x\n";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        let written = write_csv_string(&t);
        assert!(written.contains("1,\n"));
    }

    #[test]
    fn missing_final_newline_is_fine() {
        let csv = "a,b\n1,2\n3,4";
        let t = read_csv_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
