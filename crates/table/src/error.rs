//! Error type for table operations.

use std::fmt;

/// Result alias used throughout `rf-table`.
pub type TableResult<T> = Result<T, TableError>;

/// Errors produced by table construction, access, CSV parsing and
/// normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column referenced by name does not exist in the schema.
    UnknownColumn {
        /// Name of the missing column.
        name: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row index.
        index: usize,
        /// Number of rows in the table.
        rows: usize,
    },
    /// Columns of differing lengths were combined into one table.
    ColumnLengthMismatch {
        /// Name of the offending column.
        name: String,
        /// Its length.
        len: usize,
        /// Expected length.
        expected: usize,
    },
    /// A column with this name already exists.
    DuplicateColumn {
        /// Name of the duplicated column.
        name: String,
    },
    /// The operation needs a numeric column but the column has another type.
    TypeMismatch {
        /// Column name.
        name: String,
        /// Expected type description.
        expected: &'static str,
        /// Actual type description.
        actual: &'static str,
    },
    /// A CSV document could not be parsed.
    CsvParse {
        /// 1-based line number where the problem was found.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The table (or a required column) is empty.
    Empty {
        /// Name of the operation that failed.
        operation: &'static str,
    },
    /// A value required by the operation was null/missing.
    NullValue {
        /// Column name.
        column: String,
        /// Row index.
        row: usize,
    },
    /// An underlying statistical routine failed.
    Stats(rf_stats::StatsError),
    /// Normalization failed (e.g. constant column under min-max scaling).
    Normalization {
        /// Column name.
        column: String,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            TableError::RowOutOfBounds { index, rows } => {
                write!(f, "row index {index} out of bounds (table has {rows} rows)")
            }
            TableError::ColumnLengthMismatch {
                name,
                len,
                expected,
            } => write!(
                f,
                "column `{name}` has {len} values but the table has {expected} rows"
            ),
            TableError::DuplicateColumn { name } => {
                write!(f, "a column named `{name}` already exists")
            }
            TableError::TypeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "column `{name}` has type {actual}, but {expected} is required"
            ),
            TableError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            TableError::Empty { operation } => write!(f, "{operation}: table is empty"),
            TableError::NullValue { column, row } => {
                write!(f, "column `{column}` has a missing value at row {row}")
            }
            TableError::Stats(err) => write!(f, "statistics error: {err}"),
            TableError::Normalization { column, message } => {
                write!(f, "cannot normalize column `{column}`: {message}")
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_stats::StatsError> for TableError {
    fn from(err: rf_stats::StatsError) -> Self {
        TableError::Stats(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let err = TableError::UnknownColumn {
            name: "GRE".to_string(),
        };
        assert!(err.to_string().contains("GRE"));
    }

    #[test]
    fn display_csv_parse_includes_line() {
        let err = TableError::CsvParse {
            line: 17,
            message: "unterminated quote".to_string(),
        };
        assert!(err.to_string().contains("17"));
        assert!(err.to_string().contains("unterminated quote"));
    }

    #[test]
    fn stats_error_converts() {
        let inner = rf_stats::StatsError::EmptyInput { operation: "mean" };
        let err: TableError = inner.clone().into();
        assert_eq!(err, TableError::Stats(inner));
    }

    #[test]
    fn source_of_stats_error_is_inner() {
        use std::error::Error;
        let err = TableError::Stats(rf_stats::StatsError::EmptyInput { operation: "mean" });
        assert!(err.source().is_some());
        let err = TableError::Empty { operation: "sort" };
        assert!(err.source().is_none());
    }
}
