//! Column types, fields and table schemas.
//!
//! Ranking Facts distinguishes two roles for attributes: **numerical**
//! attributes can be selected for the scoring function, while **categorical**
//! attributes can be selected as sensitive attributes (fairness) or diversity
//! dimensions.  The schema records the storage type of each column; the role
//! classification ([`ColumnType::is_numeric`] / [`ColumnType::is_categorical`])
//! is derived from it.

use std::fmt;

/// Storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ColumnType {
    /// 64-bit floating point values.
    Float,
    /// 64-bit signed integers.
    Int,
    /// UTF-8 strings (categorical attributes, identifiers).
    Str,
    /// Booleans (binary categorical attributes).
    Bool,
}

impl ColumnType {
    /// `true` for types that can participate in a scoring function.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Float | ColumnType::Int)
    }

    /// `true` for types that can serve as sensitive/diversity attributes.
    ///
    /// Integers are deliberately *not* categorical by default; the paper's
    /// design view asks the user to pick a categorical attribute, and the CS
    /// departments dataset encodes its binary sensitive attribute
    /// (`DeptSizeBin`) as a string.
    #[must_use]
    pub fn is_categorical(self) -> bool {
        matches!(self, ColumnType::Str | ColumnType::Bool)
    }

    /// Short lower-case name used in error messages and rendered schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Float => "float",
            ColumnType::Int => "int",
            ColumnType::Str => "str",
            ColumnType::Bool => "bool",
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Field {
    /// Column name as it appears in the CSV header and in widgets.
    pub name: String,
    /// Storage type.
    pub column_type: ColumnType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        Field {
            name: name.into(),
            column_type,
        }
    }
}

/// An ordered collection of [`Field`]s describing a table.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Creates an empty schema.
    #[must_use]
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// All fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column with the given name, if any.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field with the given name, if any.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// `true` when a column with this name exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Names of all columns, in order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Names of the numeric columns, in order.
    #[must_use]
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.column_type.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of the categorical columns, in order.
    #[must_use]
    pub fn categorical_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.column_type.is_categorical())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Appends a field. Internal helper used by [`crate::Table`].
    pub(crate) fn push(&mut self, field: Field) {
        self.fields.push(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("PubCount", ColumnType::Float),
            Field::new("Faculty", ColumnType::Int),
            Field::new("Region", ColumnType::Str),
            Field::new("Large", ColumnType::Bool),
        ])
    }

    #[test]
    fn column_type_roles() {
        assert!(ColumnType::Float.is_numeric());
        assert!(ColumnType::Int.is_numeric());
        assert!(!ColumnType::Str.is_numeric());
        assert!(ColumnType::Str.is_categorical());
        assert!(ColumnType::Bool.is_categorical());
        assert!(!ColumnType::Float.is_categorical());
        assert!(!ColumnType::Int.is_categorical());
    }

    #[test]
    fn column_type_display() {
        assert_eq!(ColumnType::Float.to_string(), "float");
        assert_eq!(ColumnType::Bool.to_string(), "bool");
    }

    #[test]
    fn schema_lookup() {
        let s = sample_schema();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("Faculty"), Some(1));
        assert_eq!(s.index_of("Missing"), None);
        assert!(s.contains("Region"));
        assert_eq!(s.field("Region").unwrap().column_type, ColumnType::Str);
    }

    #[test]
    fn schema_names_by_role() {
        let s = sample_schema();
        assert_eq!(s.names(), vec!["PubCount", "Faculty", "Region", "Large"]);
        assert_eq!(s.numeric_names(), vec!["PubCount", "Faculty"]);
        assert_eq!(s.categorical_names(), vec!["Region", "Large"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.names().is_empty());
    }
}
