//! Attribute normalization and standardization.
//!
//! Figure 3 of the paper shows a checkbox that lets the user "decide whether
//! to work with raw data or to normalize and standardize the attributes"
//! before they are combined by the scoring function.  This module implements
//! the three policies the design view offers:
//!
//! * [`NormalizationMethod::None`] — raw values.
//! * [`NormalizationMethod::MinMax`] — rescale to `[0, 1]`.
//! * [`NormalizationMethod::ZScore`] — centre to zero mean, unit variance.
//!
//! A fitted [`Normalizer`] remembers the per-column parameters so that the
//! same transformation can be re-applied (e.g. to the top-k slice, or to
//! perturbed copies of the data used by the stability estimator).

use crate::error::{TableError, TableResult};
use crate::table::Table;

/// The normalization policy applied to scoring attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum NormalizationMethod {
    /// Use raw attribute values.
    None,
    /// Min-max rescaling to `[0, 1]` (the paper's default when the
    /// "normalize" checkbox is ticked).
    #[default]
    MinMax,
    /// Z-score standardization (zero mean, unit standard deviation).
    ZScore,
}

impl NormalizationMethod {
    /// Human-readable name used by the Recipe widget.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NormalizationMethod::None => "raw",
            NormalizationMethod::MinMax => "min-max [0, 1]",
            NormalizationMethod::ZScore => "z-score",
        }
    }
}

/// Per-column parameters of a fitted normalization.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct ColumnParams {
    name: String,
    /// For min-max: (min, max). For z-score: (mean, stddev). For none: (0, 1).
    a: f64,
    b: f64,
}

/// A fitted normalizer for a set of numeric columns.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Normalizer {
    method: NormalizationMethod,
    params: Vec<ColumnParams>,
}

impl Normalizer {
    /// Fits normalization parameters for `columns` of `table`, ignoring
    /// missing values.
    ///
    /// # Errors
    /// Unknown/non-numeric columns; a column whose values are all missing; a
    /// constant column under min-max or z-score (its spread is zero, so the
    /// transformation is undefined — the paper's tool silently maps these to
    /// 0, but surfacing the problem is more honest and is what we do).
    pub fn fit(table: &Table, columns: &[&str], method: NormalizationMethod) -> TableResult<Self> {
        let mut params = Vec::with_capacity(columns.len());
        for &name in columns {
            let values = table.numeric_column(name)?;
            if values.is_empty() {
                return Err(TableError::Normalization {
                    column: name.to_string(),
                    message: "column has no non-missing values".to_string(),
                });
            }
            let (a, b) = match method {
                NormalizationMethod::None => (0.0, 1.0),
                NormalizationMethod::MinMax => {
                    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    if (hi - lo).abs() < f64::EPSILON {
                        return Err(TableError::Normalization {
                            column: name.to_string(),
                            message: "column is constant; min-max scaling is undefined".to_string(),
                        });
                    }
                    (lo, hi)
                }
                NormalizationMethod::ZScore => {
                    let mean = rf_stats::mean(&values)?;
                    let sd = if values.len() >= 2 {
                        rf_stats::stddev(&values)?
                    } else {
                        0.0
                    };
                    if sd < f64::EPSILON {
                        return Err(TableError::Normalization {
                            column: name.to_string(),
                            message: "column has zero variance; z-score is undefined".to_string(),
                        });
                    }
                    (mean, sd)
                }
            };
            params.push(ColumnParams {
                name: name.to_string(),
                a,
                b,
            });
        }
        Ok(Normalizer { method, params })
    }

    /// The method this normalizer was fitted with.
    #[must_use]
    pub fn method(&self) -> NormalizationMethod {
        self.method
    }

    /// The columns this normalizer knows how to transform.
    #[must_use]
    pub fn columns(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// Transforms a single value of the named column.
    ///
    /// # Errors
    /// [`TableError::UnknownColumn`] when the column was not part of the fit.
    pub fn transform_value(&self, column: &str, value: f64) -> TableResult<f64> {
        let p = self
            .params
            .iter()
            .find(|p| p.name == column)
            .ok_or_else(|| TableError::UnknownColumn {
                name: column.to_string(),
            })?;
        Ok(match self.method {
            NormalizationMethod::None => value,
            NormalizationMethod::MinMax => (value - p.a) / (p.b - p.a),
            NormalizationMethod::ZScore => (value - p.a) / p.b,
        })
    }

    /// Returns a new table in which every fitted column has been replaced by
    /// its normalized version (missing values stay missing; other columns are
    /// untouched).
    ///
    /// # Errors
    /// Propagates column access errors (the table must still contain every
    /// fitted column with a numeric type).
    pub fn transform_table(&self, table: &Table) -> TableResult<Table> {
        let mut out = Table::new();
        for field in table.schema().fields() {
            let name = field.name.as_str();
            let col = table.column(name)?;
            if self.params.iter().any(|p| p.name == name) {
                let options = col.numeric_options(name)?;
                let transformed: Vec<Option<f64>> = options
                    .into_iter()
                    .map(|opt| opt.map(|v| self.transform_value(name, v).expect("fitted column")))
                    .collect();
                out.add_column(name, crate::column::Column::Float(transformed))?;
            } else {
                out.add_column(name, col.clone())?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            ("a", Column::from_f64(vec![0.0, 5.0, 10.0])),
            ("b", Column::from_i64(vec![2, 4, 6])),
            ("c", Column::from_strings(["x", "y", "z"])),
            ("constant", Column::from_f64(vec![3.0, 3.0, 3.0])),
            ("sparse", Column::Float(vec![Some(1.0), None, Some(3.0)])),
        ])
        .unwrap()
    }

    #[test]
    fn method_names() {
        assert_eq!(NormalizationMethod::None.as_str(), "raw");
        assert_eq!(NormalizationMethod::MinMax.as_str(), "min-max [0, 1]");
        assert_eq!(NormalizationMethod::ZScore.as_str(), "z-score");
        assert_eq!(NormalizationMethod::default(), NormalizationMethod::MinMax);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let t = table();
        let norm = Normalizer::fit(&t, &["a"], NormalizationMethod::MinMax).unwrap();
        assert_eq!(norm.transform_value("a", 0.0).unwrap(), 0.0);
        assert_eq!(norm.transform_value("a", 10.0).unwrap(), 1.0);
        assert_eq!(norm.transform_value("a", 5.0).unwrap(), 0.5);
    }

    #[test]
    fn zscore_centres_and_scales() {
        let t = table();
        let norm = Normalizer::fit(&t, &["a"], NormalizationMethod::ZScore).unwrap();
        let transformed = norm.transform_value("a", 5.0).unwrap();
        assert!((transformed - 0.0).abs() < 1e-12);
        // One standard deviation above the mean maps to 1.0.
        let sd = rf_stats::stddev(&[0.0, 5.0, 10.0]).unwrap();
        assert!((norm.transform_value("a", 5.0 + sd).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn none_is_identity() {
        let t = table();
        let norm = Normalizer::fit(&t, &["a", "b"], NormalizationMethod::None).unwrap();
        assert_eq!(norm.transform_value("a", 7.3).unwrap(), 7.3);
        assert_eq!(norm.transform_value("b", -2.0).unwrap(), -2.0);
    }

    #[test]
    fn constant_column_rejected_for_scaling() {
        let t = table();
        assert!(matches!(
            Normalizer::fit(&t, &["constant"], NormalizationMethod::MinMax),
            Err(TableError::Normalization { .. })
        ));
        assert!(matches!(
            Normalizer::fit(&t, &["constant"], NormalizationMethod::ZScore),
            Err(TableError::Normalization { .. })
        ));
        // Raw mode accepts constants.
        assert!(Normalizer::fit(&t, &["constant"], NormalizationMethod::None).is_ok());
    }

    #[test]
    fn string_column_rejected() {
        let t = table();
        assert!(Normalizer::fit(&t, &["c"], NormalizationMethod::MinMax).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let t = table();
        assert!(Normalizer::fit(&t, &["ghost"], NormalizationMethod::MinMax).is_err());
        let norm = Normalizer::fit(&t, &["a"], NormalizationMethod::MinMax).unwrap();
        assert!(norm.transform_value("ghost", 1.0).is_err());
    }

    #[test]
    fn transform_table_replaces_fitted_columns_only() {
        let t = table();
        let norm = Normalizer::fit(&t, &["a", "b"], NormalizationMethod::MinMax).unwrap();
        let out = norm.transform_table(&t).unwrap();
        assert_eq!(out.numeric_column("a").unwrap(), vec![0.0, 0.5, 1.0]);
        assert_eq!(out.numeric_column("b").unwrap(), vec![0.0, 0.5, 1.0]);
        // Unfitted columns pass through untouched.
        assert_eq!(
            out.categorical_column("c").unwrap(),
            t.categorical_column("c").unwrap()
        );
        assert_eq!(out.numeric_column("constant").unwrap(), vec![3.0; 3]);
    }

    #[test]
    fn transform_table_preserves_nulls() {
        let t = table();
        let norm = Normalizer::fit(&t, &["sparse"], NormalizationMethod::MinMax).unwrap();
        let out = norm.transform_table(&t).unwrap();
        let col = out.numeric_column_options("sparse").unwrap();
        assert_eq!(col, vec![Some(0.0), None, Some(1.0)]);
    }

    #[test]
    fn fitted_normalizer_applies_to_new_data() {
        // Fit on the full table, apply to the top-k slice: values outside the
        // fitted range extrapolate naturally rather than being re-fitted.
        let t = table();
        let norm = Normalizer::fit(&t, &["a"], NormalizationMethod::MinMax).unwrap();
        let top = t.head(2);
        let out = norm.transform_table(&top).unwrap();
        assert_eq!(out.numeric_column("a").unwrap(), vec![0.0, 0.5]);
    }

    #[test]
    fn columns_listing() {
        let t = table();
        let norm = Normalizer::fit(&t, &["a", "b"], NormalizationMethod::MinMax).unwrap();
        assert_eq!(norm.columns(), vec!["a", "b"]);
        assert_eq!(norm.method(), NormalizationMethod::MinMax);
    }
}
