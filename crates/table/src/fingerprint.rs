//! Stable 64-bit content fingerprinting.
//!
//! Labels are pure functions of `(table, configuration)`, so a cache in front
//! of the label pipeline needs a cheap, stable identity for a table's
//! *content* — not its address.  [`Table::fingerprint`] provides that: an
//! order-sensitive 64-bit hash over the schema (names and types, in column
//! order) and every cell (in column-major order).  Two tables built from the
//! same data — whether constructed in memory, cloned, or re-loaded from the
//! same CSV — fingerprint identically; changing any single cell, renaming a
//! column, or reordering columns changes the fingerprint.
//!
//! The hasher is a hand-rolled FNV-1a over a tagged byte stream (the build
//! environment is offline, so no hashing crate is vendored).  FNV is not
//! cryptographic; the fingerprint guards a cache, not an integrity boundary.

use crate::column::Column;
use crate::table::Table;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over a tagged, length-prefixed byte stream.
///
/// Every variable-length value is written with its length first and every
/// optional value with a presence tag, so distinct value sequences can never
/// collide by concatenation (`"ab" + "c"` hashes differently from
/// `"a" + "bc"`).  `rf-core` reuses this hasher to fingerprint label
/// configurations into cache keys.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fingerprinter {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a single tag byte (used to separate value kinds).
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Absorbs a 64-bit integer (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a signed 64-bit integer.
    pub fn write_i64(&mut self, value: i64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `usize` (hashed as `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write_bytes(value.as_bytes());
    }

    /// Absorbs a float by raw bit pattern, so two values fingerprint
    /// identically exactly when they *render* identically: `-0.0` and `0.0`
    /// compare equal but serialize differently (`"-0.0"` vs `"0"`), so they
    /// must not share a fingerprint — the cache key guards byte-identical
    /// output, and bit identity is the float identity that matches it.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The 64-bit digest of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Cell tags: every cell is written as `tag` (+ value when present), so a
/// null float and a null string in the same position still hash differently
/// through their column-type prefix while nulls within a column are uniform.
const TAG_NULL: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

fn absorb_column(fp: &mut Fingerprinter, column: &Column) {
    match column {
        Column::Float(values) => {
            for value in values {
                match value {
                    Some(v) => {
                        fp.write_u8(TAG_FLOAT);
                        fp.write_f64(*v);
                    }
                    None => fp.write_u8(TAG_NULL),
                }
            }
        }
        Column::Int(values) => {
            for value in values {
                match value {
                    Some(v) => {
                        fp.write_u8(TAG_INT);
                        fp.write_i64(*v);
                    }
                    None => fp.write_u8(TAG_NULL),
                }
            }
        }
        Column::Str(values) => {
            for value in values {
                match value {
                    Some(v) => {
                        fp.write_u8(TAG_STR);
                        fp.write_str(v);
                    }
                    None => fp.write_u8(TAG_NULL),
                }
            }
        }
        Column::Bool(values) => {
            for value in values {
                match value {
                    Some(v) => {
                        fp.write_u8(TAG_BOOL);
                        fp.write_u8(u8::from(*v));
                    }
                    None => fp.write_u8(TAG_NULL),
                }
            }
        }
    }
}

impl Table {
    /// A stable, order-sensitive 64-bit content fingerprint of the table:
    /// schema (column names and types, in order) plus every cell, column by
    /// column.
    ///
    /// The fingerprint depends only on content, so it is identical across
    /// clones and re-loads of the same data, and it changes under any single
    /// cell mutation, column rename, type change, or column/row reordering.
    /// It is the table half of the label cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_usize(self.num_columns());
        fp.write_usize(self.num_rows());
        for field in self.schema().fields() {
            fp.write_str(&field.name);
            fp.write_u8(match field.column_type {
                crate::schema::ColumnType::Float => TAG_FLOAT,
                crate::schema::ColumnType::Int => TAG_INT,
                crate::schema::ColumnType::Str => TAG_STR,
                crate::schema::ColumnType::Bool => TAG_BOOL,
            });
        }
        for column in self.columns() {
            absorb_column(&mut fp, column);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> Table {
        Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c"])),
            ("score", Column::from_f64(vec![1.5, 2.5, 3.5])),
            ("size", Column::from_i64(vec![10, 20, 30])),
            ("flag", Column::from_bools(vec![true, false, true])),
        ])
        .unwrap()
    }

    #[test]
    fn identical_content_identical_fingerprint() {
        assert_eq!(sample().fingerprint(), sample().fingerprint());
        assert_eq!(sample().fingerprint(), sample().clone().fingerprint());
    }

    #[test]
    fn any_cell_mutation_changes_the_fingerprint() {
        let base = sample().fingerprint();
        let mut mutated = Table::from_columns(vec![
            ("name", Column::from_strings(["a", "B", "c"])),
            ("score", Column::from_f64(vec![1.5, 2.5, 3.5])),
            ("size", Column::from_i64(vec![10, 20, 30])),
            ("flag", Column::from_bools(vec![true, false, true])),
        ])
        .unwrap();
        assert_ne!(base, mutated.fingerprint());
        mutated = Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c"])),
            ("score", Column::from_f64(vec![1.5, 2.5, 3.5000001])),
            ("size", Column::from_i64(vec![10, 20, 30])),
            ("flag", Column::from_bools(vec![true, false, true])),
        ])
        .unwrap();
        assert_ne!(base, mutated.fingerprint());
    }

    #[test]
    fn schema_changes_change_the_fingerprint() {
        let base = sample().fingerprint();
        // Rename a column.
        let renamed = Table::from_columns(vec![
            ("label", Column::from_strings(["a", "b", "c"])),
            ("score", Column::from_f64(vec![1.5, 2.5, 3.5])),
            ("size", Column::from_i64(vec![10, 20, 30])),
            ("flag", Column::from_bools(vec![true, false, true])),
        ])
        .unwrap();
        assert_ne!(base, renamed.fingerprint());
        // Reorder columns.
        let reordered = sample().select(&["score", "name", "size", "flag"]).unwrap();
        assert_ne!(base, reordered.fingerprint());
        // Same numbers stored as a different type.
        let retyped = Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c"])),
            ("score", Column::from_f64(vec![1.5, 2.5, 3.5])),
            ("size", Column::from_f64(vec![10.0, 20.0, 30.0])),
            ("flag", Column::from_bools(vec![true, false, true])),
        ])
        .unwrap();
        assert_ne!(base, retyped.fingerprint());
    }

    #[test]
    fn row_order_matters() {
        let t = sample();
        assert_ne!(t.fingerprint(), t.take(&[2, 1, 0]).fingerprint());
    }

    #[test]
    fn null_versus_value_is_distinguished() {
        let with_null =
            Table::from_columns(vec![("x", Column::Float(vec![Some(1.0), None]))]).unwrap();
        let without =
            Table::from_columns(vec![("x", Column::Float(vec![Some(1.0), Some(0.0)]))]).unwrap();
        assert_ne!(with_null.fingerprint(), without.fingerprint());
    }

    #[test]
    fn negative_zero_and_zero_are_distinct() {
        // -0.0 == 0.0 numerically, but they render differently ("-0.0" vs
        // "0"), so content addressing must keep them apart.
        let zero = Table::from_columns(vec![("x", Column::from_f64(vec![0.0]))]).unwrap();
        let neg = Table::from_columns(vec![("x", Column::from_f64(vec![-0.0]))]).unwrap();
        assert_ne!(zero.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn fingerprinter_is_concatenation_safe() {
        let mut a = Fingerprinter::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprinter::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_table_has_a_fingerprint() {
        assert_eq!(Table::new().fingerprint(), Table::new().fingerprint());
        assert_ne!(Table::new().fingerprint(), sample().fingerprint());
    }
}
