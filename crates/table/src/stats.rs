//! Column-level statistics: summaries and histograms.
//!
//! The detailed Recipe and Ingredients widgets show "minimum, maximum and
//! median values at the top-10 and over-all" for each attribute, and the
//! design view (Figure 3) plots attribute histograms.  These helpers bridge
//! [`crate::Table`] columns to the `rf-stats` primitives.

use crate::error::TableResult;
use crate::table::Table;
use rf_stats::{Histogram, Summary};

/// Computes the [`Summary`] (min/max/median/mean/stddev) of a numeric column,
/// ignoring missing values.
///
/// # Errors
/// Unknown column, non-numeric column, or a column with no non-null values.
pub fn column_summary(table: &Table, column: &str) -> TableResult<Summary> {
    let values = table.numeric_column(column)?;
    Ok(Summary::of(&values)?)
}

/// Builds an equi-width [`Histogram`] of a numeric column, ignoring missing
/// values.
///
/// # Errors
/// Unknown column, non-numeric column, empty column, or `bins == 0`.
pub fn column_histogram(table: &Table, column: &str, bins: usize) -> TableResult<Histogram> {
    let values = table.numeric_column(column)?;
    Ok(Histogram::build(&values, bins)?)
}

/// Summaries of several columns at once, in input order.
///
/// # Errors
/// Fails on the first column that cannot be summarized.
pub fn column_summaries(table: &Table, columns: &[&str]) -> TableResult<Vec<(String, Summary)>> {
    columns
        .iter()
        .map(|&c| column_summary(table, c).map(|s| (c.to_string(), s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            ("score", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ("count", Column::from_i64(vec![10, 20, 30, 40, 50])),
            ("label", Column::from_strings(["a", "b", "c", "d", "e"])),
            (
                "sparse",
                Column::Float(vec![Some(1.0), None, Some(3.0), None, Some(5.0)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn summary_of_float_column() {
        let s = column_summary(&table(), "score").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_of_int_column() {
        let s = column_summary(&table(), "count").unwrap();
        assert_eq!(s.mean, 30.0);
    }

    #[test]
    fn summary_ignores_nulls() {
        let s = column_summary(&table(), "sparse").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_of_string_column_is_error() {
        assert!(column_summary(&table(), "label").is_err());
    }

    #[test]
    fn summary_of_missing_column_is_error() {
        assert!(column_summary(&table(), "ghost").is_err());
    }

    #[test]
    fn histogram_of_column() {
        let h = column_histogram(&table(), "score", 4).unwrap();
        assert_eq!(h.total, 5);
        assert_eq!(h.bins(), 4);
    }

    #[test]
    fn histogram_rejects_zero_bins() {
        assert!(column_histogram(&table(), "score", 0).is_err());
    }

    #[test]
    fn summaries_of_multiple_columns() {
        let all = column_summaries(&table(), &["score", "count"]).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "score");
        assert_eq!(all[1].1.max, 50.0);
        assert!(column_summaries(&table(), &["score", "label"]).is_err());
    }
}
