//! Typed columns with per-value nullability.
//!
//! A [`Column`] stores one attribute of the dataset.  Values may be missing
//! (`None`), mirroring the reality of the paper's demonstration datasets
//! (the NRC attributes joined onto CS Rankings are not available for every
//! department).

use crate::error::{TableError, TableResult};
use crate::schema::ColumnType;

/// A single cell value, used by row-oriented accessors and the CSV layer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// Floating point value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The value as an `f64` if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a display string; `""` for nulls.
    #[must_use]
    pub fn to_display(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Float(v) => format!("{v}"),
            Value::Int(v) => format!("{v}"),
            Value::Str(v) => v.clone(),
            Value::Bool(v) => format!("{v}"),
        }
    }

    /// `true` when the value is missing.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A typed column of values with per-value nullability.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Column {
    /// Floating point column.
    Float(Vec<Option<f64>>),
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Creates a float column with no missing values.
    #[must_use]
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float(values.into_iter().map(Some).collect())
    }

    /// Creates an integer column with no missing values.
    #[must_use]
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::Int(values.into_iter().map(Some).collect())
    }

    /// Creates a string column with no missing values.
    #[must_use]
    pub fn from_strings<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Column::Str(values.into_iter().map(|s| Some(s.into())).collect())
    }

    /// Creates a boolean column with no missing values.
    #[must_use]
    pub fn from_bools(values: Vec<bool>) -> Self {
        Column::Bool(values.into_iter().map(Some).collect())
    }

    /// The storage type of the column.
    #[must_use]
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Float(_) => ColumnType::Float,
            Column::Int(_) => ColumnType::Int,
            Column::Str(_) => ColumnType::Str,
            Column::Bool(_) => ColumnType::Bool,
        }
    }

    /// Number of values (including nulls).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Float(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// `true` when the column holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint of the column's values in bytes (element
    /// storage plus string contents).  Used by memory-bounded caches to
    /// account for retained data; an estimate, not an allocator measurement.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        match self {
            Column::Float(v) => v.len() * std::mem::size_of::<Option<f64>>(),
            Column::Int(v) => v.len() * std::mem::size_of::<Option<i64>>(),
            Column::Bool(v) => v.len() * std::mem::size_of::<Option<bool>>(),
            Column::Str(v) => {
                v.len() * std::mem::size_of::<Option<String>>()
                    + v.iter().flatten().map(String::len).sum::<usize>()
            }
        }
    }

    /// Number of missing values.
    #[must_use]
    pub fn null_count(&self) -> usize {
        match self {
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// The cell at `row` as a [`Value`]. Out-of-bounds rows return `None`.
    #[must_use]
    pub fn value(&self, row: usize) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(match self {
            Column::Float(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Int(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Str(v) => v[row].clone().map_or(Value::Null, Value::Str),
            Column::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
        })
    }

    /// Numeric view of the column: every non-null value converted to `f64`,
    /// in row order, with nulls skipped.  Returns an error for non-numeric
    /// columns.
    ///
    /// # Errors
    /// [`TableError::TypeMismatch`] when the column is not numeric.
    pub fn numeric_values(&self, name: &str) -> TableResult<Vec<f64>> {
        match self {
            Column::Float(v) => Ok(v.iter().filter_map(|x| *x).collect()),
            Column::Int(v) => Ok(v.iter().filter_map(|x| x.map(|i| i as f64)).collect()),
            other => Err(TableError::TypeMismatch {
                name: name.to_string(),
                expected: "a numeric column",
                actual: other.column_type().name(),
            }),
        }
    }

    /// Numeric view aligned with row indices: `Some(f64)` per row, `None`
    /// where the value is missing.  Returns an error for non-numeric columns.
    ///
    /// # Errors
    /// [`TableError::TypeMismatch`] when the column is not numeric.
    pub fn numeric_options(&self, name: &str) -> TableResult<Vec<Option<f64>>> {
        match self {
            Column::Float(v) => Ok(v.clone()),
            Column::Int(v) => Ok(v.iter().map(|x| x.map(|i| i as f64)).collect()),
            other => Err(TableError::TypeMismatch {
                name: name.to_string(),
                expected: "a numeric column",
                actual: other.column_type().name(),
            }),
        }
    }

    /// Categorical view of the column: each row rendered as a string label,
    /// `None` where missing.  Booleans become `"true"`/`"false"`; integers are
    /// allowed here because users sometimes encode categories as small ints.
    /// Float columns are rejected.
    ///
    /// # Errors
    /// [`TableError::TypeMismatch`] when the column is a float column.
    pub fn categorical_labels(&self, name: &str) -> TableResult<Vec<Option<String>>> {
        match self {
            Column::Str(v) => Ok(v.clone()),
            Column::Bool(v) => Ok(v.iter().map(|x| x.map(|b| b.to_string())).collect()),
            Column::Int(v) => Ok(v.iter().map(|x| x.map(|i| i.to_string())).collect()),
            Column::Float(_) => Err(TableError::TypeMismatch {
                name: name.to_string(),
                expected: "a categorical column",
                actual: "float",
            }),
        }
    }

    /// Returns a new column containing only the rows at `indices`
    /// (in the given order).  Out-of-range indices become nulls.
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Float(v) => Column::Float(
                indices
                    .iter()
                    .map(|&i| v.get(i).copied().flatten())
                    .collect(),
            ),
            Column::Int(v) => Column::Int(
                indices
                    .iter()
                    .map(|&i| v.get(i).copied().flatten())
                    .collect(),
            ),
            Column::Str(v) => Column::Str(
                indices
                    .iter()
                    .map(|&i| v.get(i).cloned().flatten())
                    .collect(),
            ),
            Column::Bool(v) => Column::Bool(
                indices
                    .iter()
                    .map(|&i| v.get(i).copied().flatten())
                    .collect(),
            ),
        }
    }

    /// Appends a [`Value`] to the column, coercing compatible types
    /// (ints into float columns).  Used by the CSV reader.
    ///
    /// # Errors
    /// [`TableError::TypeMismatch`] when the value cannot be stored in this column.
    pub fn push_value(&mut self, name: &str, value: Value) -> TableResult<()> {
        match (self, value) {
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, val) => {
                return Err(TableError::TypeMismatch {
                    name: name.to_string(),
                    expected: col.column_type().name(),
                    actual: match val {
                        Value::Float(_) => "float",
                        Value::Int(_) => "int",
                        Value::Str(_) => "str",
                        Value::Bool(_) => "bool",
                        Value::Null => "null",
                    },
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_numeric_conversion() {
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("x".to_string()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Bool(true).is_null());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_display(), "");
        assert_eq!(Value::Int(7).to_display(), "7");
        assert_eq!(Value::Bool(false).to_display(), "false");
        assert_eq!(Value::Str("NE".to_string()).to_display(), "NE");
    }

    #[test]
    fn constructors_and_types() {
        assert_eq!(Column::from_f64(vec![1.0]).column_type(), ColumnType::Float);
        assert_eq!(Column::from_i64(vec![1]).column_type(), ColumnType::Int);
        assert_eq!(
            Column::from_strings(["a", "b"]).column_type(),
            ColumnType::Str
        );
        assert_eq!(
            Column::from_bools(vec![true]).column_type(),
            ColumnType::Bool
        );
    }

    #[test]
    fn len_and_null_count() {
        let col = Column::Float(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
        assert_eq!(col.null_count(), 1);
    }

    #[test]
    fn value_accessor_maps_nulls() {
        let col = Column::Int(vec![Some(5), None]);
        assert_eq!(col.value(0), Some(Value::Int(5)));
        assert_eq!(col.value(1), Some(Value::Null));
        assert_eq!(col.value(2), None);
    }

    #[test]
    fn numeric_values_skips_nulls() {
        let col = Column::Float(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(col.numeric_values("x").unwrap(), vec![1.0, 3.0]);
        let col = Column::Int(vec![Some(2), None]);
        assert_eq!(col.numeric_values("x").unwrap(), vec![2.0]);
    }

    #[test]
    fn numeric_values_rejects_strings() {
        let col = Column::from_strings(["a"]);
        assert!(matches!(
            col.numeric_values("Region"),
            Err(TableError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn numeric_options_preserves_alignment() {
        let col = Column::Int(vec![Some(2), None, Some(4)]);
        assert_eq!(
            col.numeric_options("x").unwrap(),
            vec![Some(2.0), None, Some(4.0)]
        );
    }

    #[test]
    fn categorical_labels_for_various_types() {
        let col = Column::from_strings(["NE", "MW"]);
        assert_eq!(
            col.categorical_labels("Region").unwrap(),
            vec![Some("NE".to_string()), Some("MW".to_string())]
        );
        let col = Column::from_bools(vec![true, false]);
        assert_eq!(
            col.categorical_labels("Large").unwrap(),
            vec![Some("true".to_string()), Some("false".to_string())]
        );
        let col = Column::from_i64(vec![1, 2]);
        assert_eq!(
            col.categorical_labels("Code").unwrap(),
            vec![Some("1".to_string()), Some("2".to_string())]
        );
        let col = Column::from_f64(vec![1.0]);
        assert!(col.categorical_labels("Score").is_err());
    }

    #[test]
    fn take_reorders_and_handles_out_of_range() {
        let col = Column::from_i64(vec![10, 20, 30]);
        let taken = col.take(&[2, 0, 9]);
        assert_eq!(taken, Column::Int(vec![Some(30), Some(10), None]));
    }

    #[test]
    fn push_value_coercions() {
        let mut col = Column::Float(vec![]);
        col.push_value("x", Value::Float(1.5)).unwrap();
        col.push_value("x", Value::Int(2)).unwrap();
        col.push_value("x", Value::Null).unwrap();
        assert_eq!(col, Column::Float(vec![Some(1.5), Some(2.0), None]));
        assert!(col.push_value("x", Value::Str("oops".to_string())).is_err());
    }

    #[test]
    fn push_value_rejects_cross_type() {
        let mut col = Column::Bool(vec![]);
        assert!(col.push_value("flag", Value::Int(1)).is_err());
        col.push_value("flag", Value::Bool(true)).unwrap();
        assert_eq!(col.len(), 1);
    }
}
