//! The [`Table`]: an ordered collection of named, typed columns.
//!
//! This is the in-memory representation of the dataset a user uploads to
//! Ranking Facts ("a fully populated table in CSV format", §3).  It supports
//! the operations the nutritional-label pipeline needs: column access by
//! name, row slicing (top-k vs. over-all), filtering, sorting by a computed
//! score, and previewing.

use crate::column::{Column, Value};
use crate::error::{TableError, TableResult};
use crate::schema::{ColumnType, Field, Schema};
use std::sync::Arc;

/// A columnar table: a schema plus one column per field, all of equal length.
///
/// Columns are stored behind `Arc`, so cloning a table — or copying a subset
/// of its columns into a derived table via [`Table::add_shared_column`] —
/// shares the cell storage instead of duplicating it.  The Monte-Carlo
/// stability perturber relies on this: a perturbed draw re-uses every
/// untouched column of the original table at the cost of one reference count.
/// `Column` has no interior mutability, so shared columns can never diverge.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl Table {
    /// Creates an empty table with no columns and no rows.
    #[must_use]
    pub fn new() -> Self {
        Table::default()
    }

    /// Builds a table from `(name, column)` pairs.
    ///
    /// # Errors
    /// Returns an error if column lengths differ or a name is duplicated.
    pub fn from_columns(columns: Vec<(impl Into<String>, Column)>) -> TableResult<Self> {
        let mut table = Table::new();
        for (name, column) in columns {
            table.add_column(name, column)?;
        }
        Ok(table)
    }

    /// Adds a column to the table.
    ///
    /// The first column added determines the row count; subsequent columns
    /// must match it.
    ///
    /// # Errors
    /// Returns an error if the name already exists or the length differs from
    /// the current row count.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column) -> TableResult<()> {
        self.add_shared_column(name, Arc::new(column))
    }

    /// Adds an `Arc`-shared column to the table without copying its cells —
    /// the zero-copy path for derived tables (e.g. perturbed copies that keep
    /// most columns unchanged).
    ///
    /// # Errors
    /// Same as [`Table::add_column`].
    pub fn add_shared_column(
        &mut self,
        name: impl Into<String>,
        column: Arc<Column>,
    ) -> TableResult<()> {
        let name = name.into();
        if self.schema.contains(&name) {
            return Err(TableError::DuplicateColumn { name });
        }
        if !self.columns.is_empty() && column.len() != self.rows {
            return Err(TableError::ColumnLengthMismatch {
                name,
                len: column.len(),
                expected: self.rows,
            });
        }
        if self.columns.is_empty() {
            self.rows = column.len();
        }
        self.schema.push(Field::new(name, column.column_type()));
        self.columns.push(column);
        Ok(())
    }

    /// The table's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the table has no rows or no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.columns.is_empty()
    }

    /// Approximate heap footprint of the table in bytes: cell storage plus
    /// column names.  Memory-bounded caches use this to account for tables
    /// they keep alive.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        let cells: usize = self.columns.iter().map(|c| c.approx_heap_bytes()).sum();
        let names: usize = self.schema.fields().iter().map(|f| f.name.len()).sum();
        cells + names
    }

    /// The column with the given name.
    ///
    /// # Errors
    /// [`TableError::UnknownColumn`] if no such column exists.
    pub fn column(&self, name: &str) -> TableResult<&Column> {
        self.shared_column(name).map(Arc::as_ref)
    }

    /// The `Arc`-shared handle of the column with the given name, for callers
    /// that re-use the column in a derived table without copying it
    /// ([`Table::add_shared_column`]).
    ///
    /// # Errors
    /// [`TableError::UnknownColumn`] if no such column exists.
    pub fn shared_column(&self, name: &str) -> TableResult<&Arc<Column>> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| TableError::UnknownColumn {
                name: name.to_string(),
            })?;
        Ok(&self.columns[idx])
    }

    /// All columns in schema order (`Arc`-shared; deref to [`Column`]).
    #[must_use]
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Non-null numeric values of a column (nulls skipped).
    ///
    /// # Errors
    /// Unknown column or non-numeric column.
    pub fn numeric_column(&self, name: &str) -> TableResult<Vec<f64>> {
        self.column(name)?.numeric_values(name)
    }

    /// Row-aligned numeric values of a column (`None` where missing).
    ///
    /// # Errors
    /// Unknown column or non-numeric column.
    pub fn numeric_column_options(&self, name: &str) -> TableResult<Vec<Option<f64>>> {
        self.column(name)?.numeric_options(name)
    }

    /// Row-aligned categorical labels of a column (`None` where missing).
    ///
    /// # Errors
    /// Unknown column or float column.
    pub fn categorical_column(&self, name: &str) -> TableResult<Vec<Option<String>>> {
        self.column(name)?.categorical_labels(name)
    }

    /// The full row at `index` as `(column name, value)` pairs.
    ///
    /// # Errors
    /// [`TableError::RowOutOfBounds`] when `index >= num_rows()`.
    pub fn row(&self, index: usize) -> TableResult<Vec<(String, Value)>> {
        if index >= self.rows {
            return Err(TableError::RowOutOfBounds {
                index,
                rows: self.rows,
            });
        }
        Ok(self
            .schema
            .fields()
            .iter()
            .zip(self.columns.iter())
            .map(|(f, c)| (f.name.clone(), c.value(index).unwrap_or(Value::Null)))
            .collect())
    }

    /// A new table containing only the rows at `indices`, in that order.
    /// Indices out of range produce null rows (callers validate first when
    /// that matters).
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.take(indices)))
            .collect();
        Table {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }

    /// The first `n` rows (or all rows when `n >= num_rows()`), preserving order.
    #[must_use]
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.rows);
        let indices: Vec<usize> = (0..n).collect();
        self.take(&indices)
    }

    /// A new table with only the named columns, in the requested order.
    ///
    /// # Errors
    /// [`TableError::UnknownColumn`] for any missing name.
    pub fn select(&self, names: &[&str]) -> TableResult<Table> {
        let mut out = Table::new();
        for &name in names {
            let col = Arc::clone(self.shared_column(name)?);
            out.add_shared_column(name, col)?;
        }
        // A selection of zero columns keeps the row count for consistency.
        if names.is_empty() {
            out.rows = self.rows;
        }
        Ok(out)
    }

    /// A new table containing the rows for which `predicate` returns `true`.
    /// The predicate receives the row index.
    #[must_use]
    pub fn filter_by_index<F: Fn(usize) -> bool>(&self, predicate: F) -> Table {
        let indices: Vec<usize> = (0..self.rows).filter(|&i| predicate(i)).collect();
        self.take(&indices)
    }

    /// Returns row indices sorted by the given numeric column.
    ///
    /// `descending = true` puts the largest values first (the usual "best
    /// first" ranking order).  Missing values always sort last regardless of
    /// direction.  Ties keep their original relative order (stable sort).
    ///
    /// # Errors
    /// Unknown column or non-numeric column.
    pub fn sort_indices_by(&self, name: &str, descending: bool) -> TableResult<Vec<usize>> {
        let values = self.numeric_column_options(name)?;
        let mut indices: Vec<usize> = (0..self.rows).collect();
        indices.sort_by(|&a, &b| {
            match (values[a], values[b]) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Greater, // nulls last
                (Some(_), None) => std::cmp::Ordering::Less,
                (Some(x), Some(y)) => {
                    let ord = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
                    if descending {
                        ord.reverse()
                    } else {
                        ord
                    }
                }
            }
        });
        Ok(indices)
    }

    /// A new table sorted by the given numeric column.
    ///
    /// # Errors
    /// Unknown column or non-numeric column.
    pub fn sort_by(&self, name: &str, descending: bool) -> TableResult<Table> {
        let indices = self.sort_indices_by(name, descending)?;
        Ok(self.take(&indices))
    }

    /// Appends a float column computed elsewhere (e.g. a score column).
    ///
    /// # Errors
    /// Duplicate name or length mismatch.
    pub fn with_float_column(
        &self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> TableResult<Table> {
        let mut out = self.clone();
        out.add_column(name, Column::from_f64(values))?;
        Ok(out)
    }

    /// Plain-text preview of the first `n` rows, used by the design view
    /// ("The system generates a preview of the data", §3).
    #[must_use]
    pub fn preview(&self, n: usize) -> String {
        let mut out = String::new();
        let names = self.schema.names();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&names.iter().map(|_| "---").collect::<Vec<_>>().join(" | "));
        out.push('\n');
        for row in 0..n.min(self.rows) {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(row).unwrap_or(Value::Null).to_display())
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Checks that every listed column exists, returning the first missing
    /// name as an error.  Convenience used by configuration validation.
    ///
    /// # Errors
    /// [`TableError::UnknownColumn`] for the first missing column.
    pub fn require_columns(&self, names: &[&str]) -> TableResult<()> {
        for &name in names {
            if !self.schema.contains(name) {
                return Err(TableError::UnknownColumn {
                    name: name.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Checks that a column exists and is numeric.
    ///
    /// # Errors
    /// Unknown column, or [`TableError::TypeMismatch`] when not numeric.
    pub fn require_numeric(&self, name: &str) -> TableResult<()> {
        let field = self
            .schema
            .field(name)
            .ok_or_else(|| TableError::UnknownColumn {
                name: name.to_string(),
            })?;
        if !field.column_type.is_numeric() {
            return Err(TableError::TypeMismatch {
                name: name.to_string(),
                expected: "a numeric column",
                actual: field.column_type.name(),
            });
        }
        Ok(())
    }

    /// Checks that a column exists and is categorical (string or bool).
    ///
    /// # Errors
    /// Unknown column, or [`TableError::TypeMismatch`] when not categorical.
    pub fn require_categorical(&self, name: &str) -> TableResult<()> {
        let field = self
            .schema
            .field(name)
            .ok_or_else(|| TableError::UnknownColumn {
                name: name.to_string(),
            })?;
        if !field.column_type.is_categorical() && field.column_type != ColumnType::Int {
            return Err(TableError::TypeMismatch {
                name: name.to_string(),
                expected: "a categorical column",
                actual: field.column_type.name(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn departments() -> Table {
        Table::from_columns(vec![
            ("Dept", Column::from_strings(["A", "B", "C", "D", "E"])),
            ("PubCount", Column::from_f64(vec![5.0, 3.0, 9.0, 1.0, 7.0])),
            ("Faculty", Column::from_i64(vec![50, 30, 90, 10, 70])),
            (
                "Region",
                Column::from_strings(["NE", "MW", "NE", "W", "SA"]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn build_and_shape() {
        let t = departments();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 4);
        assert!(!t.is_empty());
        assert_eq!(
            t.schema().names(),
            vec!["Dept", "PubCount", "Faculty", "Region"]
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::new();
        assert!(t.is_empty());
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut t = departments();
        let err = t.add_column("Dept", Column::from_f64(vec![1.0; 5]));
        assert!(matches!(err, Err(TableError::DuplicateColumn { .. })));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = departments();
        let err = t.add_column("Extra", Column::from_f64(vec![1.0, 2.0]));
        assert!(matches!(err, Err(TableError::ColumnLengthMismatch { .. })));
    }

    #[test]
    fn column_access() {
        let t = departments();
        assert_eq!(
            t.numeric_column("PubCount").unwrap(),
            vec![5.0, 3.0, 9.0, 1.0, 7.0]
        );
        assert_eq!(t.numeric_column("Faculty").unwrap()[2], 90.0);
        assert!(t.column("Nope").is_err());
        assert!(t.numeric_column("Region").is_err());
    }

    #[test]
    fn categorical_access() {
        let t = departments();
        let labels = t.categorical_column("Region").unwrap();
        assert_eq!(labels[0].as_deref(), Some("NE"));
        assert!(t.categorical_column("PubCount").is_err());
    }

    #[test]
    fn row_access() {
        let t = departments();
        let row = t.row(2).unwrap();
        assert_eq!(row[0], ("Dept".to_string(), Value::Str("C".to_string())));
        assert_eq!(row[1], ("PubCount".to_string(), Value::Float(9.0)));
        assert!(t.row(5).is_err());
    }

    #[test]
    fn head_and_take() {
        let t = departments();
        let top2 = t.head(2);
        assert_eq!(top2.num_rows(), 2);
        assert_eq!(top2.numeric_column("PubCount").unwrap(), vec![5.0, 3.0]);
        let reordered = t.take(&[4, 0]);
        assert_eq!(
            reordered.numeric_column("PubCount").unwrap(),
            vec![7.0, 5.0]
        );
        // head(n) with n > rows returns everything.
        assert_eq!(t.head(99).num_rows(), 5);
    }

    #[test]
    fn select_columns() {
        let t = departments();
        let sub = t.select(&["Faculty", "Dept"]).unwrap();
        assert_eq!(sub.schema().names(), vec!["Faculty", "Dept"]);
        assert_eq!(sub.num_rows(), 5);
        assert!(t.select(&["Missing"]).is_err());
    }

    #[test]
    fn filter_by_index() {
        let t = departments();
        let filtered = t.filter_by_index(|i| i % 2 == 0);
        assert_eq!(filtered.num_rows(), 3);
        assert_eq!(
            filtered.numeric_column("PubCount").unwrap(),
            vec![5.0, 9.0, 7.0]
        );
    }

    #[test]
    fn sort_descending_and_ascending() {
        let t = departments();
        let desc = t.sort_by("PubCount", true).unwrap();
        assert_eq!(
            desc.numeric_column("PubCount").unwrap(),
            vec![9.0, 7.0, 5.0, 3.0, 1.0]
        );
        let asc = t.sort_by("PubCount", false).unwrap();
        assert_eq!(
            asc.numeric_column("PubCount").unwrap(),
            vec![1.0, 3.0, 5.0, 7.0, 9.0]
        );
    }

    #[test]
    fn sort_puts_nulls_last() {
        let t = Table::from_columns(vec![(
            "score",
            Column::Float(vec![Some(1.0), None, Some(3.0)]),
        )])
        .unwrap();
        let idx = t.sort_indices_by("score", true).unwrap();
        assert_eq!(idx, vec![2, 0, 1]);
        let idx = t.sort_indices_by("score", false).unwrap();
        assert_eq!(idx, vec![0, 2, 1]);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let t = Table::from_columns(vec![
            ("id", Column::from_i64(vec![0, 1, 2, 3])),
            ("score", Column::from_f64(vec![5.0, 5.0, 5.0, 6.0])),
        ])
        .unwrap();
        let idx = t.sort_indices_by("score", true).unwrap();
        assert_eq!(idx, vec![3, 0, 1, 2]);
    }

    #[test]
    fn with_float_column_appends() {
        let t = departments();
        let t2 = t
            .with_float_column("score", vec![0.1, 0.2, 0.3, 0.4, 0.5])
            .unwrap();
        assert_eq!(t2.num_columns(), 5);
        assert!(t2.numeric_column("score").is_ok());
        // Original unchanged.
        assert_eq!(t.num_columns(), 4);
    }

    #[test]
    fn preview_contains_header_and_rows() {
        let t = departments();
        let p = t.preview(2);
        assert!(p.contains("PubCount"));
        assert!(p.lines().count() >= 4); // header + separator + 2 rows
        assert!(p.contains("NE"));
    }

    #[test]
    fn require_helpers() {
        let t = departments();
        assert!(t.require_columns(&["Dept", "Faculty"]).is_ok());
        assert!(t.require_columns(&["Dept", "Ghost"]).is_err());
        assert!(t.require_numeric("PubCount").is_ok());
        assert!(t.require_numeric("Region").is_err());
        assert!(t.require_numeric("Ghost").is_err());
        assert!(t.require_categorical("Region").is_ok());
        assert!(t.require_categorical("Faculty").is_ok()); // ints allowed as categories
        assert!(t.require_categorical("PubCount").is_err());
    }
}
