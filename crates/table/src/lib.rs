//! # rf-table
//!
//! A lightweight columnar table substrate for the Ranking Facts reproduction
//! of *"A Nutritional Label for Rankings"* (SIGMOD 2018).
//!
//! The original system accepts "a fully populated table in CSV format",
//! previews it, lets the user normalize/standardize attributes, and feeds the
//! resulting columns to the scoring function and to every diagnostic widget.
//! The Python implementation delegates that work to pandas; the Rust
//! ecosystem's dataframe/visualization stack is a poor fit for a
//! dependency-light reproduction, so this crate provides the minimal
//! substrate the paper needs, built from scratch:
//!
//! * [`schema`] — column names and types ([`ColumnType`], [`Schema`]).
//! * [`column`] — typed columns with per-value nullability ([`Column`]).
//! * [`table`] — the [`Table`] itself: construction, row/column access,
//!   selection, filtering, sorting, head/top-k slicing.
//! * [`csv`] — a CSV reader/writer with quoting support and type inference.
//! * [`fingerprint`] — stable 64-bit content fingerprinting
//!   ([`Table::fingerprint`]), the table half of the label cache key.
//! * [`stats`] — per-column descriptive statistics and histograms.
//! * [`normalize`] — min-max normalization and z-score standardization, the
//!   "normalize and standardize the attributes" checkbox of Figure 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod fingerprint;
pub mod normalize;
pub mod schema;
pub mod stats;
pub mod table;

pub use column::{Column, Value};
pub use csv::{read_csv_str, write_csv_string, CsvOptions};
pub use error::{TableError, TableResult};
pub use fingerprint::Fingerprinter;
pub use normalize::{NormalizationMethod, Normalizer};
pub use schema::{ColumnType, Field, Schema};
pub use stats::{column_histogram, column_summary};
pub use table::Table;
